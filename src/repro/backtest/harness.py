"""Time-travel backtest harness (DESIGN.md §11).

The paper's central claim is that a plan chosen from a price-history
model stays near-optimal on *future* prices.  This harness tests exactly
that, the way replay simulations score forecasting systems: partition
the history into plan/holdout windows (:mod:`repro.core.windows`), let
the planner see only the plan window, then replay its decision over the
untouched holdout window and compare what the model *predicted* (cost,
time, deadline-miss probability, per-group failure probabilities)
against what the replays *realized*.

Holdout isolation is structural, not advisory: the planner is handed a
history object containing only plan-window slices, so holdout prices are
unreadable during planning (``tests/test_backtest.py`` proves it by
poisoning the holdout region and checking the plans are unchanged).
Cached tables can never leak across the wall either — planner caches and
the on-disk artifact store key by trace *content*, and the plan/holdout
slices have disjoint content by construction.

Everything is deterministic given (seed, manifest): random streams are
derived statelessly from the seed and the (window, app, deadline) cell,
so a manifest re-run — same process or fresh — is bit-identical.  That
same property makes the window×app×deadline grid embarrassingly
parallel: ``run_backtest(jobs=N)`` fans whole cells out over the
persistent shared :class:`~repro.execution.pool.WorkerPool` (the
history ships through the long-lived shm registry, each worker derives
its cell's streams from (seed, cell) exactly as the serial loop would)
and gathers results in grid order, so ``jobs=1`` and ``jobs=N`` reports
are bit-identical (``tests/test_worker_pool.py`` holds this down).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.chance import miss_probability
from ..core.ckpt_math import total_wall
from ..core.cost_model import GroupOutcome
from ..core.optimizer import SompiOptimizer, SompiPlan, build_failure_models
from ..core.problem import Problem
from ..core.windows import (
    BacktestManifest,
    BacktestWindow,
    manifest_trace_hashes,
    split_history,
    split_windows,
)
from ..errors import ConfigurationError
from ..execution.montecarlo import replay_many, resolve_jobs
from ..execution.replay import decision_horizon
from ..execution.results import MonteCarloSummary
from ..execution.shm_pool import (
    SharedHistoryHandle,
    attach_history,
    shared_trace_handle,
)
from ..market.failure import FailureModel
from ..market.history import MarketKey, SpotPriceHistory
from ..sim.rng import RngRegistry

__all__ = [
    "BacktestReport",
    "GroupCalibrationPoint",
    "WindowResult",
    "build_manifest",
    "plan_window",
    "run_backtest",
]

#: Samples drawn from the model's joint outcome distribution for the
#: predicted deadline-miss probability (deterministic: seeded stream).
MISS_PROBABILITY_SAMPLES = 4096

#: Re-plan trigger thresholds: realized mean cost more than 25% over the
#: prediction, or realized miss rate more than 10 points over the
#: predicted miss probability, flags the window for re-planning.
REPLAN_COST_OVERRUN = 0.25
REPLAN_MISS_MARGIN = 0.10


@dataclass(frozen=True)
class GroupCalibrationPoint:
    """Predicted vs realized out-of-bid failure for one planned group."""

    window: int
    app: str
    deadline_name: str
    market: str
    bid: float  # dollars per instance-hour
    predicted_failure: float  # plan-model P(out-of-bid within the wall)
    realized_failure: float  # holdout fraction of launched replays dying
    n_replays: int  # launched replays backing the realized rate


@dataclass(frozen=True)
class WindowResult:
    """Realized vs predicted outcome of one (window, app, deadline) cell."""

    window: BacktestWindow
    app: str
    deadline_name: str
    deadline_hours: float
    used_spot: bool
    predicted_cost: float
    predicted_time_hours: float
    predicted_miss: float
    realized_cost: float
    realized_time_hours: float
    realized_miss: float
    spot_completion_rate: float
    calibration: Tuple[GroupCalibrationPoint, ...]
    triggers: Tuple[str, ...]


@dataclass(frozen=True)
class BacktestReport:
    """Everything one backtest produced, manifest included."""

    manifest: BacktestManifest
    results: Tuple[WindowResult, ...]

    def calibration_points(self) -> List[GroupCalibrationPoint]:
        return [p for r in self.results for p in r.calibration]

    def calibration_bins(self, n_bins: int = 10) -> List[dict]:
        """Predicted-vs-realized failure frequency, binned by decile.

        Each point is weighted by the number of launched replays behind
        its realized rate, so a bin's ``realized`` is the actual failure
        frequency over every replay that landed in it.  Perfectly
        calibrated predictions put ``realized`` on the diagonal
        (``realized == predicted``) in every bin.
        """
        if n_bins < 1:
            raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
        points = self.calibration_points()
        bins: List[dict] = []
        for b in range(n_bins):
            lo = b / n_bins
            hi = (b + 1) / n_bins
            members = [
                p
                for p in points
                if lo <= p.predicted_failure < hi
                # reprolint: disable=R005 -- exact boundary sentinel: the closed top of the last half-open bin, not a computed float comparison
                or (b == n_bins - 1 and p.predicted_failure == 1.0)
            ]
            weight = sum(p.n_replays for p in members)
            if members and weight > 0:
                predicted = sum(
                    p.predicted_failure * p.n_replays for p in members
                ) / weight
                realized = sum(
                    p.realized_failure * p.n_replays for p in members
                ) / weight
            else:
                predicted = realized = 0.0
            bins.append(
                {
                    "bin_lo": lo,
                    "bin_hi": hi,
                    "n_points": len(members),
                    "n_replays": weight,
                    "predicted": predicted,
                    "realized": realized,
                }
            )
        return bins

    def trigger_rows(self) -> List[dict]:
        """The re-plan trigger log: one row per fired trigger."""
        rows = []
        for r in self.results:
            for trig in r.triggers:
                if trig == "cost-overrun":
                    predicted, realized = r.predicted_cost, r.realized_cost
                else:
                    predicted, realized = r.predicted_miss, r.realized_miss
                rows.append(
                    {
                        "window": r.window.index,
                        "app": r.app,
                        "deadline": r.deadline_name,
                        "trigger": trig,
                        "predicted": predicted,
                        "realized": realized,
                    }
                )
        return rows


# ----------------------------------------------------------------------
# Manifest construction
# ----------------------------------------------------------------------
def build_manifest(
    env,
    n_windows: int,
    plan_hours: float,
    holdout_hours: float,
    apps: Sequence[str],
    deadline_factors: Sequence[Tuple[str, float]],
    n_samples: int,
    stride_hours: Optional[float] = None,
) -> BacktestManifest:
    """A manifest tiling the env's common trace window.

    The window grid covers the intersection of every market's trace
    window, so each window slices cleanly out of every trace.  The
    engine fingerprint is stamped at build time; :func:`run_backtest`
    does not check it (code drift is visible by diffing manifests), but
    trace hashes *are* checked — running a manifest over different data
    is an error, not a silent re-interpretation.
    """
    from ..execution.artifacts import engine_fingerprint

    lo: Optional[float] = None
    hi: Optional[float] = None
    for _key, trace in env.history.items():
        lo = trace.start_time if lo is None else max(lo, trace.start_time)
        hi = trace.end_time if hi is None else min(hi, trace.end_time)
    if lo is None or hi is None:
        raise ConfigurationError("cannot backtest an empty history")
    windows = split_windows(
        lo, hi, n_windows, plan_hours, holdout_hours, stride_hours
    )
    return BacktestManifest(
        seed=env.seed,
        engine_fingerprint=engine_fingerprint(),
        plan_hours=plan_hours,
        holdout_hours=holdout_hours,
        stride_hours=holdout_hours if stride_hours is None else stride_hours,
        n_samples=n_samples,
        apps=tuple(apps),
        deadline_factors=tuple(deadline_factors),
        windows=windows,
        trace_hashes=manifest_trace_hashes(env.history),
    )


# ----------------------------------------------------------------------
# Planning and replay of one cell
# ----------------------------------------------------------------------
def plan_window(
    problem: Problem,
    plan_history: SpotPriceHistory,
    config,
) -> Tuple[SompiPlan, Mapping[MarketKey, FailureModel]]:
    """Plan one problem from one plan window's history, nothing else.

    The single seam between the harness and the planner: the failure
    models (the only consumer of price history during planning) are
    built from ``plan_history`` alone.  Returned models back the
    predicted-failure calibration points.
    """
    with obs.get_metrics().timer("backtest.plan"):
        models = build_failure_models(
            problem, plan_history, step_hours=config.time_step_hours
        )
        plan = SompiOptimizer(problem, models, config).plan()
    return plan, models


def _predicted_miss(
    problem: Problem,
    plan: SompiPlan,
    models: Mapping[MarketKey, FailureModel],
    step_hours: float,
    rng: np.random.Generator,
) -> float:
    """Model-predicted ``P(Time > Deadline)`` for the chosen decision."""
    if not plan.decision.groups:
        # Pure on-demand: the selected option meets the deadline by
        # construction, there is no stochastic failure time.
        return 0.0
    outcomes = [
        GroupOutcome.build(
            problem.groups[gd.group_index],
            gd.bid,
            gd.interval,
            models[problem.groups[gd.group_index].key],
            step_hours,
        )
        for gd in plan.decision.groups
    ]
    return miss_probability(
        outcomes,
        plan.ondemand,
        problem.deadline,
        n_samples=MISS_PROBABILITY_SAMPLES,
        rng=rng,
    )


def _group_calibration(
    window: BacktestWindow,
    app: str,
    deadline_name: str,
    problem: Problem,
    plan: SompiPlan,
    models: Mapping[MarketKey, FailureModel],
    step_hours: float,
    replays,
) -> Tuple[GroupCalibrationPoint, ...]:
    """One calibration point per planned group.

    Predicted: the plan-window model's probability of an out-of-bid
    failure within the group's failure-free wall time.  Realized: the
    fraction of launched holdout replays in which the group actually
    died out-of-bid.  Groups that never launched contribute no point
    (there is no realized frequency to compare).
    """
    points = []
    for gd in plan.decision.groups:
        spec = problem.groups[gd.group_index]
        model = models[spec.key]
        effective = min(gd.interval, spec.exec_time)
        wall = total_wall(spec.exec_time, effective, spec.checkpoint_overhead)
        horizon_steps = max(1, int(math.ceil(wall / step_hours)))
        predicted = float(
            model.failure_pmf(float(gd.bid), horizon_steps)[:-1].sum()
        )
        key_str = str(spec.key)
        launched = 0
        died = 0
        for result in replays:
            for record in result.group_records:
                if str(record.key) == key_str and record.launched:
                    launched += 1
                    if record.terminated:
                        died += 1
        if launched == 0:
            continue
        points.append(
            GroupCalibrationPoint(
                window=window.index,
                app=app,
                deadline_name=deadline_name,
                market=key_str,
                bid=float(gd.bid),
                predicted_failure=predicted,
                realized_failure=died / launched,
                n_replays=launched,
            )
        )
    return tuple(points)


def _run_cell(
    history: SpotPriceHistory,
    config,
    rng: RngRegistry,
    n_samples: int,
    window: BacktestWindow,
    app: str,
    deadline_name: str,
    problem: Problem,
) -> WindowResult:
    """Plan on the window's past, replay on its future, compare.

    Pure compute given its arguments: every random stream derives
    statelessly from ``rng``'s seed and the cell identity, so a worker
    process handed the same (history content, config, seed, cell)
    produces the bit-identical :class:`WindowResult` the serial loop
    would.  Observability *events* are the caller's job
    (:func:`_emit_cell`) so serial and parallel runs emit the same
    stream from the parent process.
    """
    metrics = obs.get_metrics()
    stream = f"backtest:{window.index}:{app}:{deadline_name}"
    plan_history, holdout_history = split_history(history, window)
    plan, models = plan_window(problem, plan_history, config)
    predicted_miss = _predicted_miss(
        problem,
        plan,
        models,
        config.time_step_hours,
        rng.fresh(f"{stream}:miss"),
    )
    if plan.decision.groups:
        horizon = decision_horizon(problem, plan.decision)
        if horizon >= window.holdout_hours:
            raise ConfigurationError(
                f"holdout window of {window.holdout_hours:g} h cannot fit a "
                f"{horizon:.3g} h replay horizon for {app}/{deadline_name}; "
                f"increase the holdout (test) span"
            )
    with metrics.timer("backtest.replay"):
        replays = replay_many(
            problem,
            plan.decision,
            holdout_history,
            n_samples,
            rng.fresh(stream),
        )
    summary = MonteCarloSummary.from_results(replays, problem.deadline)
    calibration = _group_calibration(
        window, app, deadline_name, problem, plan, models,
        config.time_step_hours, replays,
    )
    triggers = []
    if summary.mean_cost > plan.expectation.cost * (1.0 + REPLAN_COST_OVERRUN):
        triggers.append("cost-overrun")
    if summary.deadline_miss_rate > predicted_miss + REPLAN_MISS_MARGIN:
        triggers.append("miss-overrun")
    return WindowResult(
        window=window,
        app=app,
        deadline_name=deadline_name,
        deadline_hours=problem.deadline,
        used_spot=plan.used_spot,
        predicted_cost=plan.expectation.cost,
        predicted_time_hours=plan.expectation.time,
        predicted_miss=predicted_miss,
        realized_cost=summary.mean_cost,
        realized_time_hours=summary.mean_time,
        realized_miss=summary.deadline_miss_rate,
        spot_completion_rate=summary.spot_completion_rate,
        calibration=calibration,
        triggers=tuple(triggers),
    )


def _emit_cell(result: WindowResult) -> None:
    """Emit one cell's observability events/counters (parent side)."""
    metrics = obs.get_metrics()
    cell_key = f"{result.app}:{result.deadline_name}"
    obs.emit(
        "backtest.window",
        time=result.window.plan_end,
        key=cell_key,
        window=result.window.index,
        predicted_cost=result.predicted_cost,
        realized_cost=result.realized_cost,
        predicted_miss=result.predicted_miss,
        realized_miss=result.realized_miss,
    )
    metrics.inc("backtest.cells")
    for trig in result.triggers:
        obs.emit(
            "backtest.replan",
            time=result.window.holdout_end,
            key=cell_key,
            window=result.window.index,
            trigger=trig,
        )
        metrics.inc("backtest.replan_triggers")


def _run_cell_task(
    shipped,
    seed: int,
    config,
    n_samples: int,
    window: BacktestWindow,
    app: str,
    deadline_name: str,
    problem: Problem,
) -> Tuple[WindowResult, dict]:
    """Worker entry point for one cell.

    ``shipped`` is either a :class:`SharedHistoryHandle` (the normal
    path: attach the registry's shm blocks, cached per worker) or a
    pickled :class:`SpotPriceHistory` (the pickling fallback path).
    The worker itself never degrades: a failed attach propagates to
    the parent's gather, where :func:`run_backtest` recovers.  The
    worker's metrics registry is reset first and its snapshot returned,
    so the parent can fold per-cell planner/replay counters in exactly
    as the experiments runner does.
    """
    obs.reset_metrics()
    if isinstance(shipped, SharedHistoryHandle):
        history = attach_history(shipped)
    else:
        history = shipped
    result = _run_cell(
        history, config, RngRegistry(seed), n_samples, window, app,
        deadline_name, problem,
    )
    return result, obs.get_metrics().snapshot()


def run_backtest(env, manifest: BacktestManifest, jobs=None) -> BacktestReport:
    """Run the whole manifest over ``env``'s history.

    Deterministic given (env seed, manifest): every random stream is a
    stateless derivation from the seed and the cell identity, and window
    bounds come from the manifest, never from clocks or fresh draws.

    ``jobs=N`` runs cells (the grid's windows × apps × deadlines) in
    the persistent shared worker pool; results are gathered in grid
    order and every stream still derives from (seed, cell), so the
    report is bit-identical to ``jobs=1``.

    The parallel plumbing is fail-open: a platform without shared
    memory pickles the history into every task, and a worker whose
    shm attach fails mid-run surfaces its OSError at the gather, which
    recomputes the grid serially.  Either degradation is a counted
    metric; the report itself is bit-identical on every path.
    """
    manifest.check_traces(env.history)
    if manifest.seed != env.seed:
        raise ConfigurationError(
            f"manifest was built for seed {manifest.seed}, env has seed "
            f"{env.seed}; results would not reproduce the manifest's run"
        )
    metrics = obs.get_metrics()
    # Problems depend only on the app catalog (deadlines come from
    # baseline on-demand times), so build each once across windows.
    problems: Dict[Tuple[str, str], Problem] = {}
    for app in manifest.apps:
        for dl_name, factor in manifest.deadline_factors:
            problems[(app, dl_name)] = env.problem(app, deadline_factor=factor)
    cells = [
        (window, app, dl_name)
        for window in manifest.windows
        for app in manifest.apps
        for dl_name, _factor in manifest.deadline_factors
    ]
    n_jobs = resolve_jobs(jobs, len(cells))
    results: List[WindowResult] = []
    if n_jobs > 1:
        from ..execution.pool import WorkerPool

        # Ship the history through the long-lived shm registry (mapped
        # once per worker); fall back to pickling it into every task.
        try:
            shipped = shared_trace_handle(env.history)
        # reprolint: disable=R006 -- fail-open: no shared memory means the pickling path, counted
        except Exception:
            metrics.inc("mc.shm_pool_unavailable")
            shipped = env.history
        pool = WorkerPool.shared(n_jobs)
        try:
            with metrics.timer("backtest.parallel"):
                gathered = pool.run_ordered(
                    _run_cell_task,
                    [
                        (
                            shipped, env.seed, env.config,
                            manifest.n_samples, window, app, dl_name,
                            problems[(app, dl_name)],
                        )
                        for window, app, dl_name in cells
                    ],
                )
            for result, snapshot in gathered:
                metrics.merge_snapshot(snapshot)
                results.append(result)
        except OSError:
            # A worker lost the shm segment between the parent's probe
            # and its own attach; every cell is a stateless derivation
            # from (seed, cell), so recompute the grid serially.
            metrics.inc("backtest.shm_attach_failed")
            results = []
            for window, app, dl_name in cells:
                results.append(
                    _run_cell(
                        env.history, env.config, env.rng,
                        manifest.n_samples, window, app, dl_name,
                        problems[(app, dl_name)],
                    )
                )
    else:
        for window, app, dl_name in cells:
            results.append(
                _run_cell(
                    env.history, env.config, env.rng, manifest.n_samples,
                    window, app, dl_name, problems[(app, dl_name)],
                )
            )
    # Events and counters are emitted here — after compute, in grid
    # order — so serial and parallel runs produce the same stream.
    cursor = 0
    per_window = len(manifest.apps) * len(manifest.deadline_factors)
    for _window in manifest.windows:
        for result in results[cursor:cursor + per_window]:
            _emit_cell(result)
        cursor += per_window
        metrics.inc("backtest.windows")
    return BacktestReport(manifest=manifest, results=tuple(results))
