"""``repro.backtest`` — deterministic plan/holdout backtesting.

Splits long price traces into plan/holdout partitions (with a written
:class:`~repro.core.windows.BacktestManifest`), runs the planner on each
plan window, replays the chosen plan over the untouched holdout window,
and reports realized-vs-predicted cost and deadline behaviour plus
failure-probability calibration.  See DESIGN.md §11.
"""

from __future__ import annotations

from ..core.windows import (
    BacktestManifest,
    BacktestWindow,
    sample_window_starts,
    split_history,
    split_windows,
)
from .harness import (
    BacktestReport,
    GroupCalibrationPoint,
    WindowResult,
    build_manifest,
    plan_window,
    run_backtest,
)

__all__ = [
    "BacktestManifest",
    "BacktestReport",
    "BacktestWindow",
    "GroupCalibrationPoint",
    "WindowResult",
    "build_manifest",
    "plan_window",
    "run_backtest",
    "sample_window_starts",
    "split_history",
    "split_windows",
]
