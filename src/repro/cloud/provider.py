"""Cloud-provider facade.

Bundles the pieces an experiment needs — catalog, zones, spot price
history, billing policy and the checkpoint store — behind one object, so
the optimizer and executors take a single dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..market.history import MarketKey, SpotPriceHistory
from ..market.trace import SpotPriceTrace
from .billing import BillingPolicy, CONTINUOUS
from .instance_types import CATALOG, InstanceType, get_instance_type
from .ondemand import OnDemandInstance
from .s3 import S3Store
from .spot import SpotLifecycle
from .zones import DEFAULT_ZONES, Zone


@dataclass
class CloudProvider:
    """One region's worth of EC2-like resources."""

    history: SpotPriceHistory
    zones: Sequence[Zone] = DEFAULT_ZONES
    billing: BillingPolicy = CONTINUOUS
    storage: S3Store = field(default_factory=S3Store)

    def instance_type(self, name: str) -> InstanceType:
        return get_instance_type(name)

    def ondemand(self, type_name: str) -> OnDemandInstance:
        return OnDemandInstance(get_instance_type(type_name), billing=self.billing)

    def markets(self) -> list[MarketKey]:
        """All markets with recorded spot history."""
        return list(self.history.keys())

    def trace(self, key: MarketKey) -> SpotPriceTrace:
        return self.history.get(key)

    def spot(self, key: MarketKey) -> SpotLifecycle:
        """Spot lifecycle driver for one market."""
        return SpotLifecycle(self.history.get(key))

    def validate_market(self, key: MarketKey) -> MarketKey:
        """Check the market references a known type, zone and trace."""
        get_instance_type(key.instance_type)
        if key.zone not in {z.name for z in self.zones}:
            raise ConfigurationError(
                f"unknown zone {key.zone!r}; known: {[z.name for z in self.zones]}"
            )
        if key not in self.history:
            raise ConfigurationError(f"no spot history for market {key}")
        return key
