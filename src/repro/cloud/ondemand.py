"""On-demand instances.

On-demand capacity never fails in the model (Section 3.1.1 uses it as the
reliable fallback), so the lifecycle is trivial: a fixed hourly price and
a run duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import check_nonnegative
from .billing import BillingPolicy, CONTINUOUS
from .instance_types import InstanceType


@dataclass(frozen=True)
class OnDemandInstance:
    """A reserved-rate instance of a given type."""

    itype: InstanceType
    billing: BillingPolicy = CONTINUOUS

    def cost(self, duration_hours: float, count: int = 1) -> float:
        """Dollars for ``count`` instances running ``duration_hours``."""
        check_nonnegative("duration_hours", duration_hours)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return count * self.billing.cost(self.itype.ondemand_price, duration_hours)
