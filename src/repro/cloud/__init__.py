"""EC2-like cloud substrate.

Models the parts of Amazon EC2 the paper's system touches: the instance
catalog with 2014-era prices and capabilities, availability zones, the
spot-instance lifecycle against a price trace, on-demand instances,
hourly billing, and an S3-like checkpoint store.
"""

from .instance_types import (
    InstanceType,
    CATALOG,
    PAPER_TYPES,
    get_instance_type,
    instances_needed,
)
from .zones import Zone, DEFAULT_ZONES
from .billing import BillingPolicy, CostLedger, CostItem
from .spot import (
    SpotLifecycle,
    SpotRun,
    first_exceedance,
    first_at_or_below,
    integrate_price,
)
from .ondemand import OnDemandInstance
from .s3 import S3Store, S3Object
from .provider import CloudProvider

__all__ = [
    "InstanceType",
    "CATALOG",
    "PAPER_TYPES",
    "get_instance_type",
    "instances_needed",
    "Zone",
    "DEFAULT_ZONES",
    "BillingPolicy",
    "CostLedger",
    "CostItem",
    "SpotLifecycle",
    "SpotRun",
    "first_exceedance",
    "first_at_or_below",
    "integrate_price",
    "OnDemandInstance",
    "S3Store",
    "S3Object",
    "CloudProvider",
]
