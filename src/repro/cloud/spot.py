"""Spot-instance lifecycle against a price trace.

Semantics follow the 2014 spot market (Section 2.1):

* A request with bid ``P`` *launches* at the first moment the spot price
  is <= ``P`` (it waits while the price is above the bid).
* A running instance is *terminated by the provider* at the first moment
  the price rises above ``P`` (an "out-of-bid event").
* While running, the user pays the *spot price* (not the bid), integrated
  over the running window.

The functions here are exact on the piecewise-constant trace — no grid
sampling — and are shared by the replay simulator and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import TraceError
from ..market.trace import SpotPriceTrace


def _segment_bounds(trace: SpotPriceTrace, t0: float) -> int:
    """Index of the segment containing ``t0`` (validates the bound)."""
    if not trace.start_time <= t0 < trace.end_time:
        raise TraceError(
            f"t0={t0} outside trace window [{trace.start_time}, {trace.end_time})"
        )
    return int(np.searchsorted(trace.times, t0, side="right") - 1)


def first_exceedance(
    trace: SpotPriceTrace, bid: float, t0: float
) -> Optional[float]:
    """First time >= ``t0`` at which the spot price exceeds ``bid``.

    Returns ``None`` if the price never exceeds the bid before the trace
    window ends.
    """
    k = _segment_bounds(trace, t0)
    if trace.prices[k] > bid:
        return t0
    above = np.flatnonzero(trace.prices[k + 1 :] > bid)
    if above.size == 0:
        return None
    return float(trace.times[k + 1 + above[0]])


def first_at_or_below(
    trace: SpotPriceTrace, bid: float, t0: float
) -> Optional[float]:
    """First time >= ``t0`` at which the spot price is <= ``bid``.

    This is the launch time of a spot request submitted at ``t0``.
    Returns ``None`` if the price stays above the bid for the rest of the
    window.
    """
    k = _segment_bounds(trace, t0)
    if trace.prices[k] <= bid:
        return t0
    below = np.flatnonzero(trace.prices[k + 1 :] <= bid)
    if below.size == 0:
        return None
    return float(trace.times[k + 1 + below[0]])


def integrate_price(trace: SpotPriceTrace, t0: float, t1: float) -> float:
    """``\\int_{t0}^{t1} price(t) dt`` in dollar-hours per instance."""
    if t1 < t0:
        raise TraceError(f"integration bounds reversed: [{t0}, {t1}]")
    if t0 == t1:
        return 0.0
    window = trace.slice(t0, t1)
    return float(np.dot(window.prices, window.segment_durations()))


def billed_spot_cost(
    trace: SpotPriceTrace,
    launch: float,
    end: float,
    interrupted: bool,
    policy,
) -> float:
    """Dollars one spot instance owes for running ``[launch, end)``.

    With a continuous policy this is the price integral.  With hourly
    granularity it follows 2014 EC2 spot billing: the price is *locked at
    each instance-hour boundary* (you pay the rate in effect when the
    hour began for the whole hour), and the final partial hour is free
    when the **provider** interrupted the instance (out-of-bid event) but
    billed in full when the user stopped it.
    """
    if end < launch:
        raise TraceError(f"billing bounds reversed: [{launch}, {end}]")
    g = getattr(policy, "granularity_hours", 0.0)
    if not g:  # granularity 0 = continuous billing (BillingPolicy.is_continuous)
        return integrate_price(trace, launch, end)
    duration = end - launch
    n_full = int(np.floor(duration / g + 1e-12))
    cost = 0.0
    for k in range(n_full):
        cost += trace.price_at(min(launch + k * g, np.nextafter(trace.end_time, -np.inf))) * g
    partial = duration - n_full * g
    if partial > 1e-12:
        free = interrupted and getattr(policy, "refund_interrupted_hour", False)
        if not free:
            boundary = min(
                launch + n_full * g, np.nextafter(trace.end_time, -np.inf)
            )
            cost += trace.price_at(boundary) * g
    return cost


@dataclass(frozen=True)
class SpotRun:
    """Outcome of one spot request driven against a trace.

    ``terminated`` is True when the run ended with an out-of-bid event;
    False means it was still running at ``end`` (ran to the requested
    horizon or to the end of the trace window).
    """

    requested_at: float
    launched_at: Optional[float]
    end: float
    terminated: bool
    cost_per_instance: float

    @property
    def launched(self) -> bool:
        return self.launched_at is not None

    @property
    def running_hours(self) -> float:
        return 0.0 if self.launched_at is None else self.end - self.launched_at


class SpotLifecycle:
    """Drives spot requests for one market (one trace)."""

    def __init__(self, trace: SpotPriceTrace) -> None:
        self.trace = trace

    def run(
        self,
        bid: float,
        requested_at: float,
        max_duration: Optional[float] = None,
    ) -> SpotRun:
        """Submit a request at ``requested_at`` and run until out-of-bid,
        ``max_duration`` running-hours elapse, or the trace ends —
        whichever comes first."""
        launch = first_at_or_below(self.trace, bid, requested_at)
        if launch is None:
            return SpotRun(requested_at, None, self.trace.end_time, False, 0.0)
        horizon = self.trace.end_time
        if max_duration is not None:
            horizon = min(horizon, launch + max_duration)
        death = first_exceedance(self.trace, bid, launch)
        if death is not None and death <= launch:
            # Can only happen with a bid exactly at a boundary price; treat
            # as an immediate termination with zero cost.
            return SpotRun(requested_at, launch, launch, True, 0.0)
        if death is None or death >= horizon:
            end, terminated = horizon, False
        else:
            end, terminated = death, True
        cost = integrate_price(self.trace, launch, end) if end > launch else 0.0
        return SpotRun(requested_at, launch, end, terminated, cost)
