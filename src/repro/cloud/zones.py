"""Availability zones.

Zones matter to the model for exactly one reason: spot prices in
different zones move independently (a paper assumption confirmed on the
2014 traces), so replicating an MPI run across zones buys failure
independence.  The default set matches the paper's us-east-1a/1b/1c.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Zone:
    """An availability zone within a region."""

    name: str
    region: str = "us-east-1"

    def __str__(self) -> str:
        return self.name


DEFAULT_ZONES: tuple[Zone, ...] = (
    Zone("us-east-1a"),
    Zone("us-east-1b"),
    Zone("us-east-1c"),
)
