"""Billing policies and cost accounting.

The analytic cost model (Section 3.2) works in continuous time —
``price x duration`` — so the default policy bills fractional hours
exactly.  Real 2012-2014 EC2 billed whole instance-hours and *refunded*
the partial hour of a spot instance that Amazon itself interrupted; both
behaviours are available so the replay simulator can quantify the gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigurationError
from ..units import check_nonnegative


@dataclass(frozen=True)
class BillingPolicy:
    """How raw usage turns into dollars.

    Attributes
    ----------
    granularity_hours:
        Billing increment.  ``0`` means continuous (exact) billing; ``1``
        reproduces 2014 EC2 whole-hour billing.
    refund_interrupted_hour:
        If billing is hourly and a *provider-initiated* interruption ends
        the run, the final partial hour is free (2014 spot semantics).
    """

    granularity_hours: float = 0.0
    refund_interrupted_hour: bool = True

    def __post_init__(self) -> None:
        check_nonnegative("granularity_hours", self.granularity_hours)

    @property
    def is_continuous(self) -> bool:
        """Whether billing is exact (no rounding to increments).

        ``granularity_hours`` is validated non-negative and exactly 0.0
        is the documented continuous-billing sentinel, so this is the
        one place that sentinel is tested.
        """
        return self.granularity_hours == 0.0  # reprolint: disable=R005 -- exact 0.0 is the continuous-billing sentinel, never a computed value

    def billable_hours(self, duration_hours: float, interrupted: bool = False) -> float:
        """Hours actually charged for a run of ``duration_hours``."""
        check_nonnegative("duration_hours", duration_hours)
        if self.is_continuous:
            return duration_hours
        g = self.granularity_hours
        if interrupted and self.refund_interrupted_hour:
            # Whole increments consumed before the interruption.
            return g * math.floor(duration_hours / g)
        return g * math.ceil(duration_hours / g) if duration_hours > 0 else 0.0

    def cost(
        self, unit_price: float, duration_hours: float, interrupted: bool = False
    ) -> float:
        """Dollars for one instance at a fixed ``unit_price`` $/hour."""
        check_nonnegative("unit_price", unit_price)
        return unit_price * self.billable_hours(duration_hours, interrupted)


CONTINUOUS = BillingPolicy(granularity_hours=0.0)
HOURLY = BillingPolicy(granularity_hours=1.0)


@dataclass(frozen=True)
class CostItem:
    """One line of a cost ledger."""

    category: str  # "spot", "ondemand", "storage", ...
    description: str
    dollars: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.dollars) or self.dollars < 0:
            raise ConfigurationError(
                f"cost item {self.description!r} has invalid amount {self.dollars!r}"
            )


@dataclass
class CostLedger:
    """Accumulates :class:`CostItem` lines and answers total queries."""

    items: List[CostItem] = field(default_factory=list)

    def add(self, category: str, description: str, dollars: float) -> None:
        self.items.append(CostItem(category, description, dollars))

    def total(self, category: str | None = None) -> float:
        """Sum of all items, optionally restricted to one category."""
        return sum(
            item.dollars
            for item in self.items
            if category is None or item.category == category
        )

    def by_category(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for item in self.items:
            out[item.category] = out.get(item.category, 0.0) + item.dollars
        return out

    def merge(self, other: "CostLedger") -> None:
        self.items.extend(other.items)
