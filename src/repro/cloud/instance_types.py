"""Instance-type catalog.

The paper evaluates four types — m1.small and m1.medium (cheap),
c3.xlarge and cc2.8xlarge (powerful) — so those are modelled with care;
a few extra 2014-era types are included for richer experiments.  Prices
are the published us-east-1 on-demand rates of mid-2014.

Performance parameters drive the Section 4.4 execution-time estimator
(``time = CPU + network + IO``):

* ``core_speed`` — normalised instruction throughput per core.  Derived
  from EC2 Compute Units (ECU) per vCPU; m1.small's single ECU core is
  the unit.
* ``network_gbps`` — per-instance NIC bandwidth.  cc2.8xlarge's 10 GbE
  vs. everything else's sub-gigabit links is why communication-intensive
  kernels (FT, IS) favour it in the paper.
* ``disk_mbps`` — per-instance local-disk bandwidth.  Aggregate IO
  bandwidth scales with the *number* of instances, which is why a fleet
  of m1.smalls beats a few cc2.8xlarges on BTIO (Section 5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..errors import ConfigurationError
from ..units import check_positive


@dataclass(frozen=True)
class InstanceType:
    """Static description of one EC2 instance type."""

    name: str
    vcpus: int
    core_speed: float  # normalised giga-instructions per second per core
    memory_gb: float
    network_gbps: float
    disk_mbps: float
    ondemand_price: float  # $/hour, us-east-1

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ConfigurationError(f"{self.name}: vcpus must be >= 1")
        check_positive(f"{self.name}.core_speed", self.core_speed)
        check_positive(f"{self.name}.memory_gb", self.memory_gb)
        check_positive(f"{self.name}.network_gbps", self.network_gbps)
        check_positive(f"{self.name}.disk_mbps", self.disk_mbps)
        check_positive(f"{self.name}.ondemand_price", self.ondemand_price)

    @property
    def total_speed(self) -> float:
        """Aggregate instruction throughput of one instance."""
        return self.vcpus * self.core_speed


# 2014-era us-east-1 on-demand pricing and capabilities.  ECU-derived core
# speeds: m1.small 1 ECU/core, m1.medium 2, m1.large 2, c3.xlarge 3.5,
# cc2.8xlarge 2.75 (88 ECU / 32 vCPU).
CATALOG: dict[str, InstanceType] = {
    t.name: t
    for t in (
        InstanceType("m1.small", 1, 1.0, 1.7, 0.125, 40.0, 0.044),
        InstanceType("m1.medium", 1, 2.2, 3.75, 0.30, 60.0, 0.087),
        InstanceType("m1.large", 2, 2.0, 7.5, 0.45, 80.0, 0.175),
        InstanceType("c3.xlarge", 4, 3.5, 7.5, 0.70, 120.0, 0.210),
        InstanceType("c3.4xlarge", 16, 3.4, 30.0, 2.0, 160.0, 0.840),
        InstanceType("cc2.8xlarge", 32, 2.75, 60.5, 10.0, 200.0, 2.000),
    )
}

#: The four candidate types used throughout the paper's evaluation.
PAPER_TYPES: tuple[str, ...] = ("m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge")


def get_instance_type(name: str) -> InstanceType:
    """Look up a catalog entry, with a helpful error on typos."""
    try:
        return CATALOG[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown instance type {name!r}; known: {sorted(CATALOG)}"
        ) from None


def instances_needed(itype: InstanceType, n_processes: int) -> int:
    """Number of instances for an ``n_processes`` MPI job.

    The paper pins one MPI process per core: ``M = ceil(N / cores)``
    (Section 3.1.2).
    """
    if n_processes < 1:
        raise ConfigurationError(f"n_processes must be >= 1, got {n_processes}")
    return ceil(n_processes / itype.vcpus)
