"""S3-like checkpoint store.

The paper stores BLCR checkpoints in Amazon S3 ($0.03/GB-month in 2014)
and observes that storage adds < 0.1% to the total bill.  This model
tracks object sizes and storage-time so experiments can verify that
claim, and provides a transfer-time estimate used by the checkpoint
overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import CheckpointError
from ..units import BYTES_PER_GB, check_nonnegative

HOURS_PER_MONTH = 730.0


@dataclass
class S3Object:
    """One stored object (a coordinated checkpoint image)."""

    key: str
    size_bytes: float
    stored_at: float  # hours
    deleted_at: Optional[float] = None

    def storage_gb_hours(self, now: float) -> float:
        end = self.deleted_at if self.deleted_at is not None else now
        if end < self.stored_at:
            raise CheckpointError(
                f"object {self.key!r} deleted before it was stored"
            )
        return (self.size_bytes / BYTES_PER_GB) * (end - self.stored_at)


@dataclass
class S3Store:
    """A bucket with 2014 pricing and a simple bandwidth model.

    Attributes
    ----------
    price_per_gb_month:
        Storage price; $0.03/GB-month per the paper.
    bandwidth_mbps:
        Effective per-instance transfer bandwidth to S3 in MB/s, used to
        estimate checkpoint upload/download time.
    """

    price_per_gb_month: float = 0.03
    bandwidth_mbps: float = 50.0
    #: A single bucket/prefix sustains only so much parallel throughput
    #: (2014-era S3); a 128-instance fleet cannot upload 128x faster.
    aggregate_mbps: float = 400.0
    objects: Dict[str, S3Object] = field(default_factory=dict)
    #: Every object ever stored (overwritten versions keep accruing the
    #: storage-hours they consumed while live).
    archive: list = field(default_factory=list)

    def put(self, key: str, size_bytes: float, now: float) -> S3Object:
        """Store (or overwrite) an object at time ``now`` (hours)."""
        check_nonnegative("size_bytes", size_bytes)
        old = self.objects.get(key)
        if old is not None and old.deleted_at is None:
            old.deleted_at = now
        obj = S3Object(key=key, size_bytes=size_bytes, stored_at=now)
        self.objects[key] = obj
        self.archive.append(obj)
        return obj

    def get(self, key: str) -> S3Object:
        obj = self.objects.get(key)
        if obj is None or obj.deleted_at is not None:
            raise CheckpointError(f"no live object {key!r} in store")
        return obj

    def delete(self, key: str, now: float) -> None:
        self.get(key).deleted_at = now

    def transfer_hours(self, size_bytes: float) -> float:
        """Time to move ``size_bytes`` to/from the store, in hours."""
        check_nonnegative("size_bytes", size_bytes)
        seconds = size_bytes / (self.bandwidth_mbps * 1024.0**2)
        return seconds / 3600.0

    def storage_cost(self, now: float) -> float:
        """Total storage dollars accrued up to time ``now``."""
        gb_hours = sum(o.storage_gb_hours(now) for o in self.archive)
        return gb_hours * self.price_per_gb_month / HOURS_PER_MONTH
