"""Failure-rate function and expected spot price (Section 4.4).

Given a spot-price history and a bid price ``P``, the paper defines

* ``f_i(P, t)`` — the probability that a circle group launched at a
  uniformly random point of the history is terminated by an out-of-bid
  event during productive-time step ``t`` (with ``t = T_i`` meaning the
  application completed first), and
* ``S_i(P)`` — the expected price actually paid, i.e. the mean of the
  historical prices not exceeding ``P``.

The paper estimates ``f`` by Monte-Carlo: pick ``G`` random starting
points and count first-exceedance times.  We compute the same quantity
*exactly* over **every** starting step via a vectorised
next-exceedance scan (the ``G -> infinity`` limit), and keep a sampled
estimator for the model-accuracy study of Section 5.4.1.

Discretisation follows the paper: failure times are floored to integer
multiples of ``step_hours`` (1 hour by default).  Within each step we use
the *maximum* observed price to decide termination — a spike shorter than
a step still kills the instance — and the mean price for payment.

The same small set of log-bid candidates is queried over and over by
:func:`repro.core.interval.optimal_interval`,
:meth:`repro.core.cost_model.GroupOutcome.build` and every baseline, so
the per-bid quantities (``steps_to_failure``, ``failure_pmf``,
``mttf_hours``, ``expected_price``) are memoised per instance.  Cached
arrays are returned read-only; pass ``cache=False`` to recompute from
scratch on every call (the determinism regression tests cross-validate
the two modes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError, TraceError
from ..units import check_positive
from .trace import SpotPriceTrace

# Resolution (relative to step_hours) of the intra-step sampling grid used
# to compute per-step max/mean prices.
_FINE_PER_STEP = 12


class FailureModel:
    """Out-of-bid failure statistics of one spot market.

    Parameters
    ----------
    trace:
        The price history to learn from.
    step_hours:
        Discretisation unit of failure times (the paper uses 1 hour).
    circular:
        Treat the history as circular so every step is a usable starting
        point.  With ``False``, starting points whose horizon would run
        past the end of the trace are censored at the boundary.
    cache:
        Memoise the per-bid statistics (on by default).  The cache is
        exact — it stores the very arrays the uncached path computes —
        and lives with the instance, so it never needs invalidation: a
        new trace means a new model.
    """

    def __init__(
        self,
        trace: SpotPriceTrace,
        step_hours: float = 1.0,
        circular: bool = True,
        cache: bool = True,
    ) -> None:
        check_positive("step_hours", step_hours)
        self.trace = trace
        self.step_hours = float(step_hours)
        self.circular = bool(circular)
        self.cache_enabled = bool(cache)
        self._stf_cache: dict[float, np.ndarray] = {}
        self._pmf_cache: dict[tuple[float, int], np.ndarray] = {}
        self._scalar_cache: dict[tuple[str, float], float] = {}

        n_steps = int(np.floor(trace.duration / step_hours))
        if n_steps < 1:
            raise TraceError(
                f"history ({trace.duration:.3g} h) shorter than one step "
                f"({step_hours:.3g} h)"
            )
        fine = trace.resample(step_hours / _FINE_PER_STEP)
        fine = fine[: n_steps * _FINE_PER_STEP]
        per_step = fine.reshape(n_steps, _FINE_PER_STEP)

        self.n_steps = n_steps
        self.step_max = per_step.max(axis=1)
        self.step_mean = per_step.mean(axis=1)
        self.step_start = per_step[:, 0]
        self._fine = fine

    # ------------------------------------------------------------------
    # Price statistics
    # ------------------------------------------------------------------
    def max_price(self) -> float:
        """Highest historical price — the paper's bid-space bound ``H``."""
        return float(self._fine.max())

    def min_price(self) -> float:
        return float(self._fine.min())

    def expected_price(self, bid: float) -> float:
        """``S(P)``: mean historical price over times when price <= bid.

        If the bid is below every observed price the group can never
        launch; we return ``bid`` itself as a conservative placeholder
        (callers should treat the group as unusable via
        :meth:`launch_probability`).
        """
        key = ("expected_price", float(bid))
        if self.cache_enabled and key in self._scalar_cache:
            return self._scalar_cache[key]
        mask = self._fine <= bid
        value = float(self._fine[mask].mean()) if mask.any() else float(bid)
        if self.cache_enabled:
            self._scalar_cache[key] = value
        return value

    def launch_probability(self, bid: float) -> float:
        """Fraction of starting steps at which the instance launches."""
        return float(np.mean(self.step_start <= bid))

    # ------------------------------------------------------------------
    # First-exceedance machinery
    # ------------------------------------------------------------------
    def steps_to_failure(self, bid: float) -> np.ndarray:
        """For each starting step, productive steps until the first
        out-of-bid event, capped at ``n_steps`` (= censored / no failure
        observed).

        Entry ``k`` means: the price first exceeds ``bid`` during step
        ``start + k``; ``k == 0`` means the instance dies within its first
        step.  Entries for non-launchable starts (start price > bid) are
        set to ``-1``.

        The result is memoised per bid (read-only when served from the
        cache) — the optimizer asks for the same handful of log-bid
        candidates thousands of times.
        """
        cbid = float(bid)
        if self.cache_enabled:
            cached = self._stf_cache.get(cbid)
            if cached is not None:
                return cached
        n = self.n_steps
        exceed = self.step_max > bid
        if self.circular:
            tiled = np.concatenate([exceed, exceed])
        else:
            tiled = exceed
        m = tiled.size
        idx = np.arange(m)
        pos = np.where(tiled, idx, m)
        # next_pos[i] = smallest j >= i with tiled[j] True (else m)
        next_pos = np.minimum.accumulate(pos[::-1])[::-1]
        dist = next_pos[:n] - np.arange(n)
        dist = np.minimum(dist, n)
        out = dist.astype(np.int64)
        out[self.step_start > bid] = -1
        if self.cache_enabled:
            out.setflags(write=False)
            self._stf_cache[cbid] = out
        return out

    def failure_pmf(self, bid: float, horizon_steps: int) -> np.ndarray:
        """The paper's ``f(P, t)`` as a vector of length ``horizon + 1``.

        ``pmf[t]`` for ``t < horizon`` is the probability the group is
        terminated during step ``t``; ``pmf[horizon]`` is the probability
        it survives the whole horizon, i.e. completes the application.
        Probabilities are conditional on the instance launching.  If the
        bid is below every start price the group never launches and the
        pmf is all mass at ``t = 0`` (instant failure), which makes such
        bids maximally unattractive to the optimizer without special
        cases.
        """
        if horizon_steps < 1:
            raise ConfigurationError(
                f"horizon_steps must be >= 1, got {horizon_steps}"
            )
        key = (float(bid), int(horizon_steps))
        if self.cache_enabled:
            cached = self._pmf_cache.get(key)
            if cached is not None:
                return cached
        dist = self.steps_to_failure(bid)
        launchable = dist >= 0
        pmf = np.zeros(horizon_steps + 1)
        if not launchable.any():
            pmf[0] = 1.0
        else:
            d = np.minimum(dist[launchable], horizon_steps)
            counts = np.bincount(d, minlength=horizon_steps + 1)
            pmf[:] = counts / counts.sum()
        if self.cache_enabled:
            pmf.setflags(write=False)
            self._pmf_cache[key] = pmf
        return pmf

    def failure_pmf_sampled(
        self,
        bid: float,
        horizon_steps: int,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Monte-Carlo estimate of :meth:`failure_pmf` (the paper's ``G``
        random starting points), for the accuracy study of Section 5.4.1."""
        if n_samples < 1:
            raise ConfigurationError(f"n_samples must be >= 1, got {n_samples}")
        dist = self.steps_to_failure(bid)
        launchable = np.flatnonzero(dist >= 0)
        pmf = np.zeros(horizon_steps + 1)
        if launchable.size == 0:
            pmf[0] = 1.0
            return pmf
        picks = rng.choice(launchable, size=n_samples, replace=True)
        d = np.minimum(dist[picks], horizon_steps)
        counts = np.bincount(d, minlength=horizon_steps + 1)
        return counts / counts.sum()

    def survival_curve(self, bid: float, horizon_steps: int) -> np.ndarray:
        """``S[k] = P(failure time >= k)`` for ``k = 0..horizon``."""
        pmf = self.failure_pmf(bid, horizon_steps)
        # survival[k] = P(t >= k) = 1 - sum_{j<k} pmf[j]
        surv = np.empty(horizon_steps + 1)
        surv[0] = 1.0
        np.subtract(1.0, np.cumsum(pmf[:-1]), out=surv[1:])
        return np.clip(surv, 0.0, 1.0)

    def mttf_hours(self, bid: float) -> float:
        """Mean time to an out-of-bid failure, in hours.

        Censored observations (no failure within the history) are counted
        at the full history length, making this a conservative (low)
        estimate.  Returns ``inf`` when no failure is ever observed and
        ``0`` when the group cannot launch.
        """
        key = ("mttf", float(bid))
        if self.cache_enabled and key in self._scalar_cache:
            return self._scalar_cache[key]
        dist = self.steps_to_failure(bid)
        launchable = dist >= 0
        if not launchable.any():
            value = 0.0
        else:
            d = dist[launchable].astype(float)
            if np.all(d >= self.n_steps):
                value = float("inf")
            else:
                value = float(d.mean() * self.step_hours)
        if self.cache_enabled:
            self._scalar_cache[key] = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FailureModel(steps={self.n_steps}, step={self.step_hours}h, "
            f"price=[{self.min_price():.4g}, {self.max_price():.4g}]$)"
        )
