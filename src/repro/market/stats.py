"""Trace statistics for the Figure 1 / Figure 2 style analyses.

These helpers quantify the two observations the paper's model rests on:

* spot prices vary wildly across time and across markets (Figure 1), yet
* the *distribution* of the price is stable over a few days (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, TraceError
from ..units import HOURS_PER_DAY
from .trace import SpotPriceTrace


def time_weighted_histogram(
    trace: SpotPriceTrace, bin_edges: np.ndarray
) -> np.ndarray:
    """Fraction of window time spent in each price bin.

    ``bin_edges`` must be increasing; prices outside the edges are clipped
    into the boundary bins so the histogram always sums to 1.
    """
    edges = np.asarray(bin_edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2 or np.any(np.diff(edges) <= 0):
        raise ConfigurationError("bin_edges must be an increasing 1-D array (>= 2 edges)")
    durations = trace.segment_durations()
    prices = np.clip(trace.prices, edges[0], np.nextafter(edges[-1], -np.inf))
    idx = np.searchsorted(edges, prices, side="right") - 1
    hist = np.bincount(idx, weights=durations, minlength=edges.size - 1)
    return hist / durations.sum()


def daily_slices(trace: SpotPriceTrace, n_days: int) -> List[SpotPriceTrace]:
    """Split the leading ``n_days`` 24-hour windows out of a trace."""
    if n_days < 1:
        raise ConfigurationError(f"n_days must be >= 1, got {n_days}")
    if trace.duration < n_days * HOURS_PER_DAY:
        raise TraceError(
            f"trace of {trace.duration:.3g} h cannot supply {n_days} full days"
        )
    out = []
    for day in range(n_days):
        t0 = trace.start_time + day * HOURS_PER_DAY
        out.append(trace.slice(t0, t0 + HOURS_PER_DAY))
    return out


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two histograms (0 = identical)."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ConfigurationError("histograms must have equal shape")
    return float(0.5 * np.abs(p - q).sum())


def distribution_stability(
    trace: SpotPriceTrace, n_days: int, n_bins: int = 20
) -> np.ndarray:
    """Pairwise day-over-day total-variation distances (Figure 2 metric).

    Returns an ``(n_days, n_days)`` symmetric matrix; small off-diagonal
    values mean the daily price distributions agree, which is the paper's
    justification for estimating failure rates from recent history.
    """
    days = daily_slices(trace, n_days)
    lo = min(d.min_price() for d in days)
    hi = max(d.max_price() for d in days)
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi * (1 + 1e-12), n_bins + 1)
    hists = [time_weighted_histogram(d, edges) for d in days]
    out = np.zeros((n_days, n_days))
    for i in range(n_days):
        for j in range(i + 1, n_days):
            out[i, j] = out[j, i] = total_variation_distance(hists[i], hists[j])
    return out


@dataclass(frozen=True)
class TraceSummary:
    """Headline numbers of one market's history (a Figure 1 table row)."""

    min_price: float
    max_price: float
    mean_price: float
    coefficient_of_variation: float
    n_changes: int
    spike_fraction: float

    @classmethod
    def of(cls, trace: SpotPriceTrace, spike_threshold: float) -> "TraceSummary":
        """Summarise ``trace``; time above ``spike_threshold`` counts as spiking."""
        w = trace.segment_durations()
        mean = trace.mean_price()
        var = float(np.average((trace.prices - mean) ** 2, weights=w))
        spike_time = float(w[trace.prices > spike_threshold].sum())
        return cls(
            min_price=trace.min_price(),
            max_price=trace.max_price(),
            mean_price=mean,
            coefficient_of_variation=float(np.sqrt(var) / mean) if mean > 0 else 0.0,
            n_changes=trace.n_segments - 1,
            spike_fraction=spike_time / trace.duration,
        )


def relative_difference(actual: float, estimate: float) -> float:
    """The paper's accuracy metric ``|A - A'| / A`` (Section 5.4.1).

    Defined as 0 when both values are 0, and as ``inf`` when the reference
    is 0 but the estimate is not.
    """
    # reprolint: disable=R005 -- piecewise metric definition: reference exactly 0
    if actual == 0.0:
        # reprolint: disable=R005 -- same piecewise case: estimate exactly 0
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(actual - estimate) / abs(actual)
