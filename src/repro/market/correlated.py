"""Correlated spot markets (extension).

The paper *assumes* spot prices in different availability zones move
independently (Section 3.1.2) and builds the replication math on that —
the joint failure probability is the product of the marginals.  This
module lets experiments stress that assumption: a region-wide "demand
surge" process hits every market simultaneously, and each market joins
a given surge with probability ``correlation``.

* ``correlation = 0`` — the canonical independent markets.
* ``correlation = 1`` — every surge hits every market: replicas die
  together and spatial redundancy buys nothing.

Surges are overlaid as price *floors* on the independently generated
traces, so the marginal behaviour of each market barely changes while
the joint behaviour sweeps from independent to comonotone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cloud.instance_types import PAPER_TYPES, get_instance_type
from ..cloud.zones import DEFAULT_ZONES, Zone
from ..errors import ConfigurationError
from ..sim.rng import derive_seed
from ..units import check_fraction, check_positive
from .generator import RegimeSwitchingGenerator
from .history import MarketKey, SpotPriceHistory
from .presets import market_params
from .trace import SpotPriceTrace

#: Scalar reference for every public function (reprolint R004).  The
#: surge sampler and the overlay are checked against interleaved scalar
#: re-derivations in tests/test_batch_parity.py; the history builder is
#: re-derived market-by-market from the scalar generator plus serial
#: overlays under the same derived seeds.
KERNEL_ORACLES = {
    "sample_surges": "tests.test_batch_parity.TestCorrelatedParity.test_sample_surges_matches_scalar_reference",
    "overlay_price_floor": "tests.test_batch_parity.TestCorrelatedParity.test_overlay_floor_matches_scalar_reference",
    "build_correlated_history": "repro.market.generator.RegimeSwitchingGenerator.generate",
}


@dataclass(frozen=True)
class RegionSurge:
    """One region-wide demand surge."""

    start: float
    duration: float
    severity: float  # price floor as a multiple of each market's base price

    @property
    def end(self) -> float:
        return self.start + self.duration


def sample_surges(
    duration_hours: float,
    rng: np.random.Generator,
    rate_per_hour: float = 0.02,
    mean_duration: float = 3.0,
    severity_median: float = 8.0,
    severity_sigma: float = 0.5,
) -> list[RegionSurge]:
    """Poisson surge process over ``[0, duration_hours)``."""
    check_positive("duration_hours", duration_hours)
    n = int(rng.poisson(rate_per_hour * duration_hours))
    if n == 0:
        return []
    draws = np.empty((n, 3))
    for i in range(n):
        # The three draws stay scalar and interleaved: exponential and
        # standard_normal use the ziggurat and consume a variable number
        # of stream values, so batching each column would reorder the
        # RNG stream and change every seeded surge set.  Only the
        # arithmetic below is vectorised.
        draws[i, 0] = rng.uniform(0.0, duration_hours)
        draws[i, 1] = rng.exponential(mean_duration)
        draws[i, 2] = rng.standard_normal()
    starts = draws[:, 0]
    durs = np.minimum(np.maximum(0.25, draws[:, 1]), duration_hours - starts)
    sevs = severity_median * np.exp(severity_sigma * draws[:, 2])
    order = np.argsort(starts, kind="stable")
    return [
        RegionSurge(float(starts[i]), float(durs[i]), float(sevs[i]))
        for i in order
    ]


def overlay_price_floor(
    trace: SpotPriceTrace, start: float, end: float, floor: float
) -> SpotPriceTrace:
    """Raise the price to at least ``floor`` on ``[start, end)``.

    The overlay window is clipped to the trace's own window; an overlay
    entirely outside it is a no-op.
    """
    if end <= start:
        raise ConfigurationError(f"empty overlay window [{start}, {end})")
    lo = max(start, trace.start_time)
    hi = min(end, trace.end_time)
    if hi <= lo:
        return trace
    times = trace.times
    prices = trace.prices
    # Split segments at lo and hi, then raise everything inside.
    for cut in (lo, hi):
        if cut < trace.end_time and cut not in times:
            idx = int(np.searchsorted(times, cut, side="right") - 1)
            times = np.insert(times, idx + 1, cut)
            prices = np.insert(prices, idx + 1, prices[idx])
    inside = (times >= lo) & (times < hi)
    new_prices = np.where(inside, np.maximum(prices, floor), prices)
    # Re-compress equal adjacent segments introduced by the overlay.
    keep = np.empty(times.size, dtype=bool)
    keep[0] = True
    np.not_equal(new_prices[1:], new_prices[:-1], out=keep[1:])
    return SpotPriceTrace(times[keep], new_prices[keep], trace.end_time)


def build_correlated_history(
    duration_hours: float,
    seed: int,
    correlation: float,
    instance_types: Optional[Sequence[str]] = None,
    zones: Optional[Sequence[Zone]] = None,
    surge_rate_per_hour: float = 0.02,
    surge_mean_duration: float = 3.0,
) -> SpotPriceHistory:
    """Canonical presets plus region-wide surges shared across markets.

    Each market joins each surge independently with probability
    ``correlation``; during a joined surge its price is floored at
    ``severity x base_price``.
    """
    check_fraction("correlation", correlation)
    instance_types = list(instance_types or PAPER_TYPES)
    zones = list(zones or DEFAULT_ZONES)
    surges = sample_surges(
        duration_hours,
        np.random.default_rng(derive_seed(seed, "region-surges")),
        rate_per_hour=surge_rate_per_hour,
        mean_duration=surge_mean_duration,
    )
    history = SpotPriceHistory()
    for tname in instance_types:
        get_instance_type(tname)  # validate
        for zone in zones:
            key = MarketKey(tname, zone.name)
            params = market_params(tname, zone.name)
            rng = np.random.default_rng(derive_seed(seed, f"corr-market:{key}"))
            trace = RegimeSwitchingGenerator(params, rng).generate(duration_hours)
            join = np.random.default_rng(derive_seed(seed, f"corr-join:{key}"))
            for surge in surges:
                if join.random() < correlation:
                    trace = overlay_price_floor(
                        trace,
                        surge.start,
                        surge.end,
                        surge.severity * params.base_price,
                    )
            history.add(key, trace)
    return history
