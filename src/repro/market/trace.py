"""Piecewise-constant spot-price traces.

Amazon repriced spot instances at irregular intervals; a price series is
therefore a right-open step function: the price set at ``times[k]`` holds
until ``times[k+1]`` (or ``end_time`` for the last segment).  All times
are hours, all prices dollars per instance-hour.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from ..errors import TraceError


class SpotPriceTrace:
    """A spot-price step function on ``[times[0], end_time)``.

    Parameters
    ----------
    times:
        Segment start times in hours, strictly increasing.
    prices:
        Price of each segment, same length as ``times``, all >= 0.
    end_time:
        End of the observation window; must exceed ``times[-1]``.
    """

    # __weakref__ lets the replay kernels key their shared per-(trace,
    # bid) index tables on trace identity with weakref-based eviction;
    # _chash caches the content hash used by the on-disk artifact store.
    __slots__ = ("times", "prices", "end_time", "_chash", "__weakref__")

    def __init__(
        self,
        times: Iterable[float],
        prices: Iterable[float],
        end_time: float,
    ) -> None:
        t = np.asarray(list(times) if not isinstance(times, np.ndarray) else times, dtype=float)
        p = np.asarray(list(prices) if not isinstance(prices, np.ndarray) else prices, dtype=float)
        if t.ndim != 1 or p.ndim != 1 or t.shape != p.shape:
            raise TraceError("times and prices must be 1-D arrays of equal length")
        if t.size == 0:
            raise TraceError("a trace needs at least one segment")
        if np.any(np.diff(t) <= 0):
            raise TraceError("times must be strictly increasing")
        if np.any(~np.isfinite(t)) or np.any(~np.isfinite(p)):
            raise TraceError("times and prices must be finite")
        if np.any(p < 0):
            raise TraceError("prices must be non-negative")
        if end_time <= t[-1]:
            raise TraceError(
                f"end_time ({end_time}) must exceed the last segment start ({t[-1]})"
            )
        self.times = t
        self.prices = p
        self.end_time = float(end_time)
        self._chash: str | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        return float(self.times[0])

    @property
    def duration(self) -> float:
        """Length of the observation window in hours."""
        return self.end_time - self.start_time

    @property
    def n_segments(self) -> int:
        return int(self.times.size)

    def segment_durations(self) -> np.ndarray:
        """Duration of each constant-price segment."""
        ends = np.append(self.times[1:], self.end_time)
        return ends - self.times

    def segments(self) -> Iterator[Tuple[float, float, float]]:
        """Yield ``(start, end, price)`` triples."""
        ends = np.append(self.times[1:], self.end_time)
        for start, end, price in zip(self.times, ends, self.prices):
            yield float(start), float(end), float(price)

    # ------------------------------------------------------------------
    # Point and array evaluation
    # ------------------------------------------------------------------
    def price_at(self, t: float) -> float:
        """Price in effect at time ``t`` (must lie inside the window)."""
        if not self.start_time <= t < self.end_time:
            raise TraceError(
                f"t={t} outside trace window [{self.start_time}, {self.end_time})"
            )
        idx = int(np.searchsorted(self.times, t, side="right") - 1)
        return float(self.prices[idx])

    def prices_at(self, ts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`price_at` (no bounds clamping — raises)."""
        ts = np.asarray(ts, dtype=float)
        if ts.size and (ts.min() < self.start_time or ts.max() >= self.end_time):
            raise TraceError("sample times outside trace window")
        idx = np.searchsorted(self.times, ts, side="right") - 1
        return self.prices[idx]

    def resample(self, step: float) -> np.ndarray:
        """Sample the trace on a regular grid of spacing ``step`` hours.

        Returns the price at ``start, start+step, ...`` for every grid
        point strictly inside the window.  This is the representation the
        failure model operates on.
        """
        if step <= 0:
            raise TraceError(f"step must be > 0, got {step}")
        n = int(np.floor(self.duration / step))
        if n == 0:
            raise TraceError("window shorter than one step")
        grid = self.start_time + step * np.arange(n)
        return self.prices_at(grid)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def slice(self, t0: float, t1: float) -> "SpotPriceTrace":
        """Restrict to the window ``[t0, t1)``."""
        if not (self.start_time <= t0 < t1 <= self.end_time):
            raise TraceError(
                f"slice [{t0}, {t1}) outside window "
                f"[{self.start_time}, {self.end_time})"
            )
        lo = int(np.searchsorted(self.times, t0, side="right") - 1)
        hi = int(np.searchsorted(self.times, t1, side="left"))
        times = self.times[lo:hi].copy()
        prices = self.prices[lo:hi].copy()
        times[0] = t0
        return SpotPriceTrace(times, prices, t1)

    def shift(self, dt: float) -> "SpotPriceTrace":
        """Translate the whole trace by ``dt`` hours."""
        return SpotPriceTrace(self.times + dt, self.prices, self.end_time + dt)

    def concat(self, other: "SpotPriceTrace") -> "SpotPriceTrace":
        """Append ``other`` (shifted to start at this trace's end)."""
        shifted = other.shift(self.end_time - other.start_time)
        return SpotPriceTrace(
            np.concatenate([self.times, shifted.times]),
            np.concatenate([self.prices, shifted.prices]),
            shifted.end_time,
        )

    # ------------------------------------------------------------------
    # Time-weighted statistics
    # ------------------------------------------------------------------
    def max_price(self) -> float:
        """Highest price in the window (the paper's ``H_i``)."""
        return float(self.prices.max())

    def min_price(self) -> float:
        return float(self.prices.min())

    def mean_price(self) -> float:
        """Time-weighted mean price."""
        w = self.segment_durations()
        return float(np.average(self.prices, weights=w))

    def quantile(self, q: float) -> float:
        """Time-weighted price quantile, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise TraceError(f"quantile must be in [0, 1], got {q}")
        order = np.argsort(self.prices, kind="stable")
        w = self.segment_durations()[order]
        cum = np.cumsum(w)
        target = q * cum[-1]
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, order.size - 1)
        return float(self.prices[order][idx])

    def fraction_below(self, price: float) -> float:
        """Fraction of window time with spot price <= ``price``."""
        w = self.segment_durations()
        return float(w[self.prices <= price].sum() / w.sum())

    def content_hash(self) -> str:
        """SHA-256 over the exact float64 bytes of the trace.

        Two traces share a hash iff their step functions are
        bit-identical, which is the keying contract of the on-disk
        artifact store (:mod:`repro.execution.artifacts`): equal hash
        implies every table derived from the trace is bit-identical
        too.  Traces are value objects — nothing mutates ``times`` /
        ``prices`` after construction — so the digest is computed once
        and cached on the instance.
        """
        if self._chash is None:
            import hashlib

            h = hashlib.sha256()
            h.update(self.times.tobytes())
            h.update(self.prices.tobytes())
            h.update(self.end_time.hex().encode())
            self._chash = h.hexdigest()
        return self._chash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpotPriceTrace):
            return NotImplemented
        return (
            self.end_time == other.end_time
            and np.array_equal(self.times, other.times)
            and np.array_equal(self.prices, other.prices)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpotPriceTrace(window=[{self.start_time:.3g}, {self.end_time:.3g})h, "
            f"segments={self.n_segments}, "
            f"price=[{self.min_price():.4g}, {self.max_price():.4g}]$)"
        )
