"""Spot-market substrate.

Everything the optimizer knows about the spot market flows through this
package:

* :class:`~repro.market.trace.SpotPriceTrace` — a piecewise-constant price
  series (the paper's "spot price history").
* :mod:`~repro.market.generator` — a regime-switching synthetic generator
  calibrated to the qualitative observations of Section 2.1 (long calm
  stretches, abrupt 10-100x spikes, per-type/zone heterogeneity, stable
  short-horizon distributions).
* :class:`~repro.market.history.SpotPriceHistory` — a store of traces
  keyed by (instance type, availability zone).
* :class:`~repro.market.failure.FailureModel` — the failure-rate function
  ``f_i(P, t)`` and expected spot price ``S_i(P)`` of Section 4.4.
* :mod:`~repro.market.stats` — histograms and distribution-stability
  metrics used by Figures 1 and 2.
"""

from .trace import SpotPriceTrace
from .generator import RegimeSwitchingGenerator, SpotMarketParams
from .history import SpotPriceHistory, MarketKey
from .failure import FailureModel
from . import correlated, io, stats, presets

__all__ = [
    "SpotPriceTrace",
    "RegimeSwitchingGenerator",
    "SpotMarketParams",
    "SpotPriceHistory",
    "MarketKey",
    "FailureModel",
    "correlated",
    "io",
    "stats",
    "presets",
]
