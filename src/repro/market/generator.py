"""Regime-switching synthetic spot-price generator.

The paper's model never consumes live AWS data — only a price *history*
(Section 2.1, Section 5.1 "Simulation").  This generator produces
histories with the statistical features the paper's observations call
out:

1. **Calm regimes** — the price hovers near a low base (a fraction of the
   on-demand price), changing rarely and by small amounts (region "A" in
   the paper's Figure 1).
2. **Spike regimes** — the price jumps far above on-demand (the paper
   observed <$0.1 to ~$10 on m1.medium) and stays there for a short,
   exponentially-distributed while (region "B").
3. **Spatial heterogeneity** — parameters differ per (type, zone); some
   markets never spike in a window (m1.medium/us-east-1b was flat).
4. **Short-horizon distribution stability** — regime parameters are
   constant within a generated window, so day-over-day histograms agree
   (the paper's Figure 2), while individual sample paths still differ.

The generator is a two-state semi-Markov chain sampled on a fixed
repricing grid.  Everything is driven by an explicit
:class:`numpy.random.Generator`, so traces are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import check_fraction, check_nonnegative, check_positive
from .trace import SpotPriceTrace

# Minimum spot price: AWS never published a $0 spot price; keeping a small
# floor also keeps expected-price estimates well defined.
PRICE_FLOOR = 0.001


@dataclass(frozen=True)
class SpotMarketParams:
    """Parameters of one simulated spot market (an instance type in a zone).

    Attributes
    ----------
    base_price:
        Centre of the calm-regime price, $/hour.  Typically 20-35% of the
        corresponding on-demand price, matching 2014-era EC2.
    calm_volatility:
        Relative standard deviation of calm-regime price *changes*.
    calm_change_rate:
        Expected number of calm-regime price changes per hour.  Low values
        produce the long flat stretches of Figure 1.
    spike_rate:
        Expected number of spike onsets per hour.  Zero produces a
        spike-free market (e.g. m1.medium in us-east-1b).
    spike_magnitude:
        Median multiple of ``base_price`` reached during a spike.
    spike_sigma:
        Log-normal shape of the spike magnitude (higher = heavier tail).
    spike_duration_mean:
        Mean spike length in hours.
    repricing_interval:
        Granularity of the repricing grid, hours (AWS updated prices every
        few minutes; 1/12 h = 5 min is the default).
    diurnal_amplitude:
        Strength of the deterministic daily demand cycle.  2014 spot
        markets showed strong business-hours price swells; the cycle
        multiplies the price by up to ``1 + diurnal_amplitude`` at the
        daily peak.  This is what makes the failure-rate function
        *learnable*: out-of-bid events recur at the same local time every
        day, so a model trained on recent history predicts them well
        (Section 5.4.1).
    diurnal_peak_hour:
        Local hour of the daily peak.
    """

    base_price: float
    calm_volatility: float = 0.05
    calm_change_rate: float = 0.5
    spike_rate: float = 0.02
    spike_magnitude: float = 10.0
    spike_sigma: float = 0.5
    spike_duration_mean: float = 0.5
    repricing_interval: float = 1.0 / 12.0
    diurnal_amplitude: float = 0.0
    diurnal_peak_hour: float = 14.0

    def __post_init__(self) -> None:
        check_positive("base_price", self.base_price)
        check_nonnegative("calm_volatility", self.calm_volatility)
        check_nonnegative("calm_change_rate", self.calm_change_rate)
        check_nonnegative("spike_rate", self.spike_rate)
        check_positive("spike_magnitude", self.spike_magnitude)
        check_nonnegative("spike_sigma", self.spike_sigma)
        check_positive("spike_duration_mean", self.spike_duration_mean)
        check_positive("repricing_interval", self.repricing_interval)
        check_nonnegative("diurnal_amplitude", self.diurnal_amplitude)
        check_nonnegative("diurnal_peak_hour", self.diurnal_peak_hour)


class RegimeSwitchingGenerator:
    """Generates :class:`SpotPriceTrace` objects from market parameters."""

    def __init__(self, params: SpotMarketParams, rng: np.random.Generator) -> None:
        self.params = params
        self.rng = rng

    def generate(self, duration_hours: float, start_time: float = 0.0) -> SpotPriceTrace:
        """Generate a trace covering ``[start_time, start_time + duration)``.

        The sample path is built on the repricing grid and then compressed
        to its change points, so the resulting trace is compact no matter
        the grid resolution.
        """
        check_positive("duration_hours", duration_hours)
        p = self.params
        n = max(1, int(np.ceil(duration_hours / p.repricing_interval)))
        grid_prices = self._sample_grid(n)

        grid_times = start_time + p.repricing_interval * np.arange(n)
        if p.diurnal_amplitude > 0.0:
            # Peaked daily bump: ~6 elevated hours around the peak hour.
            phase = 2.0 * np.pi * (grid_times - p.diurnal_peak_hour) / 24.0
            bump = np.maximum(0.0, np.cos(phase)) ** 4
            grid_prices = grid_prices * (1.0 + p.diurnal_amplitude * bump)
        # Compress runs of equal price into single segments.
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(grid_prices[1:], grid_prices[:-1], out=keep[1:])
        return SpotPriceTrace(
            grid_times[keep], grid_prices[keep], start_time + duration_hours
        )

    # ------------------------------------------------------------------
    def _sample_grid(self, n: int) -> np.ndarray:
        """Sample ``n`` grid prices from the two-regime chain.

        Event-level walk over the pre-drawn arrays: constant stretches
        (the vast majority of the grid — calm steps without a change,
        and spike plateaus) are filled by array assignment, and Python
        only touches the O(event-count) change points.  Byte-identical
        to :func:`_sample_grid_reference` under the same seed: the RNG
        draws are the same five arrays in the same order, and every
        price update applies the same float operations in the same
        order — only the per-step bookkeeping of untouched steps is
        replaced by slice fills.
        """
        p = self.params
        rng = self.rng
        dt = p.repricing_interval

        price = p.base_price * float(rng.uniform(0.9, 1.1))

        # Per-step event probabilities (grid is fine, so linearisation of
        # the exponential clock is accurate).
        p_spike = min(1.0, p.spike_rate * dt)
        p_change = min(1.0, p.calm_change_rate * dt)

        # Draw all randomness up front — one vectorised draw per array.
        # The draw order is the RNG-stream contract shared with the
        # reference implementation; never reorder it.
        u_spike = rng.random(n)
        u_change = rng.random(n)
        normals = rng.standard_normal(n)
        spike_mags = p.spike_magnitude * np.exp(
            p.spike_sigma * rng.standard_normal(n)
        )
        spike_durs = rng.exponential(p.spike_duration_mean, size=n)

        prices = np.empty(n)
        onsets = np.flatnonzero(u_spike < p_spike)
        change = u_change < p_change
        base = p.base_price
        cv = p.calm_volatility
        k = 0
        while k < n:
            pos = int(np.searchsorted(onsets, k))
            onset = int(onsets[pos]) if pos < onsets.size else n
            # Calm stretch [k, onset): the price moves only at flagged
            # change steps (onset is the first spike candidate >= k, so
            # every step in between is a calm step).
            seg = k
            for c in np.flatnonzero(change[k:onset]):
                c = int(c) + k
                if c > seg:
                    prices[seg:c] = max(PRICE_FLOOR, price)
                price = price * (1.0 + cv * normals[c])
                # Mean-revert gently so calm prices stay near base.
                price = 0.9 * price + 0.1 * base
                seg = c
            if onset > seg:
                prices[seg:onset] = max(PRICE_FLOOR, price)
            if onset >= n:
                break
            # Spike plateau starting at `onset`.  The reference decrements
            # spike_left step by step, so the plateau length is found by
            # the same sequential subtraction (a fused n_steps = ceil(...)
            # could round differently at the boundary).
            spike_price = base * max(1.5, spike_mags[onset])
            left = max(dt, spike_durs[onset])
            m = 1
            e = -1
            while onset + m < n:
                left -= dt
                if left <= 0.0:
                    e = onset + m
                    break
                m += 1
            if e < 0:
                prices[onset:n] = max(PRICE_FLOOR, spike_price)
                break
            prices[onset:e] = max(PRICE_FLOOR, spike_price)
            price = base * (1.0 + cv * normals[e])
            prices[e] = max(PRICE_FLOOR, price)
            k = e + 1
        return prices


def _sample_grid_reference(params: SpotMarketParams, rng: np.random.Generator, n: int) -> np.ndarray:
    """Scalar reference kernel for :meth:`RegimeSwitchingGenerator._sample_grid`.

    One Python step per grid point, exactly as originally written.  Kept
    as the bit-identity oracle for the event-level implementation: parity
    tests and the market benchmark compare the two byte-for-byte under a
    shared RNG state.
    """
    p = params
    dt = p.repricing_interval

    prices = np.empty(n)
    price = p.base_price * float(rng.uniform(0.9, 1.1))
    in_spike = False
    spike_left = 0.0
    spike_price = price

    p_spike = min(1.0, p.spike_rate * dt)
    p_change = min(1.0, p.calm_change_rate * dt)

    u_spike = rng.random(n)
    u_change = rng.random(n)
    normals = rng.standard_normal(n)
    spike_mags = p.spike_magnitude * np.exp(p.spike_sigma * rng.standard_normal(n))
    spike_durs = rng.exponential(p.spike_duration_mean, size=n)

    for k in range(n):
        if in_spike:
            spike_left -= dt
            if spike_left <= 0.0:
                in_spike = False
                price = p.base_price * (1.0 + p.calm_volatility * normals[k])
            else:
                price = spike_price
        else:
            if u_spike[k] < p_spike:
                in_spike = True
                spike_left = max(dt, spike_durs[k])
                spike_price = p.base_price * max(1.5, spike_mags[k])
                price = spike_price
            elif u_change[k] < p_change:
                price = price * (1.0 + p.calm_volatility * normals[k])
                # Mean-revert gently so calm prices stay near base.
                price = 0.9 * price + 0.1 * p.base_price
        prices[k] = max(PRICE_FLOOR, price)
    return prices


def generate_market(
    params: SpotMarketParams,
    duration_hours: float,
    seed: int,
    start_time: float = 0.0,
) -> SpotPriceTrace:
    """One-shot convenience wrapper around :class:`RegimeSwitchingGenerator`."""
    gen = RegimeSwitchingGenerator(params, np.random.default_rng(seed))
    return gen.generate(duration_hours, start_time=start_time)
