"""Spot-price history store.

The optimizer addresses markets by ``(instance_type_name, zone_name)``
pairs — the paper's *circle group* identity.  The history store owns one
trace per market and supports windowed views, which is what the adaptive
algorithm (Section 4.3) consumes: "update the spot price trace with the
spot price history from the previous window".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from ..errors import TraceError
from .trace import SpotPriceTrace


@dataclass(frozen=True, order=True)
class MarketKey:
    """Identity of one spot market: an instance type in an availability zone."""

    instance_type: str
    zone: str

    def __str__(self) -> str:
        return f"{self.instance_type}@{self.zone}"


class SpotPriceHistory:
    """A mapping from :class:`MarketKey` to :class:`SpotPriceTrace`."""

    def __init__(self) -> None:
        self._traces: Dict[MarketKey, SpotPriceTrace] = {}

    def add(self, key: MarketKey, trace: SpotPriceTrace) -> None:
        """Register or replace the trace for ``key``."""
        self._traces[key] = trace

    def extend(self, key: MarketKey, trace: SpotPriceTrace) -> None:
        """Append new observations to an existing market's history."""
        existing = self._traces.get(key)
        self._traces[key] = trace if existing is None else existing.concat(trace)

    def get(self, key: MarketKey) -> SpotPriceTrace:
        try:
            return self._traces[key]
        except KeyError:
            raise TraceError(f"no history for market {key}") from None

    def window(self, key: MarketKey, t0: float, t1: float) -> SpotPriceTrace:
        """History of ``key`` restricted to ``[t0, t1)``."""
        return self.get(key).slice(t0, t1)

    def keys(self) -> Iterator[MarketKey]:
        return iter(sorted(self._traces))

    def items(self) -> Iterator[Tuple[MarketKey, SpotPriceTrace]]:
        for key in self.keys():
            yield key, self._traces[key]

    def __contains__(self, key: MarketKey) -> bool:
        return key in self._traces

    def __len__(self) -> int:
        return len(self._traces)

    @classmethod
    def from_mapping(
        cls, mapping: Iterable[Tuple[MarketKey, SpotPriceTrace]]
    ) -> "SpotPriceHistory":
        hist = cls()
        for key, trace in mapping:
            hist.add(key, trace)
        return hist
