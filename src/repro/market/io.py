"""Trace persistence: CSV, JSON, and the AWS price-history format.

The library's algorithms are trace-driven, so loading *real* spot-price
history is the bridge from simulation to production use.  Three formats:

* **CSV** — ``time_hours,price`` rows (one header line), one file per
  market.  The native round-trip format.
* **JSON** — a single document holding many markets, used by the
  experiment runner's ``--json`` export and for fixture sharing.
* **AWS** — the ``describe-spot-price-history`` response shape
  (``SpotPriceHistory`` list of ``{Timestamp, SpotPrice, InstanceType,
  AvailabilityZone}``), so a dump from the AWS CLI can be ingested
  directly.
"""

from __future__ import annotations

import csv
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import IO, Union

import numpy as np

from ..errors import TraceError
from .history import MarketKey, SpotPriceHistory
from .trace import SpotPriceTrace

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# CSV — one market per file
# ----------------------------------------------------------------------
def trace_to_csv(trace: SpotPriceTrace, path: PathLike) -> None:
    """Write ``time_hours,price`` rows plus a final end-marker row.

    The end marker (an ``end,<end_time>`` row) preserves the window
    bound, which plain change-points cannot express.
    """
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_hours", "price"])
        for t, p in zip(trace.times, trace.prices):
            writer.writerow([repr(float(t)), repr(float(p))])
        writer.writerow(["end", repr(trace.end_time)])


def trace_from_csv(path: PathLike) -> SpotPriceTrace:
    """Inverse of :func:`trace_to_csv`."""
    times: list[float] = []
    prices: list[float] = []
    end_time: float | None = None
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["time_hours", "price"]:
            raise TraceError(f"{path}: not a trace CSV (bad header {header!r})")
        for row in reader:
            if not row:
                continue
            if row[0] == "end":
                end_time = float(row[1])
                break
            times.append(float(row[0]))
            prices.append(float(row[1]))
    if end_time is None:
        raise TraceError(f"{path}: missing end marker row")
    return SpotPriceTrace(times, prices, end_time)


# ----------------------------------------------------------------------
# JSON — whole histories
# ----------------------------------------------------------------------
def history_to_json(history: SpotPriceHistory) -> str:
    """Serialise a multi-market history to a JSON string."""
    doc = {
        "format": "repro.spot-history.v1",
        "markets": [
            {
                "instance_type": key.instance_type,
                "zone": key.zone,
                "times": [float(t) for t in trace.times],
                "prices": [float(p) for p in trace.prices],
                "end_time": trace.end_time,
            }
            for key, trace in history.items()
        ],
    }
    return json.dumps(doc)


def history_from_json(text: str) -> SpotPriceHistory:
    """Inverse of :func:`history_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid history JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro.spot-history.v1":
        raise TraceError("not a repro spot-history document")
    history = SpotPriceHistory()
    for market in doc.get("markets", []):
        key = MarketKey(market["instance_type"], market["zone"])
        history.add(
            key,
            SpotPriceTrace(market["times"], market["prices"], market["end_time"]),
        )
    return history


def save_history(history: SpotPriceHistory, path: PathLike) -> None:
    Path(path).write_text(history_to_json(history))


def load_history(path: PathLike) -> SpotPriceHistory:
    return history_from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# AWS describe-spot-price-history
# ----------------------------------------------------------------------
def _parse_aws_timestamp(value: str) -> float:
    """ISO-8601 timestamp -> POSIX seconds (UTC assumed when naive)."""
    text = value.replace("Z", "+00:00")
    try:
        dt = datetime.fromisoformat(text)
    except ValueError as exc:
        raise TraceError(f"bad AWS timestamp {value!r}") from exc
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return dt.timestamp()


def history_from_aws(
    doc: Union[str, dict],
    window_end_hours_after_last: float = 1.0,
) -> SpotPriceHistory:
    """Ingest an ``aws ec2 describe-spot-price-history`` response.

    Timestamps are rebased so the earliest observation across all
    markets is hour 0.  Each market's window is closed
    ``window_end_hours_after_last`` hours past its last observation
    (AWS reports change points, not windows).
    """
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid AWS JSON: {exc}") from exc
    records = doc.get("SpotPriceHistory")
    if not isinstance(records, list) or not records:
        raise TraceError("document has no SpotPriceHistory records")

    per_market: dict[MarketKey, list[tuple[float, float]]] = {}
    for rec in records:
        try:
            key = MarketKey(rec["InstanceType"], rec["AvailabilityZone"])
            ts = _parse_aws_timestamp(rec["Timestamp"])
            price = float(rec["SpotPrice"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed AWS record {rec!r}") from exc
        per_market.setdefault(key, []).append((ts, price))

    t0 = min(ts for obs in per_market.values() for ts, _ in obs)
    history = SpotPriceHistory()
    for key, obs in per_market.items():
        obs.sort()
        times, prices = [], []
        for ts, price in obs:
            hour = (ts - t0) / 3600.0
            if times and hour <= times[-1]:
                prices[-1] = price  # same-instant update: keep the latest
                continue
            times.append(hour)
            prices.append(price)
        history.add(
            key,
            SpotPriceTrace(
                np.array(times),
                np.array(prices),
                times[-1] + window_end_hours_after_last,
            ),
        )
    return history
