"""Canonical spot-market presets.

One :class:`~repro.market.generator.SpotMarketParams` per (instance type,
zone), calibrated to the qualitative 2014 record the paper reports:

* calm spot prices sit at ~25-35% of on-demand,
* m1.medium in us-east-1a spikes from <$0.1 to ~$10 (a ~700x excursion),
* m1.medium in us-east-1b stays low and flat for days,
* bigger types (cc2.8xlarge) spike less violently but cost more at rest.

Zone personalities are applied multiplicatively so every (type, zone)
market is distinct — the *spatial variation* of Figure 1 — while staying
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..cloud.instance_types import PAPER_TYPES, get_instance_type
from ..cloud.zones import DEFAULT_ZONES, Zone
from ..sim.rng import derive_seed
from .generator import RegimeSwitchingGenerator, SpotMarketParams
from .history import MarketKey, SpotPriceHistory

#: Base spot price as a fraction of the on-demand price (2014-typical).
#: Calibrated so the *per-compute-unit* spot cost orders
#: m1.small < m1.medium < c3.xlarge < cc2.8xlarge, matching the paper's
#: observation that looser deadlines let the optimizer walk down from
#: cc2.8xlarge through c3.xlarge and m1.medium to m1.small (Figure 7a).
_BASE_FRACTION: Dict[str, float] = {
    "m1.small": 0.085,
    "m1.medium": 0.10,
    "m1.large": 0.12,
    "c3.xlarge": 0.35,
    "c3.4xlarge": 0.32,
    "cc2.8xlarge": 0.25,
}

#: Per-type spike behaviour: (rate per hour, median magnitude x base, sigma).
_SPIKE_PROFILE: Dict[str, tuple[float, float, float]] = {
    "m1.small": (0.015, 60.0, 0.8),
    "m1.medium": (0.020, 300.0, 1.0),  # the paper's <$0.1 -> ~$10 market
    "m1.large": (0.010, 40.0, 0.7),
    "c3.xlarge": (0.015, 25.0, 0.6),
    "c3.4xlarge": (0.012, 15.0, 0.6),
    "cc2.8xlarge": (0.010, 8.0, 0.5),
}

#: Zone personalities: multipliers on spike rate and calm change rate,
#: plus the amplitude and peak hour of the deterministic daily cycle.
_ZONE_PROFILE: Dict[str, tuple[float, float, float, float]] = {
    "us-east-1a": (2.0, 1.5, 3.0, 14.0),  # busy, volatile, strong diurnal
    "us-east-1b": (0.15, 0.3, 0.0, 14.0),  # quiet; spikes rare but real
    "us-east-1c": (1.0, 1.0, 1.2, 19.0),  # typical, evening-peaked
}


def market_params(instance_type: str, zone: str) -> SpotMarketParams:
    """The canonical generator parameters for one (type, zone) market."""
    itype = get_instance_type(instance_type)
    frac = _BASE_FRACTION.get(instance_type, 0.25)
    rate, mag, sigma = _SPIKE_PROFILE.get(instance_type, (0.01, 20.0, 0.6))
    zrate, zchange, diurnal, peak = _ZONE_PROFILE.get(zone, (1.0, 1.0, 0.0, 14.0))
    return SpotMarketParams(
        base_price=itype.ondemand_price * frac,
        calm_volatility=0.05,
        calm_change_rate=0.5 * zchange,
        spike_rate=rate * zrate,
        spike_magnitude=mag,
        spike_sigma=sigma,
        spike_duration_mean=2.0,
        diurnal_amplitude=diurnal,
        diurnal_peak_hour=peak,
    )


def build_history(
    duration_hours: float,
    seed: int,
    instance_types: Optional[Sequence[str]] = None,
    zones: Optional[Sequence[Zone]] = None,
    start_time: float = 0.0,
) -> SpotPriceHistory:
    """Generate a full multi-market history.

    Every market gets an independent RNG stream derived from ``seed`` and
    its key, so histories are reproducible and extending the market set
    never perturbs existing traces.
    """
    instance_types = list(instance_types or PAPER_TYPES)
    zones = list(zones or DEFAULT_ZONES)
    history = SpotPriceHistory()
    for tname in instance_types:
        for zone in zones:
            key = MarketKey(tname, zone.name)
            rng = np.random.default_rng(derive_seed(seed, f"market:{key}"))
            gen = RegimeSwitchingGenerator(market_params(tname, zone.name), rng)
            history.add(key, gen.generate(duration_hours, start_time=start_time))
    return history


def paper_market_keys(
    instance_types: Optional[Sequence[str]] = None,
    zones: Optional[Sequence[Zone]] = None,
) -> list[MarketKey]:
    """All (type, zone) circle-group candidates, paper defaults."""
    instance_types = list(instance_types or PAPER_TYPES)
    zones = list(zones or DEFAULT_ZONES)
    return [MarketKey(t, z.name) for t in instance_types for z in zones]
