"""Finding and severity types shared by the lint framework.

A :class:`Finding` is one rule violation at one source location.  It
carries the *stripped source line* (``code``) in addition to the line
number: the baseline matches findings by ``(rule, path, code)`` so that
grandfathered findings survive unrelated edits that shift line numbers
(see :mod:`.baseline`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported
    but only fail under ``--strict``.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # rule id, e.g. "R001"
    severity: Severity
    path: str  # project-relative posix path
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    code: str = ""  # stripped source line (baseline matching key)
    baselined: bool = field(default=False, compare=False)
    #: Structured autofix hint consumed by :mod:`.fixers` (``--fix``);
    #: e.g. ``{"op": "rename", "name": "wall_hours", "to": "wall_s"}``.
    fix: dict = field(default=None, compare=False)  # type: ignore[assignment]

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` (text reporter row)."""
        tag = f"{self.rule} [{self.severity.value}]"
        suffix = " (baselined)" if self.baselined else ""
        return f"{self.path}:{self.line}:{self.col}: {tag} {self.message}{suffix}"

    def to_json(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code": self.code,
            "baselined": self.baselined,
        }
        if self.fix:
            out["fix"] = self.fix
        return out

    @classmethod
    def from_json(cls, raw: dict) -> "Finding":
        """Inverse of :meth:`to_json` (cache replay round-trip)."""
        return cls(
            rule=raw["rule"],
            severity=Severity(raw["severity"]),
            path=raw["path"],
            line=int(raw["line"]),
            col=int(raw["col"]),
            message=raw["message"],
            code=raw.get("code", ""),
            baselined=bool(raw.get("baselined", False)),
            fix=raw.get("fix"),
        )
