"""Grandfathered-findings baseline.

The baseline is a checked-in JSON file listing findings the project has
*deliberately* decided to keep — here, documented exact float
comparisons that R005 would otherwise reject.  Each entry must carry a
non-empty ``reason``; the reason is the tracking comment the ISSUE
workflow requires, reviewed like code.

Matching is content-based, not line-based: an entry claims a finding
when ``(rule, path, stripped source line)`` agree, with multiset
semantics — two identical comparisons on one line need two entries.
Line numbers in the file are informational only, so unrelated edits
that shift code never invalidate the baseline, while *changing* the
grandfathered line (or its file) surfaces the finding again.

Stale entries (nothing matched them this run) are reported so the file
shrinks as violations are fixed; they fail the run only under
``--strict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "reprolint_baseline.json"


@dataclass
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    code: str  # stripped source line
    reason: str
    line: int = 0  # informational

    @property
    def key(self) -> tuple:
        return (self.rule, self.path, self.code)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "reason": self.reason,
        }


class Baseline:
    """Multiset of grandfathered findings with claim tracking."""

    def __init__(self, entries: Optional[List[BaselineEntry]] = None) -> None:
        self.entries = list(entries or [])
        self._available: Dict[tuple, List[BaselineEntry]] = {}
        for entry in self.entries:
            self._available.setdefault(entry.key, []).append(entry)

    def claim(self, finding: Finding) -> bool:
        """Consume one matching entry for ``finding`` if available."""
        bucket = self._available.get((finding.rule, finding.path, finding.code))
        if bucket:
            bucket.pop()
            return True
        return False

    def unclaimed(self) -> List[BaselineEntry]:
        """Entries no finding matched (stale: the violation is gone)."""
        return [e for bucket in self._available.values() for e in bucket]

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}")
        if data.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline {path} has version {data.get('version')!r}, "
                f"expected {BASELINE_VERSION}"
            )
        entries = []
        for raw in data.get("entries", []):
            missing = {"rule", "path", "code", "reason"} - set(raw)
            if missing:
                raise ConfigurationError(
                    f"baseline entry {raw!r} missing fields {sorted(missing)}"
                )
            if not str(raw["reason"]).strip():
                raise ConfigurationError(
                    f"baseline entry for {raw['path']} ({raw['rule']}) has an "
                    "empty reason; every grandfathered finding must be justified"
                )
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    code=raw["code"],
                    reason=raw["reason"],
                    line=int(raw.get("line", 0)),
                )
            )
        return cls(entries)

    @staticmethod
    def dump_entries(entries: List[BaselineEntry], path: Path) -> None:
        """Rewrite the baseline file with exactly ``entries``.

        Used by ``--prune-baseline``: the surviving entries keep their
        reviewed reasons verbatim; only stale ones are dropped, so the
        file monotonically shrinks as violations are fixed.
        """
        payload = {
            "version": BASELINE_VERSION,
            "entries": [e.to_json() for e in entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def dump(findings: List[Finding], path: Path, reason: str = "") -> None:
        """Write ``findings`` as a fresh baseline file.

        Used by ``--write-baseline``; reasons default to a TODO marker
        that the author must replace before the file is reviewable.
        """
        entries = [
            BaselineEntry(
                rule=f.rule,
                path=f.path,
                code=f.code,
                reason=reason or "TODO: justify or fix",
                line=f.line,
            ).to_json()
            for f in findings
        ]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
