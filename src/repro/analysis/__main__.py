"""Command-line entry: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (modulo baseline), 1 findings (error severity, or
anything under ``--strict``), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ConfigurationError
from .baseline import Baseline, DEFAULT_BASELINE_NAME
from .engine import run_lint
from .registry import get_rules
from .reporters import report_json, report_rules, report_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST-based invariant linter (DESIGN.md §9)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root for relative paths and the baseline "
        "(default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} "
        "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit "
        "(reasons default to TODO markers that must be edited)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings and stale baseline entries also fail the run",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    try:
        rules = get_rules(args.select.split(",") if args.select else None)
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.list_rules:
        report_rules(rules, out)
        return 0

    root = (args.root or Path.cwd()).resolve()
    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.is_file():
            try:
                baseline = Baseline.load(baseline_path)
            except ConfigurationError as exc:
                print(f"reprolint: {exc}", file=sys.stderr)
                return 2
        elif args.baseline is not None:
            print(
                f"reprolint: baseline {baseline_path} not found",
                file=sys.stderr,
            )
            return 2

    try:
        result = run_lint(
            [Path(p) for p in args.paths],
            root=root,
            rules=rules,
            baseline=baseline,
        )
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.dump(result.findings, baseline_path)
        print(
            f"reprolint: wrote {len(result.findings)} entr(y/ies) to "
            f"{baseline_path}; fill in the reasons before committing",
            file=out,
        )
        return 0

    if args.format == "json":
        report_json(result, out)
    else:
        report_text(result, out, verbose=args.verbose)
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
