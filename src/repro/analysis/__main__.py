"""Command-line entry: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (modulo baseline), 1 findings (error severity, or
anything under ``--strict``), 2 usage error.

Beyond plain linting the CLI drives the v2 engine features:

* ``--cache [PATH]`` — content-hash incremental cache; a warm run with
  nothing changed replays every finding without parsing a file.
* ``--fix`` / ``--fix-suppress`` — apply mechanically-safe autofixes
  (suffix renames, zero-guard rewrites), optionally scaffolding inline
  suppressions for what remains; idempotence is enforced by re-linting
  the rewritten tree (:mod:`.fixers`).
* ``--sarif PATH`` / ``--format sarif`` — SARIF 2.1.0 output for CI
  inline annotations.
* ``--prune-baseline`` — drop stale baseline entries so the file only
  ever shrinks as violations are fixed.
* ``--changed [BASE]`` — git-aware edit-loop mode: report findings for
  the files that differ from ``BASE`` (default ``HEAD``) plus untracked
  files.  The *whole* tree is still analysed — the project graph and
  the summary fixpoint see every module, so interprocedural rules stay
  sound — and the scope only filters reporting: file-scope findings in
  the changed files, project-scope findings in the changed files plus
  every module connected to them through the import graph (an edit to a
  callee re-reports the drift it causes in its callers).  The warm
  cache replays unchanged work (including per-SCC summaries), but the
  run never writes the cache — a scoped result set must not overwrite
  the whole-tree snapshot.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from ..errors import ConfigurationError
from .baseline import Baseline, DEFAULT_BASELINE_NAME
from .cache import DEFAULT_CACHE_NAME
from .engine import run_lint
from .registry import get_rules
from .reporters import report_json, report_rules, report_sarif, report_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST-based invariant linter (DESIGN.md §9)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root for relative paths and the baseline "
        "(default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif", type=Path, default=None, metavar="PATH",
        help="additionally write a SARIF 2.1.0 report to PATH",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} "
        "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit "
        "(reasons default to TODO markers that must be edited)",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries nothing matched this run and "
        "rewrite the file (the baseline shrinks, never grows)",
    )
    parser.add_argument(
        "--cache", nargs="?", type=Path, const=Path(DEFAULT_CACHE_NAME),
        default=None, metavar="PATH",
        help="use the incremental lint cache "
        f"(default path: <root>/{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="read/parse thread-pool size (default: cpu count, max 8)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanically-safe autofixes (suffix renames, "
        "zero-guard rewrites) before reporting; re-lints until stable",
    )
    parser.add_argument(
        "--fix-suppress", action="store_true",
        help="with --fix semantics, additionally scaffold inline "
        "suppression comments (with TODO reasons) for findings no "
        "autofix can handle",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="BASE",
        help="report findings only for files changed vs. the git ref "
        "BASE (default HEAD) plus untracked files and, for project "
        "rules, their import-graph neighbourhood; the whole tree is "
        "still analysed, and the warm cache is read but never written",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings and stale baseline entries also fail the run",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    try:
        rules = get_rules(args.select.split(",") if args.select else None)
    except KeyError as exc:
        print(f"reprolint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.list_rules:
        report_rules(rules, out)
        return 0

    root = (args.root or Path.cwd()).resolve()
    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)

    def load_baseline():
        """Fresh Baseline per lint pass (claiming is stateful)."""
        if args.no_baseline or args.write_baseline:
            return None
        if baseline_path.is_file():
            return Baseline.load(baseline_path)
        if args.baseline is not None:
            raise ConfigurationError(f"baseline {baseline_path} not found")
        return None

    try:
        load_baseline()  # surface config errors before any work
    except ConfigurationError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    cache_path = None
    if args.cache is not None:
        cache_path = (
            args.cache if args.cache.is_absolute() else root / args.cache
        )

    cache_write = True
    changed_scope = None
    fix_targets = paths
    if args.changed is not None:
        try:
            changed = _changed_files(root, args.changed)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"reprolint: --changed needs git: {exc}", file=sys.stderr)
            return 2
        # The whole tree is still analysed (graph + summaries need every
        # module); the scope only filters what gets *reported*.  The
        # run's partial result set must never be persisted as if it
        # were a whole-tree snapshot — replay from the cache, don't
        # write it.
        in_scope = _restrict_to(changed, paths, root)
        changed_scope = set()
        for p in in_scope:
            try:
                changed_scope.add(p.resolve().relative_to(root).as_posix())
            except ValueError:
                changed_scope.add(p.as_posix())
        if not changed_scope:
            print(
                f"reprolint: no python files changed vs. {args.changed}; "
                "nothing to report",
                file=out,
            )
            return 0
        fix_targets = in_scope
        cache_write = False

    try:
        if args.fix or args.fix_suppress:
            from .fixers import fix_paths

            fix_report = fix_paths(
                fix_targets, root=root, rules=rules,
                baseline_factory=load_baseline,
                suppress=args.fix_suppress,
            )
            for edit in fix_report.applied:
                print(
                    f"fixed {edit.path}:{edit.line}: [{edit.op}] {edit.detail}",
                    file=out,
                )
            for edit in fix_report.refused:
                print(
                    f"skipped {edit.path}:{edit.line}: [{edit.op}] "
                    f"{edit.detail}",
                    file=out,
                )
            print(
                f"reprolint --fix: {len(fix_report.applied)} fix(es) in "
                f"{len(fix_report.files_changed)} file(s) over "
                f"{fix_report.passes} pass(es); "
                f"{fix_report.remaining} finding(s) remain",
                file=out,
            )

        baseline = load_baseline()
        result = run_lint(
            paths,
            root=root,
            rules=rules,
            baseline=baseline,
            cache_path=cache_path,
            jobs=args.jobs,
            cache_write=cache_write,
            changed_scope=changed_scope,
        )
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.dump(result.findings, baseline_path)
        print(
            f"reprolint: wrote {len(result.findings)} entr(y/ies) to "
            f"{baseline_path}; fill in the reasons before committing",
            file=out,
        )
        return 0

    if args.prune_baseline:
        stale = len(result.stale_baseline)
        if stale:
            Baseline.dump_entries(
                _kept_entries(baseline_path, result), baseline_path
            )
            print(
                f"reprolint: pruned {stale} stale entr(y/ies) from "
                f"{baseline_path}",
                file=out,
            )
        else:
            print(
                f"reprolint: no stale entries in {baseline_path}", file=out
            )

    if args.sarif is not None:
        sarif_path = (
            args.sarif if args.sarif.is_absolute() else root / args.sarif
        )
        with open(sarif_path, "w", encoding="utf-8") as fh:
            report_sarif(result, rules, fh, root=root)

    if args.format == "json":
        report_json(result, out)
    elif args.format == "sarif":
        report_sarif(result, rules, out, root=root)
    else:
        report_text(result, out, verbose=args.verbose)
    return result.exit_code(strict=args.strict)


def _changed_files(root: Path, base: str) -> list[Path]:
    """Absolute paths of ``*.py`` files changed vs. ``base`` + untracked.

    ``--diff-filter=ACMR`` keeps added/copied/modified/renamed files and
    drops deletions (nothing left to lint); untracked files come from
    ``ls-files --others`` so a brand-new module is linted before its
    first ``git add``.  Paths come back relative to the repo toplevel,
    which may sit above ``root``.
    """

    def git(*argv: str) -> list[str]:
        proc = subprocess.run(
            ["git", "-C", str(root), *argv],
            capture_output=True, text=True, check=True,
        )
        return [line for line in proc.stdout.splitlines() if line.strip()]

    top = Path(git("rev-parse", "--show-toplevel")[0])
    rels = set(
        git("diff", "--name-only", "--diff-filter=ACMR", base, "--", "*.py")
    )
    rels |= set(
        git("ls-files", "--others", "--exclude-standard", "--", "*.py")
    )
    return sorted(top / rel for rel in rels if (top / rel).is_file())


def _restrict_to(
    changed: list[Path], requested: list[Path], root: Path
) -> list[Path]:
    """Changed files that fall under one of the requested lint paths."""
    bases = [
        (p if p.is_absolute() else root / p).resolve() for p in requested
    ]
    out = []
    for path in changed:
        resolved = path.resolve()
        for base in bases:
            if resolved == base or base in resolved.parents:
                out.append(path)
                break
    return out


def _kept_entries(baseline_path: Path, result):
    """Baseline entries that were claimed this run, in file order."""
    baseline = Baseline.load(baseline_path)
    stale_keys = {}
    for entry in result.stale_baseline:
        stale_keys[entry.key] = stale_keys.get(entry.key, 0) + 1
    kept = []
    for entry in reversed(baseline.entries):
        if stale_keys.get(entry.key, 0) > 0:
            stale_keys[entry.key] -= 1
        else:
            kept.append(entry)
    kept.reverse()
    return kept


if __name__ == "__main__":
    sys.exit(main())
