"""Text, JSON and SARIF reporters for lint results."""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Optional, Sequence

from .engine import LintResult
from .findings import Finding
from .registry import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def report_text(result: LintResult, out: IO[str], verbose: bool = False) -> None:
    """Human-oriented report: one ``path:line:col`` row per finding."""
    for finding in result.findings:
        print(finding.format(), file=out)
    if verbose:
        for finding in result.baselined:
            print(finding.format(), file=out)
    for entry in result.stale_baseline:
        print(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"({entry.code!r}) — the finding is gone; remove the entry",
            file=out,
        )
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    print(
        f"reprolint: {result.files_checked} files, "
        f"{n_err} error(s), {n_warn} warning(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies)",
        file=out,
    )
    stats = result.summary_stats
    if stats:
        print(
            f"reprolint: summaries: {stats.get('functions', 0)} "
            f"function(s) in {stats.get('sccs', 0)} SCC(s), "
            f"{stats.get('replayed', 0)} replayed from cache, "
            f"{stats.get('recomputed', 0)} recomputed "
            f"({stats.get('fixpoint_s', 0.0):.3f}s fixpoint)",
            file=out,
        )


def report_json(result: LintResult, out: IO[str]) -> None:
    """Machine-oriented report (stable shape for CI tooling)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.to_json() for f in result.findings],
        "baselined": [f.to_json() for f in result.baselined],
        "stale_baseline": [e.to_json() for e in result.stale_baseline],
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.findings) - len(result.errors),
            "baselined": len(result.baselined),
            "stale": len(result.stale_baseline),
        },
    }
    if result.summary_stats:
        payload["summaries"] = result.summary_stats
    json.dump(payload, out, indent=2)
    out.write("\n")


def _sarif_result(finding: Finding, rule_index: dict) -> dict:
    out = {
        "ruleId": finding.rule,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.rule in rule_index:
        out["ruleIndex"] = rule_index[finding.rule]
    if finding.code:
        out["partialFingerprints"] = {
            # Mirrors the baseline's content key: stable across edits
            # that merely shift line numbers.
            "reprolint/v1": f"{finding.rule}:{finding.path}:{finding.code}"
        }
    if finding.baselined:
        out["suppressions"] = [
            {"kind": "external", "justification": "reprolint baseline"}
        ]
    return out


def report_sarif(
    result: LintResult,
    rules: Sequence[Rule],
    out: IO[str],
    root: Optional[Path] = None,
) -> None:
    """SARIF 2.1.0 report so CI annotates findings inline on PRs.

    New findings map to plain results; baselined findings are included
    as *suppressed* results (``suppressions[].kind = "external"``) so
    SARIF viewers show them greyed out instead of re-opening them.
    """
    rule_ids = sorted({r.id for r in rules} | {f.rule for f in result.findings})
    by_id = {r.id: r for r in rules}
    descriptors = []
    for rid in rule_ids:
        rule = by_id.get(rid)
        descriptors.append({
            "id": rid,
            "name": type(rule).__name__ if rule else rid,
            "shortDescription": {"text": rule.title if rule else rid},
            "fullDescription": {"text": rule.description if rule else ""},
            "helpUri": (
                (rule.help_uri or "DESIGN.md#9-static-analysis")
                if rule
                else "DESIGN.md#9-static-analysis"
            ),
            "defaultConfiguration": {
                "level": rule.severity.value if rule else "error"
            },
        })
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}

    run: dict = {
        "tool": {
            "driver": {
                "name": "reprolint",
                "informationUri": "DESIGN.md#9-static-analysis",
                "rules": descriptors,
            }
        },
        "results": [
            _sarif_result(f, rule_index)
            for f in (*result.findings, *result.baselined)
        ],
        "columnKind": "utf16CodeUnits",
    }
    if root is not None:
        run["originalUriBaseIds"] = {
            "SRCROOT": {"uri": Path(root).resolve().as_uri() + "/"}
        }
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def report_rules(rules: list[Rule], out: IO[str]) -> None:
    """``--list-rules``: id, severity, title, description."""
    for rule in rules:
        print(f"{rule.id} [{rule.severity.value}] {rule.title}", file=out)
        for line in rule.description.strip().splitlines():
            print(f"    {line.strip()}", file=out)
