"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import IO

from .engine import LintResult
from .registry import Rule


def report_text(result: LintResult, out: IO[str], verbose: bool = False) -> None:
    """Human-oriented report: one ``path:line:col`` row per finding."""
    for finding in result.findings:
        print(finding.format(), file=out)
    if verbose:
        for finding in result.baselined:
            print(finding.format(), file=out)
    for entry in result.stale_baseline:
        print(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"({entry.code!r}) — the finding is gone; remove the entry",
            file=out,
        )
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    print(
        f"reprolint: {result.files_checked} files, "
        f"{n_err} error(s), {n_warn} warning(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies)",
        file=out,
    )


def report_json(result: LintResult, out: IO[str]) -> None:
    """Machine-oriented report (stable shape for CI tooling)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.to_json() for f in result.findings],
        "baselined": [f.to_json() for f in result.baselined],
        "stale_baseline": [e.to_json() for e in result.stale_baseline],
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.findings) - len(result.errors),
            "baselined": len(result.baselined),
            "stale": len(result.stale_baseline),
        },
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def report_rules(rules: list[Rule], out: IO[str]) -> None:
    """``--list-rules``: id, severity, title, description."""
    for rule in rules:
        print(f"{rule.id} [{rule.severity.value}] {rule.title}", file=out)
        for line in rule.description.strip().splitlines():
            print(f"    {line.strip()}", file=out)
