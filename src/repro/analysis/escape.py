"""Interprocedural escape analysis for the process boundary.

PR 8 routed every parallel consumer through the warm
:class:`~repro.execution.pool.WorkerPool`; the repo's bit-identity
contract now depends on what crosses the fork/spawn boundary at each
``pool.submit``/``run_ordered`` call site: the submitted callable, its
argument payload, and — invisibly — every module global the callable's
transitive callees read or write inside the worker.  This module
computes those facts once per lint run, on top of the existing
:class:`~.project.ProjectGraph`:

* **boundary sites** — calls that move a function into another process
  (``<pool>.submit(fn, ...)``, ``<pool>.run_ordered(fn, payloads)``,
  ``<pool>.map(fn, ...)``, and ``initializer=fn`` keywords of executor
  constructions), with the submitted callable resolved through the
  call graph;
* **the worker-reachable closure** — forward BFS from the resolved
  entry functions over call edges: every function that can execute
  inside a worker process;
* **per-function global-write facts** — module-level names a function
  rebinds (through ``global``) or mutates in place (subscript stores,
  ``.append``/``.pop``/``.update``/... on a module-level binding);
* **per-module sanction facts** — names referenced, transitively, by
  the functions a module registers through ``register_cache_clearer``
  (or by ``clear_shared_caches`` where the module owns the registry):
  those are *declared* shared state with a managed lifecycle, the
  sanctioned pattern R010/R013 must not flag.

Like the graph itself, everything here is deliberately
*under*-approximate: an unresolvable submit target or dynamic mutation
produces no facts, so rules built on it can miss findings but never
invent them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .project import FuncKey, ProjectGraph
from .symbols import FunctionInfo, ModuleSymbols, dotted_name

#: Receiver names that mark a ``.submit``-style call as a process
#: boundary (the same naming convention R002 uses for pool singletons).
_POOLISH_RECEIVER_RE = re.compile(r"(?i)pool|executor")

#: Attribute calls on a poolish receiver that ship their first argument
#: into worker processes.
BOUNDARY_METHODS = frozenset({"submit", "run_ordered", "map"})

#: In-place mutators: an attribute call ``X.<attr>(...)`` on a
#: module-level binding writes worker-side state that never propagates
#: back to the parent.
_MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "add", "remove", "discard", "pop",
     "popitem", "clear", "update", "setdefault", "move_to_end"}
)


@dataclass(frozen=True)
class BoundarySite:
    """One call site that moves a callable across the process boundary."""

    module: str
    relpath: str
    lineno: int
    col: int
    kind: str  # "submit" | "run_ordered" | "map" | "initializer"
    entry: FuncKey  # the resolved worker-side callable


@dataclass(frozen=True)
class GlobalWrite:
    """One worker-visible write to a module-level name."""

    name: str
    lineno: int
    col: int
    kind: str  # "rebind" (global stmt + assignment) | "mutate" (in place)


def walk_shallow(fn_node: ast.AST):
    """Walk a function body without descending into nested defs.

    Nested functions and classes get their own :class:`FunctionInfo`
    (the symbol extractor flattens them), so attributing their
    statements to the enclosing function would double-report facts.
    """
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_names(fn_node: ast.AST, globals_declared: Set[str]) -> Set[str]:
    """Names bound locally in ``fn_node`` (params, assignments, loops).

    A module-level name shadowed by a local binding is not a global
    write target; ``global``-declared names are excluded from locals.
    """
    locals_: Set[str] = set()
    args = fn_node.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        locals_.add(a.arg)
    if args.vararg:
        locals_.add(args.vararg.arg)
    if args.kwarg:
        locals_.add(args.kwarg.arg)
    for node in walk_shallow(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            locals_.add(node.name)
        elif isinstance(node, (ast.withitem,)) and node.optional_vars:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    locals_.add(sub.id)
    return locals_ - globals_declared


def function_global_writes(
    info: FunctionInfo, syms: ModuleSymbols
) -> List[GlobalWrite]:
    """Module-level names ``info`` rebinds or mutates in place."""
    node = info.node
    declared: Set[str] = set()
    for sub in walk_shallow(node):
        if isinstance(sub, ast.Global):
            declared.update(sub.names)
    locals_ = _local_names(node, declared)
    module_level = set(syms.module_names)
    writes: List[GlobalWrite] = []
    seen: Set[Tuple[str, int]] = set()

    def emit(name: str, n: ast.AST, kind: str) -> None:
        key = (name, n.lineno)
        if key not in seen:
            seen.add(key)
            writes.append(GlobalWrite(name, n.lineno, n.col_offset, kind))

    for sub in walk_shallow(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            if sub.id in declared:
                emit(sub.id, sub, "rebind")
        elif isinstance(sub, ast.Subscript) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            base = sub.value
            if (
                isinstance(base, ast.Name)
                and base.id in module_level
                and base.id not in locals_
            ):
                emit(base.id, sub, "mutate")
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr not in _MUTATING_METHODS:
                continue
            base = sub.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in module_level
                and base.id not in locals_
            ):
                emit(base.id, sub, "mutate")
    return writes


# ----------------------------------------------------------------------
# registered-clearer sanction facts
# ----------------------------------------------------------------------

def registered_clearers(syms: ModuleSymbols) -> Set[str]:
    """Function names this module registers via ``register_cache_clearer``.

    ``register_cache_clearer(f.cache_clear)`` registers ``f``; a module
    defining ``clear_shared_caches`` owns the registry and that function
    counts as registered (same convention as R002).
    """
    out: Set[str] = set()
    if "clear_shared_caches" in syms.functions:
        out.add("clear_shared_caches")
    tree = syms.unit.tree
    for node in tree.body:
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        name = dotted_name(call.func)
        if name.rsplit(".", 1)[-1] != "register_cache_clearer":
            continue
        for arg in call.args:
            if isinstance(arg, ast.Name):
                out.add(arg.id)
            elif isinstance(arg, ast.Attribute) and isinstance(
                arg.value, ast.Name
            ):
                out.add(arg.value.id)
    return out


def clearer_function_names(syms: ModuleSymbols) -> Set[str]:
    """Registered clearers plus every same-module function they call.

    The transitive closure matters for exemptions: a registered
    ``close_trace_pools`` that delegates to ``_drop_one`` makes both of
    them teardown code.
    """
    frontier = [f for f in registered_clearers(syms) if f in syms.functions]
    visited: Set[str] = set(registered_clearers(syms))
    while frontier:
        fn = frontier.pop()
        info = syms.functions.get(fn)
        if info is None:
            continue
        for call in info.calls:
            head = call.name.split(".", 1)[0]
            for cand in (call.name, head):
                if cand in syms.functions and cand not in visited:
                    visited.add(cand)
                    frontier.append(cand)
    return visited


def clearer_sanctioned_names(syms: ModuleSymbols) -> Set[str]:
    """Every name reachable from the module's registered clearers.

    A clearer may delegate (``_drop_attached`` → ``_evict_superseded``),
    so the reference set is closed transitively over same-module calls:
    a module global touched anywhere in that closure has a managed
    lifecycle and is sanctioned for R010/R013.
    """
    frontier = [f for f in registered_clearers(syms) if f in syms.functions]
    visited: Set[str] = set()
    names: Set[str] = set()
    while frontier:
        fn = frontier.pop()
        if fn in visited:
            continue
        visited.add(fn)
        info = syms.functions[fn]
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
        for call in info.calls:
            head = call.name.split(".", 1)[0]
            if call.name in syms.functions:
                frontier.append(call.name)
            elif head in syms.functions:
                frontier.append(head)
    return names


# ----------------------------------------------------------------------
# the analysis proper
# ----------------------------------------------------------------------

@dataclass
class EscapeAnalysis:
    """Boundary sites + worker-reachable closure over one project graph."""

    graph: ProjectGraph
    sites: List[BoundarySite] = field(default_factory=list)
    entries: Set[FuncKey] = field(default_factory=set)
    worker_reachable: Set[FuncKey] = field(default_factory=set)
    #: For messages: one representative submitted entry per reachable fn.
    entry_of: Dict[FuncKey, FuncKey] = field(default_factory=dict)
    _writes_memo: Dict[FuncKey, List[GlobalWrite]] = field(default_factory=dict)
    _sanction_memo: Dict[str, Set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: ProjectGraph) -> "EscapeAnalysis":
        analysis = cls(graph=graph)
        for info in graph.functions.values():
            for site in _boundary_sites_in(info, graph):
                analysis.sites.append(site)
                analysis.entries.add(site.entry)
        # Forward BFS: everything the submitted entries can call runs
        # inside a worker process.
        frontier = sorted(analysis.entries)
        for key in frontier:
            analysis.entry_of.setdefault(key, key)
        while frontier:
            key = frontier.pop()
            if key in analysis.worker_reachable:
                continue
            analysis.worker_reachable.add(key)
            origin = analysis.entry_of[key]
            for callee in sorted(graph.call_edges.get(key, ())):
                analysis.entry_of.setdefault(callee, origin)
                if callee not in analysis.worker_reachable:
                    frontier.append(callee)
        return analysis

    # ------------------------------------------------------------------
    def global_writes(self, key: FuncKey) -> List[GlobalWrite]:
        """Worker-visible module-global writes of one function (memo)."""
        if key not in self._writes_memo:
            info = self.graph.functions.get(key)
            syms = self.graph.modules.get(key[0]) if info else None
            self._writes_memo[key] = (
                function_global_writes(info, syms) if info and syms else []
            )
        return self._writes_memo[key]

    def sanctioned_names(self, module: str) -> Set[str]:
        """Clearer-sanctioned module-global names of ``module`` (memo)."""
        if module not in self._sanction_memo:
            syms = self.graph.modules.get(module)
            self._sanction_memo[module] = (
                clearer_sanctioned_names(syms) if syms else set()
            )
        return self._sanction_memo[module]

    def written_globals(self, module: str) -> Set[str]:
        """Module-level names of ``module`` written by *any* function.

        This is process-scoped mutable state: R012 treats reads of these
        names inside seed derivations as entropy (a counter bumped per
        call seeds differently per process), while never-written module
        constants stay clean.
        """
        syms = self.graph.modules.get(module)
        if syms is None:
            return set()
        out: Set[str] = set()
        for info in syms.functions.values():
            for write in function_global_writes(info, syms):
                out.add(write.name)
        return out

    def entry_name(self, key: FuncKey) -> str:
        """Human-readable worker-entry attribution for messages."""
        origin = self.entry_of.get(key, key)
        return f"{origin[0]}.{origin[1]}"


def _boundary_sites_in(
    info: FunctionInfo, graph: ProjectGraph
) -> List[BoundarySite]:
    syms = graph.modules.get(info.module)
    if syms is None:
        return []
    sites: List[BoundarySite] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        # <pool>.submit(fn, ...) / .run_ordered(fn, payloads) / .map(fn, xs)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in BOUNDARY_METHODS
            and node.args
        ):
            receiver = node.func.value
            base = dotted_name(receiver).rsplit(".", 1)[-1]
            if not _POOLISH_RECEIVER_RE.search(base or ""):
                continue
            target = dotted_name(node.args[0])
            callee = graph.resolve_call(info, target) if target else None
            if callee is not None:
                sites.append(BoundarySite(
                    module=info.module, relpath=syms.relpath,
                    lineno=node.lineno, col=node.col_offset,
                    kind=node.func.attr, entry=callee.key,
                ))
        # ProcessPoolExecutor(..., initializer=fn): fn runs once in
        # every worker before any task.
        for kw in node.keywords:
            if kw.arg != "initializer":
                continue
            target = dotted_name(kw.value)
            callee = graph.resolve_call(info, target) if target else None
            if callee is not None:
                sites.append(BoundarySite(
                    module=info.module, relpath=syms.relpath,
                    lineno=node.lineno, col=node.col_offset,
                    kind="initializer", entry=callee.key,
                ))
    return sites
