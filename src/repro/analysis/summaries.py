"""Interprocedural function summaries, iterated to fixpoint (v4).

PR 6 gave R003 exactly one caller→callee hop: a call's dimension came
from analysing the callee's own returns, with anything deeper falling
back to name suffixes.  This module replaces that with classic
summary-based analysis: every function gets a :class:`FunctionSummary`
— its return-unit dimension, whether its return value carries process
entropy, which of its parameters (transitively) reach a seed sink, and
which modeled exceptions can escape it — and summaries are computed
over the call graph's SCC condensation (:meth:`~.project.ProjectGraph.
sccs`) in reverse topological order.  Acyclic chains converge in one
visit per function; mutually-recursive groups iterate within their SCC
until the (finite, small) facts stop changing.

Alongside the per-function table, :class:`ClassFacts` aggregates
**instance-field facts** per class: ``self.x`` assignments across all
methods join into a per-field dimension environment (``__init__``
writes seed reads elsewhere; conflicting writers or container mutators
invalidate), plus the set of fields ever assigned from process entropy.
These seed the ``"self.x"`` keys of :mod:`.dataflow`'s environment so
unit drift and seed taint flow through objects, not just locals.

Conservatism splits by consumer.  The dimension/entropy/sink facts keep
the under-approximation contract — unresolvable calls produce no facts,
so rules miss findings rather than invent them.  The exception facts
invert it on purpose: R016 asserts the *absence* of escaping
``OSError``/``EOFError``, which needs a may-escape **over**-
approximation, sourced from a curated table of stdlib raisers plus
callee summaries (an unresolvable call still contributes nothing — the
table is what keeps the direction honest for the IO leaves that
matter).

Summaries are content-keyed per SCC — the key hashes every member's
module content hash plus the keys of all callee SCCs — and join the
two-tier lint cache, so a warm ``--changed`` run re-summarizes only the
SCCs reachable from the edit and replays the rest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from hashlib import sha256
from time import perf_counter
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .dataflow import (
    EntropyTaint,
    SEED_SINK_LEAVES,
    all_param_names,
    analyze_scope,
    default_call_resolver,
    infer_return_dim,
    self_attr_key,
    suffix_dim,
)
from .project import FuncKey, ProjectGraph
from .symbols import FunctionInfo

#: Iterations an SCC may take before we accept the last state.  Facts
#: cross one call edge per sweep, so a cycle of N functions needs at
#: most ~N sweeps; the floor covers tiny cycles whose dimension facts
#: wobble once before settling.
_MAX_SCC_SWEEPS = 16

# ----------------------------------------------------------------------
# exception-flow model (R016)
# ----------------------------------------------------------------------

#: The two abstract exception facts R016 reasons about.  OSError stands
#: for itself and every subclass (FileNotFoundError and friends raised
#: by the IO leaves below); EOFError is what truncated pickles/npz
#: archives surface through ``np.load``.
OS_ERROR = "OSError"
EOF_ERROR = "EOFError"

#: Exception names that *raise* as the abstract OSError fact.
_OS_RAISE_NAMES = frozenset({
    "OSError", "IOError", "FileNotFoundError", "PermissionError",
    "FileExistsError", "IsADirectoryError", "NotADirectoryError",
    "InterruptedError", "BlockingIOError", "TimeoutError",
    "BrokenPipeError", "ConnectionError", "ConnectionResetError",
    "ConnectionAbortedError", "ConnectionRefusedError",
})

#: Handler names that *catch* the abstract OSError fact.  Deliberately
#: narrower than the raise set: ``except FileNotFoundError`` does not
#: prove a general OSError cannot escape, so only the exact type and
#: the catch-alls count (may-escape stays an over-approximation).
_OS_CATCH_NAMES = frozenset({"OSError", "IOError"})
_CATCH_ALL_NAMES = frozenset({"Exception", "BaseException"})

#: Call leaves (last dotted segment) that can raise OSError.  Curated
#: for unambiguity: ``os.remove``/``list.remove`` and ``os.replace``/
#: ``str.replace`` share leaves, so ``remove`` and ``replace`` are
#: *excluded* — a missing leaf only under-reports, which the fail-open
#: sweep tolerates better than false alarms.
_OS_RAISER_LEAVES = frozenset({
    "open", "fdopen", "mkstemp", "mkdtemp", "unlink", "stat", "lstat",
    "mkdir", "makedirs", "rmdir", "rename", "utime", "chmod",
    "touch", "scandir", "listdir", "rmtree", "read_text", "read_bytes",
    "write_text", "write_bytes", "SharedMemory", "getsize",
})

#: Exact dotted calls with richer raise sets than their leaf implies.
_DOTTED_RAISERS: Dict[str, FrozenSet[str]] = {
    "np.load": frozenset({OS_ERROR, EOF_ERROR}),
    "numpy.load": frozenset({OS_ERROR, EOF_ERROR}),
    "np.save": frozenset({OS_ERROR}),
    "numpy.save": frozenset({OS_ERROR}),
    "np.savez": frozenset({OS_ERROR}),
    "numpy.savez": frozenset({OS_ERROR}),
}

#: Pool methods that run a callable in a worker process: the callable's
#: escaping exceptions resurface in the parent when the result is
#: gathered, so the submit site inherits the entry's raise set.
_BOUNDARY_LEAVES = frozenset({"submit", "run_ordered", "map"})


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural facts of one function, joined at call sites."""

    return_dim: Optional[str] = None
    entropy_return: bool = False
    seed_sink_params: FrozenSet[str] = frozenset()
    raises: FrozenSet[str] = frozenset()

    def to_json(self) -> dict:
        return {
            "dim": self.return_dim,
            "entropy": self.entropy_return,
            "sinks": sorted(self.seed_sink_params),
            "raises": sorted(self.raises),
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FunctionSummary":
        return cls(
            return_dim=doc.get("dim"),
            entropy_return=bool(doc.get("entropy")),
            seed_sink_params=frozenset(doc.get("sinks", ())),
            raises=frozenset(doc.get("raises", ())),
        )


@dataclass
class ClassFacts:
    """Instance-field facts of one class, joined across its methods."""

    fields_dim: Dict[str, Optional[str]] = field(default_factory=dict)
    field_containers: Dict[str, Dict[object, Optional[str]]] = field(
        default_factory=dict
    )
    entropy_fields: FrozenSet[str] = frozenset()


# ----------------------------------------------------------------------
# per-function fact extraction
# ----------------------------------------------------------------------


def _walk_expr_shallow(node: ast.AST):
    """Walk an expression without entering lambdas or nested defs.

    A lambda body runs when the lambda is *called*, somewhere else
    entirely — attributing its calls to the enclosing statement would
    over-report raises and sink flows at the wrong site.
    """
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(
            cur, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(cur))


def _own_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """A statement's own expressions, excluding nested block bodies."""
    own: List[ast.AST] = []
    for fname, value in ast.iter_fields(stmt):
        if fname in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.AST):
            own.append(value)
        elif isinstance(value, list):
            own.extend(v for v in value if isinstance(v, ast.AST))
    return own


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


#: ``raise_resolver(call_node, dotted) -> frozenset`` of abstract
#: exception facts the call may raise.
RaiseResolver = Callable[[ast.Call, str], FrozenSet[str]]

#: Optional site recorder: ``(exc, lineno, col, why)`` per raising site.
SiteRecorder = Callable[[str, int, int, str], None]


def _handler_catches(handler: ast.ExceptHandler) -> Tuple[Set[str], bool]:
    """Abstract facts this handler catches; bool = catches everything."""
    if handler.type is None:
        return {OS_ERROR, EOF_ERROR}, True
    names: List[str] = []
    if isinstance(handler.type, ast.Tuple):
        names = [_dotted(t).rsplit(".", 1)[-1] for t in handler.type.elts]
    else:
        names = [_dotted(handler.type).rsplit(".", 1)[-1]]
    caught: Set[str] = set()
    for name in names:
        if name in _CATCH_ALL_NAMES:
            return {OS_ERROR, EOF_ERROR}, True
        if name in _OS_CATCH_NAMES:
            caught.add(OS_ERROR)
        if name == "EOFError":
            caught.add(EOF_ERROR)
    return caught, False


def _raise_facts(exc: ast.expr) -> FrozenSet[str]:
    """Abstract facts of an explicit ``raise <exc>`` statement."""
    node = exc
    if isinstance(node, ast.Call):
        node = node.func
    leaf = _dotted(node).rsplit(".", 1)[-1]
    if leaf in _OS_RAISE_NAMES:
        return frozenset({OS_ERROR})
    if leaf == "EOFError":
        return frozenset({EOF_ERROR})
    return frozenset()


def escaping_raises(
    body: List[ast.stmt],
    resolver: RaiseResolver,
    record: Optional[SiteRecorder] = None,
    _reraise: FrozenSet[str] = frozenset(),
) -> FrozenSet[str]:
    """Abstract exceptions that can escape ``body`` (may-escape).

    Handles the try/except/else/finally geometry precisely enough for
    the repo's fail-open idioms: handler sets subtract from the body's
    facts, a handler's own body (including a bare ``raise`` re-raising
    what it caught) contributes at the *outer* level, and ``else``/
    ``finally`` clauses escape past the handlers entirely.
    """
    out: Set[str] = set()
    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(stmt, ast.Raise):
            if stmt.exc is None:
                out |= _reraise
                if record and _reraise:
                    for exc in sorted(_reraise):
                        record(exc, stmt.lineno, stmt.col_offset,
                               "bare raise re-raises the caught exception")
            else:
                facts = _raise_facts(stmt.exc)
                out |= facts
                if record:
                    for exc in sorted(facts):
                        record(exc, stmt.lineno, stmt.col_offset,
                               f"explicit raise of {exc}")
            continue
        # Calls in this statement's own expressions.
        for expr in _own_exprs(stmt):
            for sub in _walk_expr_shallow(expr):
                if isinstance(sub, ast.Call):
                    dotted = _dotted(sub.func)
                    facts = resolver(sub, dotted)
                    out |= facts
                    if record:
                        for exc in sorted(facts):
                            record(exc, sub.lineno, sub.col_offset,
                                   f"{dotted or 'call'}() may raise {exc}")
        if isinstance(stmt, ast.Try):
            # Swallow the recorder for the guarded body: only facts that
            # survive the handlers are real sites at this level.
            body_set = escaping_raises(stmt.body, resolver, None, _reraise)
            caught_union: Set[str] = set()
            for handler in stmt.handlers:
                caught, _all = _handler_catches(handler)
                caught_union |= caught
            survived = body_set - caught_union
            out |= survived
            if record and survived:
                # Re-walk the body with the recorder, keeping only the
                # escaping facts' sites.
                escaping_raises(
                    stmt.body,
                    resolver,
                    lambda e, ln, c, w: (
                        record(e, ln, c, w) if e in survived else None
                    ),
                    _reraise,
                )
            for handler in stmt.handlers:
                caught, _all = _handler_catches(handler)
                out |= escaping_raises(
                    handler.body, resolver, record,
                    _reraise=frozenset(body_set & caught),
                )
            out |= escaping_raises(stmt.orelse, resolver, record, _reraise)
            out |= escaping_raises(stmt.finalbody, resolver, record, _reraise)
        else:
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    out |= escaping_raises(inner, resolver, record, _reraise)
    return frozenset(out)


class _SinkFlow:
    """Which parameters of one function reach a seed sink.

    A tiny origin-tracking pass: every local maps to the set of
    parameters its value derives from (assignments union, loops bind
    from their iterable), and any argument fed to ``default_rng``/
    ``SeedSequence`` — or to a callee parameter that itself reaches a
    sink, per that callee's summary — marks its origin parameters.
    """

    def __init__(
        self,
        params: Tuple[str, ...],
        callee_sinks: Callable[
            [str], Optional[Tuple[Tuple[str, ...], FrozenSet[str]]]
        ],
    ) -> None:
        self.env: Dict[str, Set[str]] = {p: {p} for p in params}
        self.callee_sinks = callee_sinks
        self.sink_params: Set[str] = set()

    def _origins(self, node: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for sub in _walk_expr_shallow(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                out |= self.env.get(sub.id, set())
        return out

    def _bind(self, target: ast.expr, origins: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, origins)

    def _scan_calls(self, stmt: ast.stmt) -> None:
        for expr in _own_exprs(stmt):
            for sub in _walk_expr_shallow(expr):
                if not isinstance(sub, ast.Call):
                    continue
                dotted = _dotted(sub.func)
                leaf = dotted.rsplit(".", 1)[-1]
                if leaf in SEED_SINK_LEAVES:
                    for arg in (*sub.args, *[k.value for k in sub.keywords]):
                        self.sink_params |= self._origins(arg)
                    continue
                resolved = self.callee_sinks(dotted) if dotted else None
                if resolved is None:
                    continue
                params, sinks = resolved
                if not sinks:
                    continue
                if params and params[0] in ("self", "cls") and isinstance(
                    sub.func, ast.Attribute
                ):
                    params = params[1:]
                for pname, arg in zip(params, sub.args):
                    if isinstance(arg, ast.Starred):
                        break
                    if pname in sinks:
                        self.sink_params |= self._origins(arg)
                named = set(params)
                for kw in sub.keywords:
                    if kw.arg in named and kw.arg in sinks:
                        self.sink_params |= self._origins(kw.value)

    def run(self, body: List[ast.stmt]) -> "_SinkFlow":
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            self._scan_calls(stmt)
            if isinstance(stmt, ast.Assign):
                origins = self._origins(stmt.value)
                for target in stmt.targets:
                    self._bind(target, origins)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind(stmt.target, self._origins(stmt.value))
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.env.setdefault(stmt.target.id, set()).update(
                    self._origins(stmt.value)
                )
            elif isinstance(stmt, ast.For):
                self._bind(stmt.target, self._origins(stmt.iter))
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    self.run(inner)
            for handler in getattr(stmt, "handlers", ()) or ():
                self.run(handler.body)
        return self


# ----------------------------------------------------------------------
# the index
# ----------------------------------------------------------------------


@dataclass
class SummaryIndex:
    """Fixpoint summary table plus per-class field facts."""

    functions: Dict[FuncKey, FunctionSummary] = field(default_factory=dict)
    classes: Dict[Tuple[str, str], ClassFacts] = field(default_factory=dict)
    #: Cache payload: SCC content key → [[module, qualname, summary]].
    scc_payload: Dict[str, List[list]] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)
    _graph: Optional[ProjectGraph] = None

    # ------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        graph: ProjectGraph,
        module_hashes: Dict[str, str],
        cached: Optional[Dict[str, List[list]]] = None,
    ) -> "SummaryIndex":
        t0 = perf_counter()
        index = cls(_graph=graph)
        index._build_class_facts(graph)
        components, component_of = graph.sccs()
        comp_keys: List[str] = []
        replayed = recomputed = 0
        for comp_idx, comp in enumerate(components):
            h = sha256()
            for module, qualname in comp:
                h.update(module.encode())
                h.update(b"\x00")
                h.update(qualname.encode())
                h.update(b"\x00")
                h.update(module_hashes.get(module, "").encode())
                h.update(b"\x00")
            callee_keys = sorted({
                comp_keys[component_of[target]]
                for member in comp
                for target in graph.call_edges.get(member, ())
                if target in component_of
                and component_of[target] != comp_idx
            })
            h.update("\x00".join(callee_keys).encode())
            key = h.hexdigest()
            comp_keys.append(key)

            hit = cached.get(key) if cached else None
            if hit is not None and len(hit) == len(comp):
                for module, qualname, doc in hit:
                    index.functions[(module, qualname)] = (
                        FunctionSummary.from_json(doc)
                    )
                replayed += len(comp)
            else:
                index._fixpoint(graph, comp)
                recomputed += len(comp)
            index.scc_payload[key] = [
                [m, q, index.functions[(m, q)].to_json()] for m, q in comp
            ]
        index.stats = {
            "sccs": len(components),
            "functions": len(graph.functions),
            "replayed": replayed,
            "recomputed": recomputed,
            "fixpoint_s": round(perf_counter() - t0, 4),
        }
        return index

    # ----------------------------------------------------- class facts
    def _build_class_facts(self, graph: ProjectGraph) -> None:
        for syms in graph.by_relpath.values():
            tree = syms.unit.tree

            def walk(body, prefix: str) -> None:
                for node in body:
                    if isinstance(node, ast.ClassDef):
                        qual = f"{prefix}{node.name}"
                        self.classes[(syms.module, qual)] = (
                            _class_facts(node)
                        )
                        walk(node.body, f"{qual}.")
                    elif isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        walk(node.body, f"{prefix}{node.name}.")

            walk(tree.body, "")

    def class_facts_for(self, info: FunctionInfo) -> Optional[ClassFacts]:
        """Field facts of the class a method belongs to, if any."""
        prefix, _, _ = info.qualname.rpartition(".")
        if not prefix:
            return None
        return self.classes.get((info.module, prefix))

    # -------------------------------------------------------- fixpoint
    def _fixpoint(self, graph: ProjectGraph, comp: List[FuncKey]) -> None:
        sweeps = min(_MAX_SCC_SWEEPS, len(comp) + 3)
        for _ in range(sweeps):
            changed = False
            for key in comp:
                info = graph.functions[key]
                new = self._summarize(graph, info)
                if self.functions.get(key) != new:
                    self.functions[key] = new
                    changed = True
            if not changed:
                break

    def _summarize(
        self, graph: ProjectGraph, info: FunctionInfo
    ) -> FunctionSummary:
        node = info.node
        facts = self.class_facts_for(info)
        self_env = None
        if facts is not None and info.is_method:
            self_env = {
                f"self.{name}": dim
                for name, dim in facts.fields_dim.items()
            }

        return_dim = infer_return_dim(
            node, resolver=self.dim_resolver(info), self_env=self_env
        )

        taint = EntropyTaint(
            params=all_param_names(node),
            call_resolver=self.entropy_resolver(info),
            tainted_fields=(
                facts.entropy_fields if facts is not None else frozenset()
            ),
        )
        taint.run(node.body)

        flow = _SinkFlow(
            all_param_names(node), self.sink_resolver(info)
        ).run(node.body)

        raises = escaping_raises(node.body, self.raise_resolver(info))

        return FunctionSummary(
            return_dim=return_dim,
            entropy_return=taint.entropy_return,
            seed_sink_params=frozenset(flow.sink_params),
            raises=raises,
        )

    # ------------------------------------------------------- resolvers
    def dim_resolver(self, caller: Optional[FunctionInfo]):
        """Unit dimension of a call, through arbitrarily many hops."""

        def resolve(name: str) -> Optional[str]:
            callee = (
                self._graph.resolve_call(caller, name)
                if self._graph is not None and caller is not None
                else None
            )
            if callee is None:
                return default_call_resolver(name)
            summary = self.functions.get(callee.key)
            if summary is not None:
                return summary.return_dim
            # Not yet summarized (first sweep of this SCC): the name
            # suffix is still a sound fact.
            return suffix_dim(callee.name)

        return resolve

    def entropy_resolver(self, caller: Optional[FunctionInfo]):
        """Why a call's return value is process entropy, or None."""

        def resolve(dotted: str) -> Optional[str]:
            callee = (
                self._graph.resolve_call(caller, dotted)
                if self._graph is not None and caller is not None
                else None
            )
            if callee is None:
                return None
            summary = self.functions.get(callee.key)
            if summary is not None and summary.entropy_return:
                return f"{dotted}() (its return value derives from process state)"
            return None

        return resolve

    def sink_resolver(self, caller: Optional[FunctionInfo]):
        """Callee parameter names + the subset reaching a seed sink."""

        def resolve(
            dotted: str,
        ) -> Optional[Tuple[Tuple[str, ...], FrozenSet[str]]]:
            callee = (
                self._graph.resolve_call(caller, dotted)
                if self._graph is not None and caller is not None
                else None
            )
            if callee is None:
                return None
            summary = self.functions.get(callee.key)
            if summary is None:
                return None
            params = all_param_names(callee.node)
            return params, summary.seed_sink_params

        return resolve

    def raise_resolver(self, caller: Optional[FunctionInfo]) -> RaiseResolver:
        """May-raise facts of one call site (table + summaries)."""

        def resolve(call: ast.Call, dotted: str) -> FrozenSet[str]:
            if not dotted:
                return frozenset()
            if dotted in _DOTTED_RAISERS:
                return _DOTTED_RAISERS[dotted]
            leaf = dotted.rsplit(".", 1)[-1]
            out: Set[str] = set()
            if leaf in _OS_RAISER_LEAVES:
                out.add(OS_ERROR)
            callee = (
                self._graph.resolve_call(caller, dotted)
                if self._graph is not None and caller is not None
                else None
            )
            if callee is not None:
                summary = self.functions.get(callee.key)
                if summary is not None:
                    out |= summary.raises
            if leaf in _BOUNDARY_LEAVES and call.args:
                # The submitted callable runs in a worker; whatever
                # escapes it resurfaces in this function when results
                # are gathered.
                entry_name = _dotted(call.args[0])
                entry = (
                    self._graph.resolve_call(caller, entry_name)
                    if self._graph is not None
                    and caller is not None
                    and entry_name
                    else None
                )
                if entry is not None:
                    entry_summary = self.functions.get(entry.key)
                    if entry_summary is not None:
                        out |= entry_summary.raises
            return frozenset(out)

        return resolve


def _class_facts(node: ast.ClassDef) -> ClassFacts:
    """Join ``self.x`` facts across one class's methods.

    ``__init__`` is processed first and seeds the per-field facts;
    every other method is a potential invalidator: a write that
    disagrees with (or obscures) the seeded dimension drops the fact,
    and a container mutator on a field drops its element facts.  The
    join is flow-insensitive across methods by design — any method may
    run between any two others — while each method body stays
    flow-sensitive through :class:`~.dataflow.ScopeAnalyzer`.
    """
    methods = [
        n for n in node.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    methods.sort(key=lambda m: (m.name != "__init__", m.name))

    facts = ClassFacts()
    conflicted: Set[str] = set()
    entropy: Set[str] = set()

    for method in methods:
        params = all_param_names(method)
        analyzer = analyze_scope(method.body, params=params)
        writes = {
            key[len("self."):]: dim
            for key, dim in analyzer.env.items()
            if key.startswith("self.")
        }
        is_init = method.name == "__init__"
        for name, dim in writes.items():
            if name not in facts.fields_dim:
                facts.fields_dim[name] = dim
            elif facts.fields_dim[name] != dim:
                conflicted.add(name)
            if not is_init:
                # A non-init writer supersedes any element facts the
                # constructor seeded for this field.
                facts.field_containers.pop(name, None)
        if is_init:
            for key, elems in analyzer.containers.items():
                if key.startswith("self."):
                    facts.field_containers[key[len("self."):]] = dict(elems)
        else:
            for key in _mutated_fields(method):
                facts.field_containers.pop(key, None)

        taint = EntropyTaint(params=params)
        taint.run(method.body)
        for key, dirty in taint.field_writes.items():
            if dirty:
                entropy.add(key)

    for name in conflicted:
        facts.fields_dim.pop(name, None)
    facts.entropy_fields = frozenset(entropy)
    return facts


def _mutated_fields(method: ast.AST) -> Set[str]:
    """Fields whose containers a method mutates in place."""
    from .dataflow import _CONTAINER_MUTATORS

    out: Set[str] = set()
    for sub in ast.walk(method):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _CONTAINER_MUTATORS
        ):
            key = self_attr_key(sub.func.value)
            if key is not None:
                out.add(key[len("self."):])
        elif isinstance(sub, ast.Subscript) and isinstance(
            sub.ctx, ast.Store
        ):
            key = self_attr_key(sub.value)
            if key is not None:
                out.add(key[len("self."):])
    return out
