"""Per-module symbol extraction for the project graph.

One :class:`ModuleSymbols` summarises everything the cross-module rules
need from a parsed module without keeping rule logic here: the dotted
module name derived from its path, the import table (local alias →
dotted target, with relative imports resolved against the module's
package), every function/method definition with the calls its body
makes, and the module-level names it binds.  :mod:`.project` stitches
these into import and call graphs.

Like the rest of the linter this is stdlib-``ast`` only and never
imports the code under analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .engine import ModuleUnit


def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative posix path.

    ``src/repro/execution/replay.py`` → ``repro.execution.replay`` and
    ``pkg/__init__.py`` → ``pkg``.  A leading ``src/`` (or ``lib/``)
    segment is a layout artefact, not a package, and is dropped; test
    fixtures rooted elsewhere resolve the same way.
    """
    parts = list(relpath.split("/"))
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = leaf
    return ".".join(p for p in parts if p)


@dataclass
class CallSite:
    """One call made inside a function body, as written in source."""

    name: str  # dotted name as written, e.g. "obs.audit_run_result"
    lineno: int
    col: int


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str  # "f" or "Cls.f" (nesting flattened with dots)
    module: str  # dotted module name
    lineno: int
    col: int
    node: ast.AST = field(repr=False)
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    is_method: bool = False

    @property
    def key(self) -> Tuple[str, str]:
        """Graph node id: ``(module, qualname)``."""
        return (self.module, self.qualname)


@dataclass
class ModuleSymbols:
    """Symbol summary of one module."""

    module: str
    relpath: str
    unit: "ModuleUnit" = field(repr=False)
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    module_names: Dict[str, int] = field(default_factory=dict)  # name -> line

    def resolve_local(self, name: str) -> Optional[str]:
        """Dotted target of ``name`` in this module's namespace, if any.

        A locally-defined function resolves to ``module.name``; an
        imported alias resolves through the import table.  Dotted names
        resolve their head: ``obs.audit_run_result`` with ``obs`` →
        ``repro.obs`` becomes ``repro.obs.audit_run_result``.
        """
        head, _, rest = name.partition(".")
        if head in self.imports:
            target = self.imports[head]
            return f"{target}.{rest}" if rest else target
        if head in self.functions and not rest:
            return f"{self.module}.{head}"
        if head in self.module_names and not rest:
            return f"{self.module}.{head}"
        return None


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _resolve_relative(module: str, relpath: str, level: int, target: str) -> str:
    """Absolute dotted module for a ``from ...target import x`` statement."""
    is_package = relpath.endswith("/__init__.py")
    parts = module.split(".") if module else []
    # level=1 means "this package": for a plain module that is its
    # parent package, for a package __init__ it is the package itself.
    drop = level - 1 if is_package else level
    if drop > 0:
        parts = parts[:-drop] if drop <= len(parts) else []
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def _collect_calls(fn_node: ast.AST) -> List[CallSite]:
    calls: List[CallSite] = []
    for sub in ast.walk(fn_node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name:
                calls.append(CallSite(name, sub.lineno, sub.col_offset))
    return calls


def extract_symbols(unit: "ModuleUnit") -> ModuleSymbols:
    """Build the :class:`ModuleSymbols` summary for one parsed module."""
    module = module_name_for(unit.relpath)
    syms = ModuleSymbols(module=module, relpath=unit.relpath, unit=unit)

    def add_function(node, qual_prefix: str, is_method: bool) -> None:
        qualname = f"{qual_prefix}{node.name}" if qual_prefix else node.name
        info = FunctionInfo(
            name=node.name,
            qualname=qualname,
            module=module,
            lineno=node.lineno,
            col=node.col_offset,
            node=node,
            params=[a.arg for a in node.args.args if a.arg not in ("self", "cls")],
            calls=_collect_calls(node),
            is_method=is_method,
        )
        syms.functions[qualname] = info

    def walk_body(body, qual_prefix: str, in_class: bool) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(node, qual_prefix, in_class)
                # Nested defs flatten into the qualname namespace so the
                # call graph can still attribute their calls.
                walk_body(node.body, f"{qual_prefix}{node.name}.", False)
            elif isinstance(node, ast.ClassDef):
                walk_body(node.body, f"{qual_prefix}{node.name}.", True)

    walk_body(unit.tree.body, "", False)

    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                syms.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(
                module, unit.relpath, node.level, node.module or ""
            ) if node.level else (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                syms.imports[local] = f"{base}.{alias.name}" if base else alias.name

    for node in unit.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    syms.module_names[target.id] = node.lineno
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            syms.module_names[node.target.id] = node.lineno
        elif isinstance(node, ast.ClassDef):
            syms.module_names[node.name] = node.lineno

    return syms
