"""Rule base class and registry.

Rules are small stateless objects: ``check(unit, ctx)`` yields
:class:`~.findings.Finding` objects for one parsed module.  They
register themselves at import time via the :func:`register` decorator,
so adding a rule is: drop a module into :mod:`repro.analysis.rules`,
import it from that package's ``__init__``, done (DESIGN.md §9).
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Type

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LintContext, ModuleUnit

_RULE_ID_RE = re.compile(r"^R\d{3}$")

RULES: Dict[str, "Rule"] = {}
"""All registered rules, keyed by id (populated on rules import)."""


class Rule:
    """One lint rule.

    Subclasses set ``id`` (``R\\d{3}``), ``title``, ``severity`` and a
    one-paragraph ``description`` (shown by ``--list-rules``), override
    :meth:`check` (or :meth:`check_project` for ``scope = "project"``),
    and optionally :meth:`applies` to scope themselves to a subset of
    the tree.

    Two orthogonal graph knobs drive dispatch and cache keying:

    * ``scope`` — ``"file"`` rules run per module via :meth:`check`;
      ``"project"`` rules run once per lint via :meth:`check_project`
      and see the whole :class:`~.project.ProjectGraph`.
    * ``uses_project`` — a *file*-scope rule that consults the graph
      (or sibling files through ``ctx.read_project_file``) sets this so
      the incremental cache re-runs it when *any* file changes, not
      just its own.  Project-scope rules imply it.
    * ``needs_escape`` — the rule additionally consumes the escape
      analysis (:mod:`.escape`): the engine builds ``ctx.escape`` on
      top of the graph only when some selected rule asks for it.
    * ``needs_summaries`` — the rule consumes the interprocedural
      fixpoint summaries (:mod:`.summaries`): the engine builds
      ``ctx.summaries`` on top of the graph only on demand, and the
      cache replays them per call-graph SCC.

    ``help_uri`` is surfaced as the SARIF rule descriptor's ``helpUri``
    so CI code-scanning annotations link back to the rule's docs.
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    scope: str = "file"  # "file" | "project"
    uses_project: bool = False
    needs_escape: bool = False
    needs_summaries: bool = False
    help_uri: str = ""

    @property
    def needs_graph(self) -> bool:
        return (
            self.scope == "project"
            or self.uses_project
            or self.needs_escape
            or self.needs_summaries
        )

    def applies(self, relpath: str) -> bool:
        """Whether this rule runs on the module at ``relpath`` (posix)."""
        return True

    def check(self, unit: "ModuleUnit", ctx: "LintContext") -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, ctx: "LintContext") -> Iterator[Finding]:
        """Project-scope entry: ``ctx.project`` holds the graph.

        Findings must still be built against the :class:`ModuleUnit`
        they belong to (via :meth:`finding`) so paths, source lines and
        suppressions resolve normally.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        unit: "ModuleUnit",
        line: int,
        col: int,
        message: str,
        fix: dict = None,
    ) -> Finding:
        """Build a finding for this rule at ``(line, col)`` of ``unit``."""
        code = ""
        if 1 <= line <= len(unit.lines):
            code = unit.lines[line - 1].strip()
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=unit.relpath,
            line=line,
            col=col,
            message=message,
            code=code,
            fix=fix,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add to :data:`RULES`."""
    if not _RULE_ID_RE.match(cls.id or ""):
        raise ValueError(f"rule id must match R\\d{{3}}, got {cls.id!r}")
    if cls.id in RULES and type(RULES[cls.id]) is not cls:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Registered rules, optionally restricted to ``select`` ids."""
    from . import rules as _rules  # noqa: F401  (registers on import)

    if select is None:
        return [RULES[rid] for rid in sorted(RULES)]
    out = []
    for rid in select:
        rid = rid.strip().upper()
        if rid not in RULES:
            raise KeyError(f"unknown rule {rid!r}; known: {', '.join(sorted(RULES))}")
        out.append(RULES[rid])
    return out


def in_packages(relpath: str, packages: tuple[str, ...]) -> bool:
    """True when ``relpath`` lies under ``repro/<pkg>/`` for some pkg.

    Matches anywhere in the path so both the real tree
    (``src/repro/core/x.py``) and test fixtures rooted elsewhere work.
    """
    parts = relpath.split("/")
    for i, part in enumerate(parts[:-1]):
        if part == "repro" and i + 1 < len(parts) and parts[i + 1] in packages:
            return True
    return False


def in_benchmarks(relpath: str) -> bool:
    """True when ``relpath`` lies under a ``benchmarks/`` directory.

    The benchmark suite is figure-generation and measurement code: it
    must stay deterministic (R001/R012) and honest about comparisons
    and failures (R005/R006), but it is not library API — docstring
    unit contracts (R003/R009) do not apply there.
    """
    return relpath.startswith("benchmarks/") or "/benchmarks/" in relpath
