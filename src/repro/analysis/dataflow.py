"""Unit-dimension dataflow: the lattice behind the v2 R003 rule.

Two layers live here:

* The **naming-convention classifier** (``classify_name`` /
  ``infer_dim``) — the original suffix-only inference of reprolint v1,
  kept verbatim as both the lattice's seed and the regression oracle:
  fixtures assert that drift the suffix pass provably misses is caught
  by the dataflow pass.
* The **intraprocedural propagator** (:func:`analyze_scope`) — walks one
  function (or the module body) in source order carrying an environment
  of variable → dimension facts, seeded from parameter names and grown
  through assignments, so ``tmp = runtime_hours; total_usd += tmp``
  is a dollars/hours mix even though ``tmp`` itself is dimensionless to
  the naming pass.  Call results are resolved through the project graph
  when available (a callee's return dimension comes from its name
  suffix or, failing that, from analysing its own returns).

The conservatism contract is unchanged from v1: a fact is either
*confident* or absent, every merge of disagreeing facts is absent, and
issues fire only when **both** sides of an operation are confident and
conflict.  Dynamic features simply produce no facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

MONEY = "dollars"
HOURS = "hours"
SECONDS = "seconds"

_MONEY_WORDS = frozenset(
    {"usd", "dollar", "dollars", "cost", "costs", "price", "prices",
     "bill", "billed", "budget", "fee", "fees"}
)
_HOURS_WORDS = frozenset({"hours", "hour", "hrs", "hr"})
_SECONDS_WORDS = frozenset({"seconds", "secs", "sec"})

#: Name suffixes that pin a function's return dimension (also used by
#: R009's docstring cross-check and the ``--fix`` suffix renamer).
RETURN_SUFFIXES = {
    "_usd": MONEY,
    "_dollars": MONEY,
    "_cost": MONEY,
    "_hours": HOURS,
    "_hrs": HOURS,
    "_s": SECONDS,
    "_seconds": SECONDS,
}

#: Canonical suffix per dimension, for rename suggestions.
CANONICAL_SUFFIX = {MONEY: "_usd", HOURS: "_hours", SECONDS: "_s"}


def classify_name(name: str) -> Optional[str]:
    """Dimension of an identifier, or None when ambiguous/neutral."""
    words = [w for w in name.lower().strip("_").split("_") if w]
    if not words:
        return None
    dims = set()
    if _MONEY_WORDS.intersection(words):
        dims.add(MONEY)
    if _HOURS_WORDS.intersection(words):
        dims.add(HOURS)
    # Bare trailing "_s" is the seconds suffix (``wall_s``); a word that
    # merely *ends* in s (``draws``, ``times``) is not.
    if _SECONDS_WORDS.intersection(words) or words[-1] == "s":
        dims.add(SECONDS)
    if len(dims) != 1:
        return None  # rates (``price_per_hour``) and neutral names
    return dims.pop()


def suffix_dim(name: str) -> Optional[str]:
    """Dimension pinned by a trailing unit suffix, or None."""
    for suffix, dim in RETURN_SUFFIXES.items():
        if name.endswith(suffix):
            return dim
    return None


def infer_dim(node: ast.AST) -> Optional[str]:
    """Suffix-only dimension of an expression (the v1 oracle).

    Only name-shaped expressions are classified; calls and arithmetic
    products are unknown by design (multiplication/division is how unit
    conversions legitimately happen).
    """
    if isinstance(node, ast.Name):
        return classify_name(node.id)
    if isinstance(node, ast.Attribute):
        return classify_name(node.attr)
    if isinstance(node, ast.Subscript):
        return infer_dim(node.value)
    if isinstance(node, ast.Starred):
        return infer_dim(node.value)
    if isinstance(node, ast.UnaryOp):
        return infer_dim(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, right = infer_dim(node.left), infer_dim(node.right)
        if left is not None and left == right:
            return left
        return None
    if isinstance(node, ast.IfExp):
        body, orelse = infer_dim(node.body), infer_dim(node.orelse)
        if body is not None and body == orelse:
            return body
        return None
    return None


# ----------------------------------------------------------------------
# dataflow propagation
# ----------------------------------------------------------------------

#: Resolves the return dimension of a call written as ``name`` (dotted,
#: as in source), or None when unknown.  The project graph supplies one
#: per analysed function; without a graph a suffix-only fallback runs.
CallResolver = Callable[[str], Optional[str]]

#: Resolves the positional parameter names of a call written as
#: ``name`` (including a leading ``self``/``cls`` when the callee is a
#: method), or None when the callee is unknown.  This is what carries a
#: caller's dataflow facts *into* the callee's signature: each argument
#: binding is checked against the dimension the parameter name
#: declares, so ``schedule(total_usd)`` into ``def schedule(
#: delay_hours)`` fires even though both sides are individually
#: consistent — a class of drift neither the suffix pass nor the
#: intraprocedural pass can see.
ParamResolver = Callable[[str], Optional[Tuple[str, ...]]]

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: Methods that change a container's contents in place: any of these on
#: a tracked name drops its element facts (confident-or-absent).
_CONTAINER_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "popitem", "remove", "clear",
     "update", "setdefault", "sort", "reverse"}
)


def self_attr_key(node: ast.AST) -> Optional[str]:
    """``"self.x"`` for a plain instance-field reference, else None.

    Only single-level ``self.<field>`` accesses produce facts —
    ``self.a.b`` would need an alias analysis to be sound, so it stays
    unknown (confident-or-absent).  The string key lets instance fields
    share the same environment and container tables as locals: the
    field lattice is literally the element lattice under longer keys.
    """
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _const_index(node: ast.AST) -> Optional[object]:
    """Literal int/str subscript index, including ``-1`` forms."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = node.operand
        if isinstance(inner, ast.Constant) and isinstance(
            inner.value, int
        ) and not isinstance(inner.value, bool):
            return -inner.value
        return None
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, str)
    ) and not isinstance(node.value, bool):
        return node.value
    return None


@dataclass
class UnitIssue:
    """One dimensional inconsistency found by the propagator."""

    kind: str  # "mix-add" | "mix-compare" | "mix-augassign" |
    #            "mix-arg" | "assign-suffix" | "return-suffix"
    lineno: int
    col: int
    message: str
    fix: Optional[dict] = None  # autofix hint (see analysis.fixers)


def _is_number(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool)


def _call_name(node: ast.Call) -> str:
    parts: List[str] = []
    fn = node.func
    while isinstance(fn, ast.Attribute):
        parts.append(fn.attr)
        fn = fn.value
    if isinstance(fn, ast.Name):
        parts.append(fn.id)
        return ".".join(reversed(parts))
    return ""


def default_call_resolver(name: str) -> Optional[str]:
    """Suffix-only fallback: ``obj.wall_hours()`` reads as hours.

    Conversion helpers whose names mention two units
    (``hours_to_seconds``) classify as ambiguous and stay unknown.
    """
    leaf = name.rsplit(".", 1)[-1]
    return classify_name(leaf)


class ScopeAnalyzer:
    """Propagates dimension facts through one scope in source order."""

    def __init__(
        self,
        resolver: Optional[CallResolver] = None,
        declared_return: Optional[str] = None,
        fn_name: str = "",
        param_resolver: Optional[ParamResolver] = None,
    ) -> None:
        self.resolver = resolver or default_call_resolver
        self.param_resolver = param_resolver
        self.declared_return = declared_return
        self.fn_name = fn_name
        self.env: Dict[str, Optional[str]] = {}
        #: Per-element facts of container-bound names: variable name →
        #: {index or key: dimension}.  Seeded from list/tuple/dict
        #: literals, grown by constant-index stores, read back through
        #: constant-index subscripts and tuple unpacking — how payload
        #: tuples cross call and process boundaries (``args[0]``).
        self.containers: Dict[str, Dict[object, Optional[str]]] = {}
        self.issues: List[UnitIssue] = []
        self.return_dims: List[Optional[str]] = []

    # ----------------------------------------------------------- facts
    def lookup(self, name: str) -> Optional[str]:
        if name in self.env:
            return self.env[name]
        return classify_name(name)

    @staticmethod
    def _container_key(node: ast.AST) -> Optional[str]:
        """Environment key of a container-capable reference, or None."""
        if isinstance(node, ast.Name):
            return node.id
        return self_attr_key(node)

    def _container_facts(
        self, node: ast.AST
    ) -> Optional[Dict[object, Optional[str]]]:
        """Element dimensions of a container literal, or None."""
        if isinstance(node, (ast.List, ast.Tuple)):
            if any(isinstance(e, ast.Starred) for e in node.elts):
                return None  # element alignment unknowable past a splat
            n = len(node.elts)
            facts: Dict[object, Optional[str]] = {}
            for i, elt in enumerate(node.elts):
                dim = self.infer(elt)
                facts[i] = dim
                facts[i - n] = dim  # negative-index alias
            return facts
        if isinstance(node, ast.Dict):
            facts = {}
            for key, value in zip(node.keys, node.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, (int, str)
                ) and not isinstance(key.value, bool):
                    facts[key.value] = self.infer(value)
            return facts if facts else None
        return None

    def infer(self, node: ast.AST) -> Optional[str]:
        """Dimension of an expression under the current environment."""
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Attribute):
            key = self_attr_key(node)
            if key is not None and key in self.env:
                return self.env[key]
            return classify_name(node.attr)
        if isinstance(node, ast.Subscript):
            ckey = self._container_key(node.value)
            if ckey is not None:
                facts = self.containers.get(ckey)
                if facts is not None:
                    idx = _const_index(node.slice)
                    if idx is not None and idx in facts:
                        return facts[idx]
            return self.infer(node.value)
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Call):
            name = _call_name(node)
            return self.resolver(name) if name else None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left, right = self.infer(node.left), self.infer(node.right)
            if left is not None and left == right:
                return left
            # A bare numeric literal adopts the other side's dimension
            # (``start_hours + 2.0`` is hours): it cannot *conflict*
            # with anything, so this propagates more facts without
            # weakening the confident-or-absent contract.
            if left is not None and right is None and _is_number(node.right):
                return left
            if right is not None and left is None and _is_number(node.left):
                return right
            return None
        if isinstance(node, ast.IfExp):
            body, orelse = self.infer(node.body), self.infer(node.orelse)
            if body is not None and body == orelse:
                return body
            return None
        return None

    # ---------------------------------------------------------- issues
    def _scan_expressions(self, stmt: ast.stmt) -> None:
        """Flag mixed additions/comparisons in one statement's exprs."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs get their own analysis
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left, right = self.infer(node.left), self.infer(node.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    self.issues.append(UnitIssue(
                        "mix-add", node.lineno, node.col_offset,
                        f"'{op}' mixes {left} and {right}; convert through "
                        "repro.units before combining",
                    ))
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _COMPARE_OPS):
                        continue
                    left, right = self.infer(lhs), self.infer(rhs)
                    if left is not None and right is not None and left != right:
                        self.issues.append(UnitIssue(
                            "mix-compare", node.lineno, node.col_offset,
                            f"comparison mixes {left} and {right}; one side "
                            "needs a repro.units conversion",
                        ))
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CONTAINER_MUTATORS
                ):
                    ckey = self._container_key(node.func.value)
                    if ckey is not None:
                        self.containers.pop(ckey, None)
                if self.param_resolver is not None:
                    self._check_call_args(node)

    def _check_call_args(self, node: ast.Call) -> None:
        """Bind caller facts to the callee's parameter names.

        Positional binding stops at the first ``*args`` splat (alignment
        is unknowable past it); keywords match by name.  A leading
        ``self``/``cls`` parameter is skipped only for attribute-style
        calls (``obj.meth(x)``), where the receiver fills it — for a
        plain ``fn(a, b)`` the parameters align as written.
        """
        name = _call_name(node)
        if not name:
            return
        params = self.param_resolver(name)
        if not params:
            return
        if params[0] in ("self", "cls") and isinstance(
            node.func, ast.Attribute
        ):
            params = params[1:]
        for pname, arg in zip(params, node.args):
            if isinstance(arg, ast.Starred):
                break
            self._check_binding(pname, arg)
        named = set(params)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in named:
                self._check_binding(kw.arg, kw.value)

    def _check_binding(self, pname: str, arg: ast.expr) -> None:
        declared = classify_name(pname)
        if declared is None:
            return
        got = self.infer(arg)
        if got is not None and got != declared:
            self.issues.append(UnitIssue(
                "mix-arg", arg.lineno, arg.col_offset,
                f"argument bound to parameter {pname!r} ({declared}) is a "
                f"{got}-dimensioned value; convert through repro.units at "
                "the call site",
            ))

    # ------------------------------------------------------ statements
    def _bind(self, name: str, value_dim: Optional[str], node: ast.stmt) -> None:
        declared = suffix_dim(name)
        if (
            declared is not None
            and value_dim is not None
            and value_dim != declared
        ):
            # Instance fields ("self.x" keys) are API-visible attributes:
            # a rename hint would be unsafe outside this class, so the
            # finding carries no autofix for them.
            fix = None
            if "." not in name:
                fix = {"op": "rename", "name": name,
                       "to": _rename_for(name, value_dim)}
            self.issues.append(UnitIssue(
                "assign-suffix", node.lineno, node.col_offset,
                f"{name!r} declares {declared} by suffix but is assigned a "
                f"{value_dim}-dimensioned value",
                fix=fix,
            ))
            # Trust the declared suffix downstream so one drift is one
            # finding, not a cascade at every later use.
            self.env[name] = declared
            return
        if value_dim is not None:
            self.env[name] = value_dim
        elif classify_name(name) is not None:
            # Keep the name-derived fact: an unknown RHS must not erase
            # what the suffix convention already promises readers.
            self.env[name] = classify_name(name)
        else:
            self.env[name] = None

    def _assign_target(
        self, target: ast.expr, value: ast.expr, value_dim: Optional[str],
        stmt: ast.stmt,
    ) -> None:
        tkey = self._container_key(target)
        if tkey is not None:
            self._bind(tkey, value_dim, stmt)
            facts = self._container_facts(value)
            if facts is None:
                skey = self._container_key(value)
                alias = self.containers.get(skey) if skey is not None else None
                facts = dict(alias) if alias is not None else None
            if facts is not None:
                self.containers[tkey] = facts
            else:
                self.containers.pop(tkey, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if any(isinstance(t, ast.Starred) for t in target.elts):
                return
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    self._assign_target(t, v, self.infer(v), stmt)
                return
            facts = (
                self.containers.get(value.id)
                if isinstance(value, ast.Name)
                else None
            )
            for i, t in enumerate(target.elts):
                if isinstance(t, ast.Name):
                    dim = facts.get(i) if facts is not None else None
                    self._bind(t.id, dim, stmt)
                    self.containers.pop(t.id, None)
        elif isinstance(target, ast.Subscript):
            skey = self._container_key(target.value)
            if skey is None:
                return
            facts = self.containers.get(skey)
            if facts is not None:
                idx = _const_index(target.slice)
                if idx is not None:
                    facts[idx] = value_dim
                else:
                    # Unknown slot: every element fact is now suspect.
                    self.containers.pop(skey, None)

    def _handle(self, stmt: ast.stmt) -> None:
        self._scan_expressions(stmt)
        if isinstance(stmt, ast.Assign):
            value_dim = self.infer(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, value_dim, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_target(
                stmt.target, stmt.value, self.infer(stmt.value), stmt
            )
        elif isinstance(stmt, ast.AugAssign):
            tkey = self._container_key(stmt.target)
            if tkey is not None:
                self.containers.pop(tkey, None)
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Add, ast.Sub)
        ):
            target_dim = (
                self.lookup(stmt.target.id)
                if isinstance(stmt.target, ast.Name)
                else self.infer(stmt.target)
            )
            value_dim = self.infer(stmt.value)
            if (
                target_dim is not None
                and value_dim is not None
                and target_dim != value_dim
            ):
                op = "+=" if isinstance(stmt.op, ast.Add) else "-="
                self.issues.append(UnitIssue(
                    "mix-augassign", stmt.lineno, stmt.col_offset,
                    f"'{op}' accumulates {value_dim} into a {target_dim} "
                    "total; convert through repro.units before accumulating",
                ))
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            got = self.infer(stmt.value)
            self.return_dims.append(got)
            if (
                self.declared_return is not None
                and got is not None
                and got != self.declared_return
            ):
                self.issues.append(UnitIssue(
                    "return-suffix", stmt.lineno, stmt.col_offset,
                    f"{self.fn_name}() declares {self.declared_return} by "
                    f"suffix but returns a {got}-dimensioned expression",
                ))

    def run(self, body: List[ast.stmt]) -> "ScopeAnalyzer":
        """Process ``body`` in source order, recursing into block stmts."""
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # separate scopes, analysed on their own
            self._handle(stmt)
            for inner in _block_bodies(stmt):
                self.run(inner)
        return self


def _block_bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        inner = getattr(stmt, attr, None)
        if inner and not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            yield inner
    for handler in getattr(stmt, "handlers", ()) or ():
        yield handler.body


def _rename_for(name: str, dim: str) -> str:
    """Suffix-corrected name for a variable holding ``dim`` values."""
    for suffix in RETURN_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)] + CANONICAL_SUFFIX[dim]
    return name + CANONICAL_SUFFIX[dim]


def analyze_scope(
    body: List[ast.stmt],
    params: Tuple[str, ...] = (),
    resolver: Optional[CallResolver] = None,
    declared_return: Optional[str] = None,
    fn_name: str = "",
    param_resolver: Optional[ParamResolver] = None,
    self_env: Optional[Dict[str, Optional[str]]] = None,
    self_containers: Optional[Dict[str, Dict[object, Optional[str]]]] = None,
) -> ScopeAnalyzer:
    """Analyse one scope body; returns the finished analyzer.

    ``self_env`` / ``self_containers`` seed the environment with
    per-class instance-field facts (``"self.x"`` keys) aggregated by
    :mod:`.summaries` — how ``__init__`` assignments become confident
    facts inside every other method of the class.  The method body
    still updates them flow-sensitively as it reassigns fields.
    """
    analyzer = ScopeAnalyzer(
        resolver=resolver, declared_return=declared_return, fn_name=fn_name,
        param_resolver=param_resolver,
    )
    if self_env:
        analyzer.env.update(self_env)
    if self_containers:
        analyzer.containers.update(
            {key: dict(facts) for key, facts in self_containers.items()}
        )
    for param in params:
        dim = classify_name(param)
        if dim is not None:
            analyzer.env[param] = dim
    return analyzer.run(body)


# ----------------------------------------------------------------------
# entropy taint: seed derivations for R012
# ----------------------------------------------------------------------

#: Calls whose dotted leaf is pure process entropy.  ``perf_counter``/
#: ``monotonic`` are *allowed* as wall timers (R001 leaves them alone)
#: but are entropy the moment they feed a seed.
ENTROPY_CALL_LEAVES = frozenset(
    {"getpid", "perf_counter", "monotonic", "urandom", "uuid4",
     "uuid1", "token_bytes", "token_hex"}
)

#: Dotted wall-clock reads that make results run-dependent.  Defined
#: here (not in R001, which re-exports it) because every entropy
#: consumer — R001's syntactic ban, R012's worker contract, R014's
#: lineage rule and the summary fixpoint — must agree on what a clock
#: is; leaves alone don't work since ``history.today`` is not a clock.
BANNED_CLOCK_ATTRS = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
     "datetime.today", "date.today", "datetime.datetime.now",
     "datetime.datetime.utcnow", "datetime.datetime.today",
     "datetime.date.today"}
)

#: Call leaves that consume a seed: their arguments must derive from
#: the job payload (parameters/constants), never from process state.
SEED_SINK_LEAVES = frozenset({"default_rng", "SeedSequence"})


@dataclass
class EntropyIssue:
    """One nondeterministic seed derivation inside a function."""

    lineno: int
    col: int
    source: str  # human-readable description of the entropy source


class EntropyTaint:
    """Tracks process-scoped entropy flowing into seed derivations.

    The payload contract of DESIGN.md §12 is that every worker job is a
    pure function of its ``(seed, cell)`` arguments.  This pass walks
    one function with a clean/tainted environment: parameters and
    constants are clean, reads of *mutated* module globals and entropy
    calls (clocks, pids, os randomness) are tainted, assignments
    propagate — including through container literals and subscripts, so
    ``seed = args[0]`` stays clean while ``state[0]`` of
    ``state = [time.time()]`` does not.  An issue fires only when a
    seed sink (``default_rng``/``SeedSequence``) consumes a provably
    tainted expression, or is called with no seed at all (OS entropy).
    """

    def __init__(
        self,
        params: Tuple[str, ...] = (),
        process_globals: Optional[set] = None,
        clock_attrs: Optional[frozenset] = None,
        call_resolver: Optional[Callable[[str], Optional[str]]] = None,
        sink_param_resolver: Optional[
            Callable[[str], Optional[Tuple[Tuple[str, ...], frozenset]]]
        ] = None,
        tainted_fields: Optional[frozenset] = None,
    ) -> None:
        self.bound = set(params)  # locally bound, currently clean
        self.tainted: set = set()
        self.process_globals = process_globals or set()
        self.clock_attrs = (
            BANNED_CLOCK_ATTRS if clock_attrs is None else clock_attrs
        )
        #: Interprocedural hooks, fed by the summary fixpoint
        #: (:mod:`.summaries`).  ``call_resolver(dotted)`` describes why
        #: a call's *return value* is entropy (the callee's summary says
        #: so), ``sink_param_resolver(dotted)`` yields the callee's
        #: parameter names plus the subset that transitively reach a
        #: seed sink, and ``tainted_fields`` holds ``"self.x"`` keys the
        #: enclosing class assigns from process state in some method.
        self.call_resolver = call_resolver
        self.sink_param_resolver = sink_param_resolver
        self.tainted_fields = tainted_fields or frozenset()
        self.entropy_return = False
        #: ``"self.x"`` → True when some assignment to the field in this
        #: body was entropy-tainted (read back by the class-facts join).
        self.field_writes: Dict[str, bool] = {}
        self.issues: List[EntropyIssue] = []

    # ------------------------------------------------------------------
    def expr_entropy(self, node: ast.AST) -> Optional[str]:
        """Why ``node`` is process entropy, or None when clean."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in self.tainted:
                    return f"{sub.id!r} (derived from process state)"
                if sub.id not in self.bound and sub.id in self.process_globals:
                    return f"mutated module global {sub.id!r}"
            elif isinstance(sub, ast.Attribute):
                key = self_attr_key(sub)
                if key is not None and key in self.tainted_fields:
                    return f"instance field {key!r} (assigned from process state)"
            elif isinstance(sub, ast.Call):
                dotted = _call_name(sub)
                leaf = dotted.rsplit(".", 1)[-1]
                if dotted in self.clock_attrs or leaf in ENTROPY_CALL_LEAVES:
                    return f"{dotted}()"
                if self.call_resolver is not None:
                    why = self.call_resolver(dotted)
                    if why is not None:
                        return why
        return None

    def _check_sinks(self, stmt: ast.stmt) -> None:
        # Only this statement's own expressions: nested block bodies are
        # re-walked by run() *after* their preceding bindings apply, so
        # scanning them here would consult a stale environment.
        own: List[ast.AST] = []
        for fname, value in ast.iter_fields(stmt):
            if fname in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.AST):
                own.append(value)
            elif isinstance(value, list):
                own.extend(v for v in value if isinstance(v, ast.AST))
        for sub in (s for expr in own for s in ast.walk(expr)):
            if not isinstance(sub, ast.Call):
                continue
            dotted = _call_name(sub)
            if dotted.rsplit(".", 1)[-1] not in SEED_SINK_LEAVES:
                self._check_transitive_sink(sub, dotted)
                continue
            if not sub.args and not sub.keywords:
                self.issues.append(EntropyIssue(
                    sub.lineno, sub.col_offset,
                    f"{dotted}() with no seed draws OS entropy",
                ))
                continue
            for arg in (*sub.args, *[kw.value for kw in sub.keywords]):
                source = self.expr_entropy(arg)
                if source is not None:
                    self.issues.append(EntropyIssue(
                        arg.lineno, arg.col_offset,
                        f"seed derived from {source}",
                    ))

    def _check_transitive_sink(self, sub: ast.Call, dotted: str) -> None:
        """Entropy passed to a callee parameter that reaches a seed sink.

        This is the interprocedural half of the sink check: the summary
        fixpoint records, per callee, which parameters flow (through any
        number of further calls) into a ``default_rng``/``SeedSequence``
        argument, so ``kernel(seed=time.monotonic())`` fires here even
        though the sink itself lives hops away.
        """
        if self.sink_param_resolver is None or not dotted:
            return
        resolved = self.sink_param_resolver(dotted)
        if resolved is None:
            return
        params, sink_params = resolved
        if not sink_params:
            return
        if params and params[0] in ("self", "cls") and isinstance(
            sub.func, ast.Attribute
        ):
            params = params[1:]
        bindings: List[Tuple[str, ast.expr]] = []
        for pname, arg in zip(params, sub.args):
            if isinstance(arg, ast.Starred):
                break
            bindings.append((pname, arg))
        named = set(params)
        for kw in sub.keywords:
            if kw.arg is not None and kw.arg in named:
                bindings.append((kw.arg, kw.value))
        for pname, arg in bindings:
            if pname not in sink_params:
                continue
            source = self.expr_entropy(arg)
            if source is not None:
                self.issues.append(EntropyIssue(
                    arg.lineno, arg.col_offset,
                    f"seed derived from {source} reaches a seed "
                    f"derivation through parameter {pname!r} of "
                    f"{dotted}()",
                ))

    def _bind_target(self, target: ast.expr, dirty: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.bound.add(target.id)
            if dirty is not None:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, dirty)
        else:
            key = self_attr_key(target)
            if key is not None:
                self.field_writes[key] = (
                    self.field_writes.get(key, False) or dirty is not None
                )

    def run(self, body: List[ast.stmt]) -> "EntropyTaint":
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            self._check_sinks(stmt)
            if isinstance(stmt, ast.Assign):
                dirty = self.expr_entropy(stmt.value)
                for target in stmt.targets:
                    self._bind_target(target, dirty)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind_target(stmt.target, self.expr_entropy(stmt.value))
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if self.expr_entropy(stmt.value) is not None:
                    self.tainted.add(stmt.target.id)
                self.bound.add(stmt.target.id)
            elif isinstance(stmt, ast.For) and isinstance(
                stmt.iter, ast.expr
            ):
                self._bind_target(stmt.target, self.expr_entropy(stmt.iter))
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if self.expr_entropy(stmt.value) is not None:
                    self.entropy_return = True
            for inner in _block_bodies(stmt):
                self.run(inner)
        return self


def all_param_names(fn_node: ast.AST) -> Tuple[str, ...]:
    """Every parameter name of a def, including ``*args``/``**kwargs``."""
    args = fn_node.args
    params = tuple(
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    )
    return params + tuple(
        v.arg for v in (args.vararg, args.kwarg) if v is not None
    )


def analyze_entropy(
    fn_node: ast.AST,
    process_globals: Optional[set] = None,
    clock_attrs: Optional[frozenset] = None,
    call_resolver: Optional[Callable[[str], Optional[str]]] = None,
    sink_param_resolver: Optional[
        Callable[[str], Optional[Tuple[Tuple[str, ...], frozenset]]]
    ] = None,
    tainted_fields: Optional[frozenset] = None,
) -> List[EntropyIssue]:
    """Nondeterministic seed derivations of one function body."""
    if not isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    taint = EntropyTaint(
        params=all_param_names(fn_node),
        process_globals=process_globals,
        clock_attrs=clock_attrs,
        call_resolver=call_resolver,
        sink_param_resolver=sink_param_resolver,
        tainted_fields=tainted_fields,
    )
    return taint.run(fn_node.body).issues


def infer_return_dim(
    fn_node: ast.AST,
    resolver: Optional[CallResolver] = None,
    self_env: Optional[Dict[str, Optional[str]]] = None,
) -> Optional[str]:
    """Return dimension of a function: suffix first, else its returns.

    Used by the project-graph call resolver so that a helper without a
    unit suffix (``def elapsed(...): return end_hours - start_hours``)
    still contributes a confident fact at its call sites.  ``self_env``
    seeds instance-field facts for methods (see :func:`analyze_scope`).
    """
    if not isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    declared = suffix_dim(fn_node.name)
    if declared is not None:
        return declared
    params = tuple(a.arg for a in fn_node.args.args)
    analysis = analyze_scope(
        fn_node.body, params=params, resolver=resolver, self_env=self_env
    )
    dims = {d for d in analysis.return_dims}
    if len(dims) == 1 and None not in dims:
        return dims.pop()
    return None
