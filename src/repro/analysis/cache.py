"""Content-hash incremental cache for lint runs.

``make lint`` re-runs on every edit loop, so the engine caches findings
keyed by *content*, never by mtime:

* **file-scope findings** (rules with ``uses_project=False``) replay
  whenever that one file's hash is unchanged;
* **project-scope findings** (graph rules and ``uses_project`` rules)
  replay only when the *whole* fingerprint — every linted file's hash
  plus every out-of-tree dependency a rule read through
  ``ctx.read_project_file`` (e.g. R004's parity-test source) — is
  unchanged.  Any edit anywhere re-runs them all, which is the sound
  choice: a one-line signature change can move findings in any file.

The cache additionally keys on an **engine fingerprint**: a hash of the
``repro.analysis`` package's own sources and the selected rule ids, so
editing the linter (or linting with ``--select``) can never replay
findings computed by different code.  A fully warm run therefore does
no parsing and no rule work at all — it reads, hashes, and replays.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .findings import Finding

CACHE_VERSION = 4
DEFAULT_CACHE_NAME = ".reprolint_cache.json"

#: Analysis phases folded into the engine fingerprint.  Adding a phase
#: (v3 added the escape analysis, v4 the interprocedural summary
#: fixpoint) bumps the fingerprint even if no package source happened
#: to change on disk.
ANALYSIS_PHASES = ("symbols", "graph", "escape", "dataflow", "summaries")

_fingerprint_memo: Dict[tuple, str] = {}


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def engine_fingerprint(rule_ids: Sequence[str]) -> str:
    """Hash of the linter's own sources plus the selected rule ids."""
    key = tuple(sorted(rule_ids))
    if key not in _fingerprint_memo:
        pkg = Path(__file__).resolve().parent
        h = hashlib.sha256()
        for p in sorted(pkg.rglob("*.py")):
            if "__pycache__" in p.parts:
                continue
            h.update(p.relative_to(pkg).as_posix().encode())
            h.update(b"\x00")
            h.update(p.read_bytes())
        h.update(("\x00".join(key)).encode())
        h.update(("\x00".join(ANALYSIS_PHASES)).encode())
        _fingerprint_memo[key] = h.hexdigest()
    return _fingerprint_memo[key]


def project_fingerprint(file_hashes: Dict[str, str]) -> str:
    h = hashlib.sha256()
    for relpath in sorted(file_hashes):
        h.update(relpath.encode())
        h.update(b"\x00")
        h.update(file_hashes[relpath].encode())
        h.update(b"\x00")
    return h.hexdigest()


class LintCache:
    """On-disk findings cache; see the module docstring for keying."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.fingerprint: str = ""
        self.project_fp: str = ""
        self.deps: Dict[str, Optional[str]] = {}
        self.files: Dict[str, dict] = {}
        #: Third tier: SCC content key → serialized function summaries
        #: (:mod:`.summaries`).  Keys hash member sources plus callee
        #: SCC keys, so an edit re-summarizes only the SCCs that can
        #: observe it.
        self.summaries: Dict[str, list] = {}
        self.loaded = False

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "LintCache":
        """Fail-open: an unreadable, corrupt or version-skewed cache
        file degrades to an always-cold run, never an error."""
        cache = cls(path)
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return cache
        if doc.get("version") != CACHE_VERSION:
            return cache
        cache.fingerprint = doc.get("fingerprint", "")
        cache.project_fp = doc.get("project_fingerprint", "")
        cache.deps = dict(doc.get("deps", {}))
        cache.files = dict(doc.get("files", {}))
        cache.summaries = dict(doc.get("summaries", {}))
        cache.loaded = True
        return cache

    def save(
        self,
        fingerprint: str,
        project_fp: str,
        deps: Dict[str, Optional[str]],
        files: Dict[str, dict],
        summaries: Optional[Dict[str, list]] = None,
    ) -> None:
        """Fail-open: a read-only tree degrades to always-cold."""
        doc = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "project_fingerprint": project_fp,
            "deps": deps,
            "files": files,
            "summaries": summaries if summaries is not None else {},
        }
        try:
            self.path.write_text(
                json.dumps(doc, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # a read-only tree degrades to always-cold, not an error

    # ------------------------------------------------------------------
    def file_entry(self, relpath: str, file_hash: str) -> Optional[dict]:
        entry = self.files.get(relpath)
        if entry and entry.get("hash") == file_hash:
            return entry
        return None

    def deps_unchanged(self, root: Path) -> bool:
        """Fail-open: a dependency that vanishes between the ``is_file``
        probe and the read counts as changed (cold run), not a crash."""
        for relpath, recorded in self.deps.items():
            p = root / relpath
            try:
                current = content_hash(p.read_bytes()) if p.is_file() else None
            except OSError:
                return False
            if current != recorded:
                return False
        return True


def encode_findings(findings: List[Finding]) -> List[dict]:
    return [f.to_json() for f in findings]


def decode_findings(raw: List[dict]) -> List[Finding]:
    return [Finding.from_json(d) for d in raw]
