"""Autofix pass for mechanically-safe findings (``--fix``).

Rules attach structured hints to findings (``Finding.fix``); this module
turns them into source edits.  Three hint shapes exist today:

``{"op": "rename", "name": N, "to": T}``
    from R003's assign-suffix check — a local variable whose unit suffix
    contradicts the dimension flowing into it.  The fix renames every
    occurrence *within the enclosing function scope*, and refuses
    whenever the rename could be observable beyond that scope:
    parameters (API-visible keywords), names declared ``global`` or
    ``nonlocal``, names also used inside nested functions or lambdas
    (closure capture), module-level names (importable attributes), and
    targets whose new name is already in use.

``{"op": "zero-guard", "line", "start", "end", "repl"}``
    from R005 — ``X == 0.0`` on a non-negative dimensioned quantity
    becomes ``X <= 0.0`` (and ``!=`` becomes ``>``), replacing only the
    operator token between the recorded columns.

``{"op": "wrap-sorted", "line", "col", "end_col"}``
    from R015 — a float reduction folding a provably unordered iterable
    (set literal/call, dict view) has the iterable wrapped in
    ``sorted(...)``: two pure insertions at the recorded span, refused
    unless the span still parses as a set or call expression.

The loop is **fix → rewrite → re-lint**, repeated until a pass applies
nothing (bounded by ``max_passes``): idempotence is not argued from the
edits, it is *checked* by linting the rewritten tree, and any hint the
re-lint still produces is refused rather than re-applied blindly.

``--fix-suppress`` additionally scaffolds inline suppressions
(``# reprolint: disable=RNNN -- TODO: justify``) for the findings that
survive the fix passes; the TODO must be edited before review, which is
the point — suppression is a decision, not an autofix.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import run_lint
from .findings import Finding

#: Fix/suppress passes before we give up on convergence.  Two is enough
#: for every legal chain (a rename can expose one new finding at most);
#: the third pass exists to *verify* the second applied nothing.
MAX_PASSES = 3

SUPPRESS_TODO = "TODO: justify"


@dataclass
class FixEdit:
    """One applied (or refused) source change."""

    path: str
    line: int
    op: str  # "rename" | "zero-guard" | "suppress"
    detail: str
    applied: bool = True


@dataclass
class FixReport:
    """Outcome of one ``--fix`` invocation."""

    passes: int = 0
    edits: List[FixEdit] = field(default_factory=list)
    files_changed: Set[str] = field(default_factory=set)
    remaining: int = 0  # findings left after the final pass

    @property
    def applied(self) -> List[FixEdit]:
        return [e for e in self.edits if e.applied]

    @property
    def refused(self) -> List[FixEdit]:
        return [e for e in self.edits if not e.applied]


# ----------------------------------------------------------------------
# rename safety analysis
# ----------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _enclosing_function(tree: ast.Module, line: int) -> Optional[ast.AST]:
    """Innermost function whose body spans ``line`` (None = module level)."""
    best = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.lineno <= line <= (node.end_lineno or node.lineno):
                if best is None or node.lineno > best.lineno:
                    best = node
    return best


def _own_names(fn: ast.AST, name: str) -> Tuple[List[ast.Name], bool]:
    """``Name`` nodes for ``name`` directly in ``fn``'s scope.

    Returns ``(occurrences, crosses_scope)`` where ``crosses_scope`` is
    True when the name also appears inside a nested function or lambda —
    either a closure capture or an unrelated inner binding, and in both
    cases renaming only the outer occurrences would be wrong.
    """
    own: List[ast.Name] = []
    crosses = False

    def walk(node: ast.AST, inner: bool) -> None:
        nonlocal crosses
        for child in ast.iter_child_nodes(node):
            child_inner = inner or isinstance(child, _SCOPE_NODES)
            if isinstance(child, ast.Name) and child.id == name:
                if inner:
                    crosses = True
                else:
                    own.append(child)
            walk(child, child_inner)

    walk(fn, False)
    return own, crosses


def _rename_refusal(fn: ast.AST, name: str, to: str) -> Optional[str]:
    """Why renaming ``name`` to ``to`` inside ``fn`` is unsafe, or None."""
    args = fn.args
    params = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
    }
    if name in params:
        return "is a parameter (renaming changes the keyword API)"
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)) and name in node.names:
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            return f"is declared {kind} (binding escapes the function)"
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == to:
            return f"target name {to!r} is already in use"
        if isinstance(node, ast.arg) and node.arg == to:
            return f"target name {to!r} is already in use"
    return None


def _rename_edits(
    source: str, tree: ast.Module, finding: Finding
) -> Tuple[List[Tuple[int, int, str, str]], Optional[str]]:
    """Point edits for a rename hint, or ``([], reason)`` when refused."""
    name, to = finding.fix["name"], finding.fix["to"]
    fn = _enclosing_function(tree, finding.line)
    if fn is None:
        return [], "module-level name (an importable attribute)"
    reason = _rename_refusal(fn, name, to)
    if reason is not None:
        return [], reason
    occurrences, crosses = _own_names(fn, name)
    if crosses:
        return [], "name is also used inside a nested function or lambda"
    if not occurrences:
        return [], "no occurrences found (stale hint)"
    return [(n.lineno, n.col_offset, name, to) for n in occurrences], None


def _guard_edits(
    lines: List[str], finding: Finding
) -> Tuple[List[Tuple[int, int, str, str]], Optional[str]]:
    """Point edit for a zero-guard hint, validated against the source."""
    fix = finding.fix
    line, start, end = fix["line"], fix["start"], fix["end"]
    if not 1 <= line <= len(lines):
        return [], "line out of range (stale hint)"
    segment = lines[line - 1][start:end]
    old = segment.strip()
    if old not in ("==", "!="):
        return [], f"operator token not found (saw {segment!r})"
    col = start + segment.index(old)
    return [(line, col, old, fix["repl"])], None


def _wrap_sorted_edits(
    lines: List[str], finding: Finding
) -> Tuple[List[Tuple[int, int, str, str]], Optional[str]]:
    """Two insertion points wrapping an iterable span in ``sorted(...)``.

    Insertions carry an empty ``old`` so :func:`_apply_points` validates
    them trivially; drift protection comes from re-parsing the recorded
    span and refusing unless it is still the set/call expression the
    rule hinted at.
    """
    fix = finding.fix
    line, col, end_col = fix["line"], fix["col"], fix["end_col"]
    if not 1 <= line <= len(lines):
        return [], "line out of range (stale hint)"
    text = lines[line - 1]
    if not 0 <= col < end_col <= len(text):
        return [], "column span out of range (stale hint)"
    segment = text[col:end_col]
    try:
        expr = ast.parse(segment, mode="eval").body
    except SyntaxError:
        return [], f"span is no longer one expression (saw {segment!r})"
    if not isinstance(expr, (ast.Set, ast.SetComp, ast.Call)):
        return [], "span is no longer a set or call expression (stale hint)"
    return [
        (line, col, "", "sorted("),
        (line, end_col, "", ")"),
    ], None


def _apply_points(
    source: str, points: Sequence[Tuple[int, int, str, str]]
) -> Optional[str]:
    """Apply ``(line, col, old, new)`` replacements, descending order.

    Returns the new source, or None when any point fails to validate
    (source drifted under us) — the caller drops the whole file's batch
    for this pass and lets the re-lint produce fresh hints.
    """
    lines = source.splitlines(keepends=True)
    for line, col, old, new in sorted(points, reverse=True):
        text = lines[line - 1]
        if text[col : col + len(old)] != old:
            return None
        lines[line - 1] = text[:col] + new + text[col + len(old) :]
    return "".join(lines)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------


def _fixable(findings: Sequence[Finding]) -> List[Finding]:
    return [f for f in findings if f.fix]


def _one_pass(
    paths: Sequence[Path],
    root: Path,
    rules,
    baseline_factory,
    report: FixReport,
) -> int:
    """Run one lint + fix cycle; returns the number of edits applied."""
    result = run_lint(paths, root=root, rules=rules, baseline=baseline_factory())
    report.remaining = len(result.findings)
    by_path: Dict[str, List[Finding]] = {}
    for finding in _fixable(result.findings):
        by_path.setdefault(finding.path, []).append(finding)

    applied = 0
    for relpath, findings in sorted(by_path.items()):
        target = root / relpath
        source = target.read_text(encoding="utf-8")
        lines = source.splitlines()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # R000 territory; nothing to fix mechanically

        points: List[Tuple[int, int, str, str]] = []
        claimed: Set[Tuple[int, int]] = set()
        for finding in findings:
            op = finding.fix.get("op")
            if op == "rename":
                batch, refusal = _rename_edits(source, tree, finding)
                detail = (
                    f"{finding.fix['name']} -> {finding.fix['to']}"
                    if refusal is None
                    else f"{finding.fix['name']}: {refusal}"
                )
            elif op == "zero-guard":
                batch, refusal = _guard_edits(lines, finding)
                detail = (
                    f"'{batch[0][2]}' -> '{batch[0][3]}'"
                    if refusal is None
                    else refusal
                )
            elif op == "wrap-sorted":
                batch, refusal = _wrap_sorted_edits(lines, finding)
                detail = (
                    "wrapped the iterable in sorted(...)"
                    if refusal is None
                    else refusal
                )
            else:
                batch, refusal = [], f"unknown fix op {op!r}"
                detail = refusal
            if refusal is None and any(
                (ln, col) in claimed for ln, col, _, _ in batch
            ):
                refusal = "overlaps an earlier fix this pass"
                detail = refusal
                batch = []
            edit = FixEdit(
                path=relpath, line=finding.line, op=op or "?",
                detail=detail, applied=refusal is None,
            )
            if edit.applied or edit not in report.edits:
                report.edits.append(edit)  # refusals repeat every pass
            if refusal is None:
                claimed.update((ln, col) for ln, col, _, _ in batch)
                points.extend(batch)

        if not points:
            continue
        new_source = _apply_points(source, points)
        if new_source is None or new_source == source:
            continue
        try:
            ast.parse(new_source)  # never write a file we broke
        except SyntaxError:
            for edit in report.edits:
                if edit.path == relpath and edit.applied:
                    edit.applied = False
                    edit.detail += " (reverted: rewrite did not parse)"
            continue
        target.write_text(new_source, encoding="utf-8")
        report.files_changed.add(relpath)
        applied += len(points)
    return applied


def _suppress_pass(
    paths: Sequence[Path], root: Path, rules, baseline_factory, report: FixReport
) -> int:
    """Scaffold inline suppressions for whatever the fix passes left."""
    result = run_lint(paths, root=root, rules=rules, baseline=baseline_factory())
    by_path: Dict[str, List[Finding]] = {}
    for finding in result.findings:
        by_path.setdefault(finding.path, []).append(finding)

    added = 0
    for relpath, findings in sorted(by_path.items()):
        target = root / relpath
        source = target.read_text(encoding="utf-8")
        lines = source.splitlines(keepends=True)
        per_line: Dict[int, Set[str]] = {}
        for finding in findings:
            per_line.setdefault(finding.line, set()).add(finding.rule)
        changed = False
        for line in sorted(per_line, reverse=True):
            if not 1 <= line <= len(lines):
                continue
            text = lines[line - 1]
            if "# reprolint:" in text:
                continue  # existing directive governs this line
            body = text.rstrip("\n")
            eol = text[len(body):]
            ids = ",".join(sorted(per_line[line]))
            lines[line - 1] = (
                f"{body}  # reprolint: disable={ids} -- {SUPPRESS_TODO}{eol}"
            )
            report.edits.append(FixEdit(
                path=relpath, line=line, op="suppress",
                detail=f"disable={ids}",
            ))
            changed = True
            added += 1
        if changed:
            target.write_text("".join(lines), encoding="utf-8")
            report.files_changed.add(relpath)
    return added


def fix_paths(
    paths: Sequence[Path],
    root: Path,
    rules,
    baseline_factory=None,
    suppress: bool = False,
    max_passes: int = MAX_PASSES,
) -> FixReport:
    """Apply autofixes under ``root`` until a pass changes nothing.

    ``baseline_factory`` builds a fresh :class:`~.baseline.Baseline` per
    lint pass (claiming is stateful, so one instance cannot be reused):
    baselined findings were a decision to *keep* the code as-is, so the
    fixer never rewrites or suppresses them — only *new* findings are
    candidates.
    """
    baseline_factory = baseline_factory or (lambda: None)
    report = FixReport()
    for _ in range(max_passes):
        report.passes += 1
        if _one_pass(paths, root, rules, baseline_factory, report) == 0:
            break
    if suppress:
        _suppress_pass(paths, root, rules, baseline_factory, report)
    result = run_lint(paths, root=root, rules=rules, baseline=baseline_factory())
    report.remaining = len(result.findings)
    return report
