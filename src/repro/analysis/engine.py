"""Lint driver: discovery, parallel parsing, caching, rule dispatch.

The engine is deliberately import-free of the hot simulation paths — it
touches only ``ast``, ``pathlib``, ``concurrent.futures`` and the
sibling lint modules, so ``make lint`` never pays (or perturbs) a model
import.

A run has four phases:

1. **Read + hash** every discovered file (thread pool — this is I/O).
2. **Cache gate** — with a cache attached and *nothing* changed (same
   engine fingerprint, same file set and hashes, same out-of-tree
   dependencies), every finding replays from the cache and no parsing
   happens at all.  Otherwise:
3. **Parse** all files (thread pool), build the
   :class:`~.project.ProjectGraph` when any selected rule needs it, and
   dispatch: file-scope rules run per module (replaying per-file from
   the cache when that file's hash is unchanged), project-scope rules
   run once over the graph.
4. **Reconcile** against the baseline (:mod:`.baseline`).

Suppressions
------------
A finding on line ``L`` is suppressed when line ``L`` — or a
comment-only line ``L-1`` directly above it — carries::

    # reprolint: disable=R001            -- optional reason
    # reprolint: disable=R001,R005       -- multiple rules
    # reprolint: disable=all

``# reprolint: skip-file`` anywhere in a module skips its findings
entirely (the module still contributes symbols to the project graph).
Suppressions are for *point* exemptions whose justification fits on the
line; findings grandfathered wholesale live in the baseline file
instead (:mod:`.baseline`).
"""

from __future__ import annotations

import ast
import os
import re
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineEntry
from .findings import Finding, Severity
from .registry import Rule, get_rules

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--.*)?$"
)
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file\b")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")

#: Rule id used for findings the engine itself emits (unparseable file).
PARSE_RULE = "R000"


@dataclass
class ModuleUnit:
    """One parsed module plus its per-line suppression table."""

    path: Path  # absolute
    relpath: str  # posix, relative to the lint root
    source: str
    lines: List[str]
    tree: ast.Module
    suppressions: Dict[int, set]  # 1-based line -> {"R001", ...} or {"all"}

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Inline suppression on the line or a comment line just above."""
        for cand in (line, line - 1):
            rules = self.suppressions.get(cand)
            if not rules:
                continue
            if cand == line - 1 and not _COMMENT_ONLY_RE.match(
                self.lines[cand - 1] if 1 <= cand <= len(self.lines) else ""
            ):
                continue  # trailing suppression governs its own line only
            if "all" in rules or rule_id in rules:
                return True
        return False

    @property
    def skip_file(self) -> bool:
        return bool(_SKIP_FILE_RE.search(self.source))


@dataclass
class LintContext:
    """Shared state rules may consult (root, file cache, project graph)."""

    root: Path
    project: Optional["object"] = None  # ProjectGraph when a rule needs it
    escape: Optional["object"] = None  # EscapeAnalysis when a rule needs it
    summaries: Optional["object"] = None  # SummaryIndex when a rule needs it
    units: Dict[str, ModuleUnit] = field(default_factory=dict)  # by relpath
    _file_cache: Dict[str, Optional[str]] = field(default_factory=dict)

    def read_project_file(self, relpath: str) -> Optional[str]:
        """Text of ``root/relpath``, or None when absent (cached).

        Every file read this way is recorded as an out-of-tree cache
        dependency: project-scope findings replay only while its
        content is unchanged.
        """
        if relpath not in self._file_cache:
            p = self.root / relpath
            self._file_cache[relpath] = (
                p.read_text(encoding="utf-8") if p.is_file() else None
            )
        return self._file_cache[relpath]

    def unit_for(self, relpath: str) -> Optional[ModuleUnit]:
        return self.units.get(relpath)

    def dep_hashes(self) -> Dict[str, Optional[str]]:
        from .cache import content_hash

        return {
            rel: (content_hash(text.encode("utf-8")) if text is not None else None)
            for rel, text in self._file_cache.items()
        }


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]  # new (non-baselined, non-suppressed), sorted
    baselined: List[Finding]  # matched a baseline entry
    stale_baseline: List[BaselineEntry]  # baseline entries nothing matched
    files_checked: int = 0
    cache_mode: str = "off"  # "off" | "cold" | "partial" | "full"
    files_replayed: int = 0  # files whose findings came from the cache
    #: In ``--changed`` runs: the relpaths whose findings were kept
    #: (changed files plus their import-graph closure); None otherwise.
    lint_scope: Optional[set] = None
    #: Fixpoint statistics of the summary build (sccs, replayed,
    #: recomputed, fixpoint_s) when a selected rule needed summaries.
    summary_stats: Optional[dict] = None

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors or (strict and (self.findings or self.stale_baseline)):
            return 1
        return 0


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, set]:
    table: Dict[int, set] = {}
    for i, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        toks = {t for t in m.group(1).replace(" ", "").split(",") if t}
        table[i] = {"all" if t.lower() == "all" else t.upper() for t in toks}
    return table


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_unit(path: Path, root: Path, source: Optional[str] = None) -> ModuleUnit:
    """Parse one file into a :class:`ModuleUnit`.

    Raises :class:`SyntaxError` when the file does not parse; the caller
    converts that into an ``R000`` finding.
    """
    if source is None:
        source = path.read_text(encoding="utf-8")
    relpath = _relpath(path, root)
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    return ModuleUnit(
        path=path,
        relpath=relpath,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=_parse_suppressions(lines),
    )


def discover(paths: Iterable[Path]) -> List[Path]:
    """All ``*.py`` files under ``paths`` (files pass through), sorted."""
    out: set = set()
    for p in paths:
        p = Path(p)
        if p.is_file():
            out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if "__pycache__" in f.parts:
                    continue
                if any(part.startswith(".") for part in f.parts[len(p.parts):]):
                    continue
                out.add(f)
        else:
            raise FileNotFoundError(f"lint target does not exist: {p}")
    return sorted(out)


def _default_jobs() -> int:
    return min(8, (os.cpu_count() or 2))


def _read_all(
    files: Sequence[Path], jobs: int
) -> List[Tuple[Path, bytes, Optional[OSError]]]:
    def read_one(path: Path):
        try:
            return (path, path.read_bytes(), None)
        except OSError as exc:  # surfaced as FileNotFoundError by discover
            return (path, b"", exc)

    if jobs <= 1 or len(files) < 4:
        return [read_one(p) for p in files]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(read_one, files))


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    cache_path: Optional[Path] = None,
    jobs: Optional[int] = None,
    cache_write: bool = True,
    changed_scope: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint ``paths`` and reconcile findings against ``baseline``.

    ``cache_path`` attaches the incremental cache (:mod:`.cache`);
    ``jobs`` bounds the read/parse thread pool (default: cpu count,
    capped at 8).  ``cache_write=False`` replays from a warm cache but
    never persists the run — used by ``--changed``, whose partial view
    must not overwrite a whole-tree snapshot.

    ``changed_scope`` is the ``--changed`` contract: ``paths`` still
    name the *whole* tree (so the project graph and summaries see every
    module), and the scope — a set of changed relpaths — filters what
    is *reported*: file-scope findings only in changed files, project-
    scope findings in the changed files plus every module connected to
    them through the import graph.  That closes the v3 gap where graph
    rules were simply dropped and cross-file regressions rode in
    silently on an edit-loop lint.
    """
    from .cache import (
        LintCache,
        content_hash,
        decode_findings,
        encode_findings,
        engine_fingerprint,
        project_fingerprint,
    )

    root = Path(root) if root is not None else Path.cwd()
    rules = list(rules) if rules is not None else get_rules()
    jobs = jobs if jobs is not None else _default_jobs()
    need_graph = any(r.needs_graph for r in rules)
    file_rules = [r for r in rules if r.scope == "file" and not r.uses_project]
    graph_file_rules = [r for r in rules if r.scope == "file" and r.uses_project]
    project_rules = [r for r in rules if r.scope == "project"]

    files = discover(paths)
    reads = _read_all(files, jobs)
    rels = {path: _relpath(path, root) for path, _, _ in reads}
    hashes = {rels[path]: content_hash(data) for path, data, _ in reads}

    cache = LintCache.load(cache_path) if cache_path is not None else None
    fingerprint = engine_fingerprint([r.id for r in rules]) if cache else ""
    proj_fp = project_fingerprint(hashes) if cache else ""
    cache_usable = cache is not None and cache.loaded and (
        cache.fingerprint == fingerprint
    )

    # ------------------------------------------------------------------
    # fully-warm path: nothing changed anywhere -> replay, no parsing
    # (a --changed run always parses: the scope filter needs the graph)
    # ------------------------------------------------------------------
    if (
        changed_scope is None
        and cache_usable
        and cache.project_fp == proj_fp
        and set(cache.files) == set(hashes)
        and all(cache.files[r].get("hash") == h for r, h in hashes.items())
        and cache.deps_unchanged(root)
    ):
        raw: List[Finding] = []
        for entry in cache.files.values():
            raw.extend(decode_findings(entry.get("file_findings", [])))
            raw.extend(decode_findings(entry.get("project_findings", [])))
        return _finish(
            raw, baseline, len(files), cache_mode="full",
            files_replayed=len(files),
        )

    # ------------------------------------------------------------------
    # parse (parallel), build graph, dispatch rules
    # ------------------------------------------------------------------
    parse_errors: Dict[str, Finding] = {}

    def parse_one(item):
        path, data, err = item
        relpath = rels[path]
        if err is not None:
            raise FileNotFoundError(f"lint target does not exist: {path}")
        try:
            return load_unit(path, root, source=data.decode("utf-8"))
        except SyntaxError as exc:
            parse_errors[relpath] = Finding(
                rule=PARSE_RULE,
                severity=Severity.ERROR,
                path=relpath,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
            return None

    if jobs <= 1 or len(reads) < 4:
        units = [parse_one(item) for item in reads]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            units = list(pool.map(parse_one, reads))
    units = [u for u in units if u is not None]

    ctx = LintContext(root=root, units={u.relpath: u for u in units})
    if need_graph:
        from .project import ProjectGraph

        ctx.project = ProjectGraph.build(units)
        if any(getattr(r, "needs_escape", False) for r in rules):
            from .escape import EscapeAnalysis

            ctx.escape = EscapeAnalysis.build(ctx.project)
        if any(getattr(r, "needs_summaries", False) for r in rules):
            from .summaries import SummaryIndex

            module_hashes = {
                syms.module: hashes[relpath]
                for relpath, syms in ctx.project.by_relpath.items()
                if relpath in hashes
            }
            ctx.summaries = SummaryIndex.build(
                ctx.project,
                module_hashes,
                cached=cache.summaries if cache_usable else None,
            )

    per_file: Dict[str, dict] = {
        relpath: {"hash": hashes[relpath], "file_findings": [], "project_findings": []}
        for relpath in hashes
    }
    for relpath, finding in parse_errors.items():
        per_file[relpath]["file_findings"].append(finding)

    files_replayed = 0
    for unit in units:
        if unit.skip_file:
            continue
        entry = (
            cache.file_entry(unit.relpath, hashes[unit.relpath])
            if cache_usable
            else None
        )
        if entry is not None:
            per_file[unit.relpath]["file_findings"] = decode_findings(
                entry.get("file_findings", [])
            )
            files_replayed += 1
        else:
            for rule in file_rules:
                if not rule.applies(unit.relpath):
                    continue
                for finding in rule.check(unit, ctx):
                    if not unit.is_suppressed(finding.rule, finding.line):
                        per_file[unit.relpath]["file_findings"].append(finding)
        for rule in graph_file_rules:
            if not rule.applies(unit.relpath):
                continue
            for finding in rule.check(unit, ctx):
                if not unit.is_suppressed(finding.rule, finding.line):
                    per_file[unit.relpath]["project_findings"].append(finding)

    for rule in project_rules:
        for finding in rule.check_project(ctx):
            unit = ctx.units.get(finding.path)
            if unit is not None and (
                unit.skip_file
                or unit.is_suppressed(finding.rule, finding.line)
            ):
                continue
            if finding.path in per_file:
                per_file[finding.path]["project_findings"].append(finding)

    lint_scope = None
    if changed_scope is not None:
        changed = set(changed_scope)
        lint_scope = changed | _affected_closure(ctx.project, changed)
        wide_ids = {r.id for r in rules if r.needs_graph} | {PARSE_RULE}
        for relpath, entry in per_file.items():
            if relpath not in changed:
                entry["file_findings"] = [
                    f for f in entry["file_findings"] if f.rule in wide_ids
                ] if relpath in lint_scope else []
            if relpath not in lint_scope:
                entry["project_findings"] = []
        if baseline is not None:
            # Entries for files outside the scope were never candidates
            # this run; dropping them keeps "stale" meaningful.
            baseline = Baseline([
                e for e in baseline.entries
                if e.path in changed
                or (e.path in lint_scope and e.rule in wide_ids)
            ])

    raw = []
    for entry in per_file.values():
        raw.extend(entry["file_findings"])
        raw.extend(entry["project_findings"])

    # A scoped run holds filtered findings — never a whole-tree snapshot.
    if cache is not None and cache_write and changed_scope is None:
        cache.save(
            fingerprint,
            proj_fp,
            ctx.dep_hashes(),
            {
                relpath: {
                    "hash": entry["hash"],
                    "file_findings": encode_findings(entry["file_findings"]),
                    "project_findings": encode_findings(
                        entry["project_findings"]
                    ),
                }
                for relpath, entry in per_file.items()
            },
            summaries=(
                ctx.summaries.scc_payload if ctx.summaries is not None else None
            ),
        )

    mode = "off" if cache is None else ("partial" if files_replayed else "cold")
    result = _finish(
        raw, baseline, len(files), cache_mode=mode, files_replayed=files_replayed
    )
    result.lint_scope = lint_scope
    if ctx.summaries is not None:
        result.summary_stats = dict(ctx.summaries.stats)
    return result


def _affected_closure(graph, changed_rels: set) -> set:
    """Relpaths whose project-scope findings an edit can move.

    Undirected reachability over the import graph from the changed
    modules: a changed callee shifts facts in its importers (reverse
    edges), and a changed caller can newly reach sinks in what it
    imports (forward edges).  Modules in neither closure cannot observe
    the edit through any graph rule, so their findings are stable and
    stay filtered.
    """
    if graph is None:
        return set(changed_rels)
    reverse: Dict[str, set] = {}
    for src, targets in graph.import_edges.items():
        for target in targets:
            reverse.setdefault(target, set()).add(src)
    mod_of = {rel: syms.module for rel, syms in graph.by_relpath.items()}
    frontier = [mod_of[rel] for rel in changed_rels if rel in mod_of]
    seen = set(frontier)
    while frontier:
        module = frontier.pop()
        for neighbour in (
            *graph.import_edges.get(module, ()),
            *reverse.get(module, ()),
        ):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return {
        rel for rel, syms in graph.by_relpath.items() if syms.module in seen
    }


def _finish(
    raw: List[Finding],
    baseline: Optional[Baseline],
    files_checked: int,
    cache_mode: str,
    files_replayed: int,
) -> LintResult:
    raw = sorted(raw, key=lambda f: f.sort_key)
    baseline = baseline or Baseline()
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in raw:
        if baseline.claim(finding):
            matched.append(_rebuild_baselined(finding))
        else:
            new.append(finding)
    return LintResult(
        findings=new,
        baselined=matched,
        stale_baseline=baseline.unclaimed(),
        files_checked=files_checked,
        cache_mode=cache_mode,
        files_replayed=files_replayed,
    )


def _rebuild_baselined(finding: Finding) -> Finding:
    return Finding(
        rule=finding.rule,
        severity=finding.severity,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        message=finding.message,
        code=finding.code,
        baselined=True,
        fix=finding.fix,
    )
