"""Lint driver: file discovery, parsing, suppressions, rule dispatch.

The engine is deliberately import-free of the hot simulation paths — it
touches only ``ast``, ``pathlib`` and the sibling lint modules, so
``make lint`` never pays (or perturbs) a model import.

Suppressions
------------
A finding on line ``L`` is suppressed when line ``L`` — or a
comment-only line ``L-1`` directly above it — carries::

    # reprolint: disable=R001            -- optional reason
    # reprolint: disable=R001,R005       -- multiple rules
    # reprolint: disable=all

``# reprolint: skip-file`` anywhere in a module skips it entirely.
Suppressions are for *point* exemptions whose justification fits on the
line; findings grandfathered wholesale live in the baseline file
instead (:mod:`.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .baseline import Baseline, BaselineEntry
from .findings import Finding, Severity
from .registry import Rule, get_rules

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--.*)?$"
)
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file\b")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")

#: Rule id used for findings the engine itself emits (unparseable file).
PARSE_RULE = "R000"


@dataclass
class ModuleUnit:
    """One parsed module plus its per-line suppression table."""

    path: Path  # absolute
    relpath: str  # posix, relative to the lint root
    source: str
    lines: List[str]
    tree: ast.Module
    suppressions: Dict[int, set]  # 1-based line -> {"R001", ...} or {"all"}

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Inline suppression on the line or a comment line just above."""
        for cand in (line, line - 1):
            rules = self.suppressions.get(cand)
            if not rules:
                continue
            if cand == line - 1 and not _COMMENT_ONLY_RE.match(
                self.lines[cand - 1] if 1 <= cand <= len(self.lines) else ""
            ):
                continue  # trailing suppression governs its own line only
            if "all" in rules or rule_id in rules:
                return True
        return False


@dataclass
class LintContext:
    """Shared state rules may consult (project root, file cache)."""

    root: Path
    _file_cache: Dict[str, Optional[str]] = field(default_factory=dict)

    def read_project_file(self, relpath: str) -> Optional[str]:
        """Text of ``root/relpath``, or None when absent (cached)."""
        if relpath not in self._file_cache:
            p = self.root / relpath
            self._file_cache[relpath] = (
                p.read_text(encoding="utf-8") if p.is_file() else None
            )
        return self._file_cache[relpath]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]  # new (non-baselined, non-suppressed), sorted
    baselined: List[Finding]  # matched a baseline entry
    stale_baseline: List[BaselineEntry]  # baseline entries nothing matched
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors or (strict and (self.findings or self.stale_baseline)):
            return 1
        return 0


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, set]:
    table: Dict[int, set] = {}
    for i, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        toks = {t for t in m.group(1).replace(" ", "").split(",") if t}
        table[i] = {"all" if t.lower() == "all" else t.upper() for t in toks}
    return table


def load_unit(path: Path, root: Path) -> ModuleUnit:
    """Parse one file into a :class:`ModuleUnit`.

    Raises :class:`SyntaxError` when the file does not parse; the caller
    converts that into an ``R000`` finding.
    """
    source = path.read_text(encoding="utf-8")
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    return ModuleUnit(
        path=path,
        relpath=relpath,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=_parse_suppressions(lines),
    )


def discover(paths: Iterable[Path]) -> List[Path]:
    """All ``*.py`` files under ``paths`` (files pass through), sorted."""
    out: set = set()
    for p in paths:
        p = Path(p)
        if p.is_file():
            out.add(p)
        elif p.is_dir():
            for f in p.rglob("*.py"):
                if "__pycache__" in f.parts:
                    continue
                if any(part.startswith(".") for part in f.parts[len(p.parts):]):
                    continue
                out.add(f)
        else:
            raise FileNotFoundError(f"lint target does not exist: {p}")
    return sorted(out)


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``paths`` and reconcile findings against ``baseline``."""
    root = Path(root) if root is not None else Path.cwd()
    rules = list(rules) if rules is not None else get_rules()
    ctx = LintContext(root=root)
    raw: List[Finding] = []
    files = discover(paths)
    for path in files:
        try:
            unit = load_unit(path, root)
        except SyntaxError as exc:
            relpath = path.as_posix()
            raw.append(
                Finding(
                    rule=PARSE_RULE,
                    severity=Severity.ERROR,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        if _SKIP_FILE_RE.search(unit.source):
            continue
        for rule in rules:
            if not rule.applies(unit.relpath):
                continue
            for finding in rule.check(unit, ctx):
                if not unit.is_suppressed(finding.rule, finding.line):
                    raw.append(finding)
    raw.sort(key=lambda f: f.sort_key)

    baseline = baseline or Baseline()
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in raw:
        if baseline.claim(finding):
            matched.append(_rebuild_baselined(finding))
        else:
            new.append(finding)
    return LintResult(
        findings=new,
        baselined=matched,
        stale_baseline=baseline.unclaimed(),
        files_checked=len(files),
    )


def _rebuild_baselined(finding: Finding) -> Finding:
    return Finding(
        rule=finding.rule,
        severity=finding.severity,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        message=finding.message,
        code=finding.code,
        baselined=True,
    )
