"""R012 — submitted job payloads must be stateless (pure in (seed, cell)).

The bit-identity contract of the parallel layer (DESIGN.md §12) is that
every worker job is a pure function of its submitted arguments: the
parent pre-draws randomness, ships ``(seed, cell)`` payloads, and
gathers in submission order.  Any process-scoped input — a wall-clock
read, the unseeded global RNG, a seed derived from a mutated module
global or from OS entropy — silently breaks that at ``jobs=N`` while
passing every serial test.

On top of the escape analysis' worker-reachable closure this rule
checks, in *any* package (worker reachability is the scope):

* reads of the banned clocks (R001's table — ``time.time``,
  ``datetime.now``, ...; ``time.perf_counter`` stays allowed as a wall
  timer);
* the stdlib ``random`` module and unseeded ``np.random`` globals,
  resolved through the module's import table;
* seed derivations (:func:`~..dataflow.analyze_entropy`): a
  ``default_rng``/``SeedSequence`` call consuming process entropy
  (clocks, pids, mutated module globals) or no seed at all — payload
  arguments, including container-unpacked ones (``args[0]``), are
  clean.

Inside the deterministic packages a clock/RNG hit may double with R001;
that is intentional — the inline disable must then answer for both the
determinism *and* the process-safety exemption.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..dataflow import analyze_entropy
from ..escape import walk_shallow
from ..findings import Finding
from ..registry import Rule, register
from ..symbols import dotted_name
from .r001_randomness import ALLOWED_NP_RANDOM, BANNED_CLOCK_ATTRS


@register
class StatelessJobs(Rule):
    id = "R012"
    title = "worker job payloads are pure functions of their arguments"
    scope = "project"
    needs_escape = True
    description = (
        "Every function reachable from a WorkerPool.submit/run_ordered/"
        "map or executor-initializer boundary must be a pure function "
        "of its submitted arguments: no banned wall-clock reads, no "
        "stdlib random / unseeded np.random globals, and no seed "
        "derivations (default_rng/SeedSequence) consuming clocks, pids, "
        "mutated module globals or OS entropy. Applies wherever the "
        "code is worker-reachable, beyond R001's package scope."
    )
    help_uri = "DESIGN.md#13-process-safety-escape-analysis"

    def check_project(self, ctx) -> Iterator[Finding]:
        escape = getattr(ctx, "escape", None)
        graph = ctx.project
        if escape is None or graph is None:
            return
        written_memo = {}
        for key in sorted(escape.worker_reachable):
            info = graph.functions.get(key)
            syms = graph.modules.get(key[0]) if info else None
            if info is None or syms is None:
                continue
            unit = ctx.units.get(syms.relpath)
            if unit is None:
                continue
            entry = escape.entry_name(key)
            where = f"{info.qualname}() is worker-reachable (entry {entry})"

            for node in walk_shallow(info.node):
                if isinstance(node, ast.Attribute):
                    dotted = dotted_name(node)
                    if dotted in BANNED_CLOCK_ATTRS:
                        yield self.finding(
                            unit, node.lineno, node.col_offset,
                            f"{where} but reads the wall clock via "
                            f"{dotted}(); results now differ run to run "
                            "— thread times through the job payload",
                        )
                        continue
                    head, _, attr = dotted.rpartition(".")
                    resolved = syms.imports.get(head.split(".")[0], head)
                    if resolved in ("numpy.random", "np.random") or head in (
                        "np.random", "numpy.random"
                    ):
                        if attr not in ALLOWED_NP_RANDOM:
                            yield self.finding(
                                unit, node.lineno, node.col_offset,
                                f"{where} but uses the unseeded global "
                                f"stream {dotted}; derive a Generator "
                                "from the job's seed argument",
                            )
                elif isinstance(node, ast.Call):
                    dotted = dotted_name(node.func)
                    head = dotted.split(".", 1)[0]
                    if head and syms.imports.get(head) == "random":
                        yield self.finding(
                            unit, node.lineno, node.col_offset,
                            f"{where} but calls stdlib {dotted}(); the "
                            "global random state is per-process — use a "
                            "Generator derived from the job's seed",
                        )

            module = info.module
            if module not in written_memo:
                written_memo[module] = escape.written_globals(module)
            for issue in analyze_entropy(
                info.node,
                process_globals=written_memo[module],
                clock_attrs=BANNED_CLOCK_ATTRS,
            ):
                yield self.finding(
                    unit, issue.lineno, issue.col,
                    f"{where} but {issue.source}; workers must seed only "
                    "from the submitted payload",
                )
