"""R002 — module-level memo caches must be registered for clearing.

``clear_shared_caches()`` (``repro.core.two_level``) is the single
switch tests and long-lived processes use to drop every cross-instance
cache.  A module-level memo dict or ``lru_cache`` that is *not* wired
through ``register_cache_clearer`` silently survives that call, which
is exactly how the planner-cache staleness bugs of PR 1 started.  The
rule finds module-level cache-named dict bindings and ``lru_cache``
functions in planner/kernel code and demands each one be cleared by a
registered clearer (or by ``clear_shared_caches`` itself in the module
that owns the registry).

Pool/executor singletons are caches too (of provisioned worker
processes and shared-memory segments): a module-level binding whose
name says pool/executor and whose value is a lazy slot (``None``), a
registry dict, or a pool-factory call must be *referenced* by a
registered clearer — reference rather than ``.clear()`` because pool
teardown is ``close()``/``shutdown()``/reassignment, not dict
clearing.  ``repro.execution.pool`` is the motivating case: a warm
shared executor that survived ``clear_shared_caches()`` would keep
serving stale warm state to every later test.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from ..findings import Finding
from ..registry import Rule, in_packages, register

CACHE_PACKAGES = ("core", "execution", "market", "mpi")

_CACHE_NAME_RE = re.compile(r"(?i)cache|memo")
_POOL_NAME_RE = re.compile(r"(?i)pool|executor")
_DICT_FACTORIES = frozenset(
    {"dict", "OrderedDict", "defaultdict",
     "WeakKeyDictionary", "WeakValueDictionary"}
)
_LRU_DECORATORS = frozenset({"lru_cache", "cache"})


def _is_poolish_value(node: ast.AST) -> bool:
    """A value that can hold live pool state at module level: a lazy
    ``None`` slot, a registry dict, or a pool-factory call.  Plain
    scalar constants (sizes, pids) are configuration, not state."""
    if isinstance(node, ast.Constant):
        return node.value is None
    if _is_dictish(node):
        return True
    return isinstance(node, ast.Call) and bool(
        _POOL_NAME_RE.search(_call_name(node))
    )


def _call_name(node: ast.Call) -> str:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return ""


def _is_dictish(node: ast.AST) -> bool:
    if isinstance(node, ast.Dict):
        return True
    return isinstance(node, ast.Call) and _call_name(node) in _DICT_FACTORIES


def _is_lru_decorated(fn: ast.AST) -> bool:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for deco in fn.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name in _LRU_DECORATORS:
            return True
    return False


@register
class RegisteredCaches(Rule):
    id = "R002"
    title = "module-level memo caches wired through register_cache_clearer"
    description = (
        "A module-level dict whose name says cache/memo (or an lru_cache "
        "function) in core/execution/market/mpi must be cleared by a "
        "function passed to repro.core.two_level.register_cache_clearer, "
        "so clear_shared_caches() stays the complete switch. The module "
        "defining clear_shared_caches itself is the registry owner. "
        "Module-level pool/executor singletons (None slots, registry "
        "dicts, pool-factory calls) must likewise be referenced by a "
        "registered clearer — warm workers and shm segments are shared "
        "caches of provisioned state."
    )

    def applies(self, relpath: str) -> bool:
        return in_packages(relpath, CACHE_PACKAGES)

    def check(self, unit, ctx) -> Iterator[Finding]:
        caches: List[ast.AST] = []  # (assign node, name) pairs below
        cache_names: List[str] = []
        pools: List[ast.AST] = []  # pool/executor singleton bindings
        pool_names: List[str] = []
        lru_fns: List[ast.FunctionDef] = []
        registered: Set[str] = set()  # names passed to register_cache_clearer
        registered_attrs: Set[tuple] = set()  # (base, attr) e.g. (f, cache_clear)
        clearers: dict = {}  # function name -> set of names it .clear()s
        referenced: dict = {}  # function name -> every Name it mentions
        owns_registry = False

        for node in unit.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_dictish(value) and _CACHE_NAME_RE.search(target.id):
                        caches.append(node)
                        cache_names.append(target.id)
                    elif _POOL_NAME_RE.search(target.id) and _is_poolish_value(
                        value
                    ):
                        pools.append(node)
                        pool_names.append(target.id)
            elif isinstance(node, ast.FunctionDef):
                if node.name == "clear_shared_caches":
                    owns_registry = True
                if _is_lru_decorated(node):
                    lru_fns.append(node)
                cleared = set()
                names = set()
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "clear"
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        cleared.add(sub.func.value.id)
                clearers[node.name] = cleared
                referenced[node.name] = names
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if _call_name(call) == "register_cache_clearer":
                    for arg in call.args:
                        if isinstance(arg, ast.Name):
                            registered.add(arg.id)
                        elif isinstance(arg, ast.Attribute) and isinstance(
                            arg.value, ast.Name
                        ):
                            registered_attrs.add((arg.value.id, arg.attr))

        # A clearer counts when it is registered, or when the module owns
        # the registry and clear_shared_caches calls it / clears directly.
        effective = set(registered)
        if owns_registry:
            effective.add("clear_shared_caches")
        cleared_names: Set[str] = set()
        touched_names: Set[str] = set()
        for fn_name in effective:
            cleared_names.update(clearers.get(fn_name, set()))
            touched_names.update(referenced.get(fn_name, set()))

        for node, name in zip(caches, cache_names):
            if name not in cleared_names:
                yield self.finding(
                    unit, node.lineno, node.col_offset,
                    f"module-level cache {name!r} is not cleared by any "
                    "clearer registered via register_cache_clearer; "
                    "clear_shared_caches() would miss it",
                )
        for node, name in zip(pools, pool_names):
            # Teardown for a pool is close()/shutdown()/reassignment, so
            # any reference inside a registered clearer satisfies the
            # rule (a dict .clear() reference counts too, via Name).
            if name not in touched_names:
                yield self.finding(
                    unit, node.lineno, node.col_offset,
                    f"module-level pool/executor singleton {name!r} is "
                    "not touched by any clearer registered via "
                    "register_cache_clearer; clear_shared_caches() would "
                    "leave its workers/segments warm",
                )
        for fn in lru_fns:
            if (fn.name, "cache_clear") not in registered_attrs:
                yield self.finding(
                    unit, fn.lineno, fn.col_offset,
                    f"lru_cache on {fn.name!r} is a module-level memo; "
                    f"register_cache_clearer({fn.name}.cache_clear) so "
                    "clear_shared_caches() drops it",
                )
