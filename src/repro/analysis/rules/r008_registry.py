"""R008 — every experiment module must be registered with the runner.

``python -m repro.experiments.runner`` is the single entry point the
paper sweep, CI and the results JSON all go through; an experiment
module that exists on disk but is missing from the runner's
``_all_experiments`` registry silently drops out of every sweep — the
tables keep printing, nothing fails, and a figure quietly stops being
reproduced.  (This is the registry-hygiene item ROADMAP queued for
reprolint after PR 4.)

Project-graph rule: a module under ``repro/experiments/`` whose
filename marks it as a runnable experiment (``figN_*``, ``table*``,
``ext_*``, ``param_*``, ``accuracy``, ``reduction``) must be invoked —
through its import alias — somewhere in the body of the function named
``_all_experiments`` of a module that defines one.  Infrastructure
modules (``common``, ``env``, ``runner`` itself, ``__init__``) are not
experiments and are exempt.
"""

from __future__ import annotations

import re
from typing import Iterator, Set

from ..findings import Finding
from ..registry import Rule, register

REGISTRY_FUNCTION = "_all_experiments"

#: Filenames under repro/experiments/ that are runnable experiments.
_EXPERIMENT_FILE_RE = re.compile(
    r"(^|/)repro/experiments/"
    r"(fig\d+\w*|table\d+\w*|ext_\w+|param_\w+|accuracy|reduction)\.py$"
)


@register
class ExperimentRegistry(Rule):
    id = "R008"
    title = "experiment modules registered in the runner's _all_experiments"
    scope = "project"
    description = (
        "Whole-program rule: every repro/experiments/ module whose name "
        "marks it as a runnable experiment (figN_*, tableN_*, ext_*, "
        "param_*, accuracy, reduction) must be called through its alias "
        "inside the _all_experiments registry function, so no figure "
        "can silently drop out of the sweep. common/env/runner are "
        "infrastructure and exempt."
    )

    def check_project(self, ctx) -> Iterator[Finding]:
        graph = ctx.project
        if graph is None:
            return

        registries = [
            (syms, syms.functions[REGISTRY_FUNCTION])
            for syms in graph.modules.values()
            if REGISTRY_FUNCTION in syms.functions
        ]
        experiment_mods = [
            syms
            for syms in graph.modules.values()
            if _EXPERIMENT_FILE_RE.search(syms.relpath)
        ]
        if not registries or not experiment_mods:
            return  # no registry (or no experiments) in the linted set

        registered: Set[str] = set()
        for runner_syms, registry_fn in registries:
            for call in registry_fn.calls:
                absolute = runner_syms.resolve_local(call.name)
                if absolute is None:
                    continue
                mod = graph._containing_module(absolute)
                if mod is not None:
                    registered.add(mod)

        for syms in experiment_mods:
            if syms.module in registered:
                continue
            yield self.finding(
                syms.unit, 1, 0,
                f"experiment module {syms.module} is never invoked from "
                f"{REGISTRY_FUNCTION}(); register it so sweeps, CI and "
                "the results JSON include it",
            )
