"""Rule modules register themselves on import (see ..registry).

Adding a rule: create ``rNNN_name.py`` beside these, decorate the class
with ``@register``, and import the module here.
"""

from . import (  # noqa: F401
    r001_randomness,
    r002_caches,
    r003_units,
    r004_parity,
    r005_float_eq,
    r006_exceptions,
    r007_ledger_audit,
    r008_registry,
    r009_doc_units,
    r010_worker_globals,
    r011_shm_lifecycle,
    r012_stateless_jobs,
    r013_pid_guards,
    r014_rng_lineage,
    r015_ordered_reduction,
    r016_fail_open,
)
