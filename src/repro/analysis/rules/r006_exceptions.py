"""R006 — exception policy: no bare/swallowed handlers, raise library types.

Spot-on (arXiv:2210.02589) traces several invalidated cost results to
silently swallowed fault-handling errors.  The library's contract
(``repro.errors``) is that every failure either propagates as a
``ReproError`` subtype or is handled *specifically*:

* ``except:`` is banned outright (it eats ``KeyboardInterrupt``).
* ``except Exception`` (or ``BaseException``) whose handler never
  re-raises swallows unknown failures — ledger audits downstream then
  reconcile silently-corrupt numbers.
* ``raise Exception/BaseException/RuntimeError`` hides a failure class
  applications cannot catch precisely; raise a ``repro.errors`` type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register

_GENERIC_EXCEPTIONS = frozenset({"Exception", "BaseException"})
_GENERIC_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})


def _handler_names(node: ast.AST) -> set:
    """Exception class names caught by one handler's type expression."""
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        out: set = set()
        for el in node.elts:
            out.update(_handler_names(el))
        return out
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    return set()


@register
class ExceptionPolicy(Rule):
    id = "R006"
    title = "no bare/swallowed exception handlers; raise repro.errors types"
    description = (
        "Bans bare 'except:', 'except Exception/BaseException' handlers "
        "that never re-raise (swallowed failures corrupt downstream "
        "accounting silently), and 'raise Exception/BaseException/"
        "RuntimeError' (use the repro.errors hierarchy so callers can "
        "catch precisely)."
    )

    def check(self, unit, ctx) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                        "name the exception types",
                    )
                    continue
                caught = _handler_names(node.type)
                if caught & _GENERIC_EXCEPTIONS and not any(
                    isinstance(sub, ast.Raise) for sub in ast.walk(node)
                ):
                    generic = sorted(caught & _GENERIC_EXCEPTIONS)[0]
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        f"'except {generic}' without a re-raise swallows "
                        "unknown failures; catch specific types or re-raise",
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else ""
                )
                if name in _GENERIC_RAISES:
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        f"raise {name} hides the failure class; raise a "
                        "repro.errors type (ReproError subclass)",
                    )
