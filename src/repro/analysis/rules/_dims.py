"""Lightweight dimensional inference from identifier naming conventions.

The codebase's unit discipline (``repro.units``) is carried by names:
``*_hours`` / ``*_hrs`` are hours, ``*_s`` / ``*_seconds`` are seconds,
``cost_*`` / ``*_usd`` / ``price_*`` are dollars.  This module maps an
identifier to a dimension when the name is *unambiguous* — names mixing
money and time words (``price_per_hour``) are rates and deliberately
classify as unknown, as do neutral names (``start``, ``deadline``).
Conservatism is the point: R003 only fires when **both** operands of an
addition/comparison carry confident, conflicting dimensions.
"""

from __future__ import annotations

import ast
from typing import Optional

MONEY = "dollars"
HOURS = "hours"
SECONDS = "seconds"

_MONEY_WORDS = frozenset(
    {"usd", "dollar", "dollars", "cost", "costs", "price", "prices",
     "bill", "billed", "budget", "fee", "fees"}
)
_HOURS_WORDS = frozenset({"hours", "hour", "hrs", "hr"})
_SECONDS_WORDS = frozenset({"seconds", "secs", "sec"})


def classify_name(name: str) -> Optional[str]:
    """Dimension of an identifier, or None when ambiguous/neutral."""
    words = [w for w in name.lower().strip("_").split("_") if w]
    if not words:
        return None
    dims = set()
    if _MONEY_WORDS.intersection(words):
        dims.add(MONEY)
    if _HOURS_WORDS.intersection(words):
        dims.add(HOURS)
    # Bare trailing "_s" is the seconds suffix (``wall_s``); a word that
    # merely *ends* in s (``draws``, ``times``) is not.
    if _SECONDS_WORDS.intersection(words) or words[-1] == "s":
        dims.add(SECONDS)
    if len(dims) != 1:
        return None  # rates (``price_per_hour``) and neutral names
    return dims.pop()


def infer_dim(node: ast.AST) -> Optional[str]:
    """Dimension of an expression, or None when not confidently known.

    Only name-shaped expressions are classified; calls and arithmetic
    products are unknown by design (multiplication/division is how unit
    conversions legitimately happen).
    """
    if isinstance(node, ast.Name):
        return classify_name(node.id)
    if isinstance(node, ast.Attribute):
        return classify_name(node.attr)
    if isinstance(node, ast.Subscript):
        return infer_dim(node.value)
    if isinstance(node, ast.Starred):
        return infer_dim(node.value)
    if isinstance(node, ast.UnaryOp):
        return infer_dim(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, right = infer_dim(node.left), infer_dim(node.right)
        if left is not None and left == right:
            return left
        return None
    if isinstance(node, ast.IfExp):
        body, orelse = infer_dim(node.body), infer_dim(node.orelse)
        if body is not None and body == orelse:
            return body
        return None
    return None
