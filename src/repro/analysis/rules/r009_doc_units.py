"""R009 — docstring unit declarations must match suffix conventions.

The unit discipline is carried by two channels: identifier suffixes
(checked by R003's dataflow) and prose — ``"Wall-clock duration in
hours."`` — which readers and callers trust just as much.  When the two
drift (``def transfer_hours`` documented as *seconds*), one of them is
lying, and whichever a maintainer believes, the next conversion they
write is wrong by 3600×.

The rule cross-checks, per function:

* the **return**: a unit suffix on the function name
  (``_usd``/``_hours``/``_s``…) against the unit declared by a Sphinx
  ``:returns:`` field or an ``in <unit>`` phrase in the summary line;
* each **parameter**: a unit suffix on the parameter name against its
  ``:param name:`` field.

Both sides must be confident: docstring text mentioning more than one
unit (``"dollars per hour"``, conversion helpers) classifies as
ambiguous and never fires — the same conservatism contract as R003.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..dataflow import HOURS, MONEY, SECONDS, suffix_dim
from ..findings import Finding
from ..registry import Rule, in_benchmarks, register

_WORD_DIMS = (
    (re.compile(r"\b(dollars?|usd)\b", re.I), MONEY),
    (re.compile(r"\bhours?\b|\bhrs\b", re.I), HOURS),
    (re.compile(r"\bseconds?\b|\bsecs\b", re.I), SECONDS),
)
_IN_UNIT_RE = re.compile(r"\bin\s+(us\s+)?(dollars?|usd|hours?|hrs|seconds?|secs)\b", re.I)
_FIELD_RE = re.compile(r"^\s*:(\w+)([^:]*):\s*(.*)$")


def _text_dim(text: str) -> Optional[str]:
    """The single unit a prose fragment mentions, or None if 0 or 2+."""
    dims = {dim for rx, dim in _WORD_DIMS if rx.search(text)}
    return dims.pop() if len(dims) == 1 else None


def _field_bodies(doc: str) -> dict:
    """Sphinx-style fields: ``{"returns": text, "param x": text, ...}``."""
    out: dict = {}
    key = None
    for line in doc.splitlines():
        m = _FIELD_RE.match(line)
        if m:
            name, arg = m.group(1).lower(), m.group(2).strip()
            key = f"{name} {arg}".strip()
            out[key] = m.group(3)
        elif key is not None and line.strip():
            out[key] += " " + line.strip()
        else:
            key = None
    return out


def _summary_return_dim(doc: str) -> Optional[str]:
    """Unit declared by ``in <unit>`` phrases of the summary paragraph."""
    summary = doc.split("\n\n", 1)[0]
    phrases = _IN_UNIT_RE.findall(summary)
    if not phrases:
        return None
    return _text_dim(" ".join(p[1] for p in phrases))


@register
class DocstringUnits(Rule):
    id = "R009"
    title = "docstring unit declarations agree with name-suffix conventions"
    description = (
        "Cross-checks the unit a docstring declares (a Sphinx "
        ":returns:/:param x: field, or an 'in <unit>' phrase in the "
        "summary line) against the unit the function or parameter name "
        "declares by suffix (_usd/_hours/_s). Text mentioning several "
        "units (rates, conversion helpers) is ambiguous and exempt; "
        "both sides must be confident for the rule to fire."
    )

    def applies(self, relpath: str) -> bool:
        return not in_benchmarks(relpath)

    def check(self, unit, ctx) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            doc = ast.get_docstring(node)
            if not doc:
                continue
            fields = _field_bodies(doc)

            declared = suffix_dim(node.name)
            if declared is not None:
                doc_dim = None
                for key in ("returns", "return"):
                    if key in fields:
                        doc_dim = _text_dim(fields[key])
                        break
                else:
                    doc_dim = _summary_return_dim(doc)
                if doc_dim is not None and doc_dim != declared:
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        f"{node.name}() declares {declared} by suffix but "
                        f"its docstring says it returns {doc_dim}; fix "
                        "whichever is lying",
                    )

            for arg in node.args.args + node.args.kwonlyargs:
                param_dim = suffix_dim(arg.arg)
                if param_dim is None:
                    continue
                body = fields.get(f"param {arg.arg}")
                if body is None:
                    continue
                doc_dim = _text_dim(body)
                if doc_dim is not None and doc_dim != param_dim:
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        f"parameter {arg.arg!r} of {node.name}() declares "
                        f"{param_dim} by suffix but its :param: doc says "
                        f"{doc_dim}",
                    )
