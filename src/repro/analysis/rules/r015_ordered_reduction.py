"""R015 — float reductions must not fold nondeterministically ordered iterables.

Float addition is not associative: ``sum`` over the same multiset of
floats in two different orders can differ in the last ulps, which is
exactly the class of drift the repo's bit-identity contracts
(DESIGN.md §6, §12) are built to exclude.  The order of a Python
``set`` depends on hash randomization and insertion history, and
filesystem enumeration (``os.listdir``, ``glob``, ``Path.iterdir``)
is whatever the OS returns — so a reduction folding either is a
different float from run to run while every serial test passes.

Flagged reductions: ``sum``/``np.sum``, ``functools.reduce`` and
``itertools.accumulate`` whose iterable operand is provably

* a set — literal, comprehension, ``set(...)``/``frozenset(...)``;
* a filesystem enumeration — ``os.listdir``/``scandir``,
  ``glob.glob``/``iglob``, ``Path.glob``/``rglob``/``iterdir``;
* a dict view (``.values()``/``.keys()``/``.items()``) of a *provably
  dict* receiver — insertion-ordered, so the fold silently couples the
  result to whatever order the dict happened to be built in;

either written inline or reached through a one-hop local binding
(``names = set(...); total = sum(names)``).  Wrapping the iterable in
``sorted(...)`` pins the order and clears the fact; ``list(...)`` does
not (it freezes the *current* nondeterministic order).  Where the
iterable is syntactically a set or dict view on one line, the finding
carries a ``wrap-sorted`` autofix hint for ``--fix``.

``math.fsum`` is deliberately exempt: it returns the correctly-rounded
sum of the inputs, which is order-independent — wrapping its argument
in ``sorted`` would be noise.  Everything here is confident-or-absent:
an iterable the rule cannot prove nondeterministic produces no finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..findings import Finding
from ..registry import Rule, in_benchmarks, in_packages, register

#: Packages under the bit-identity contract for accumulated floats.
ORDERED_PACKAGES = ("core", "execution", "market", "backtest")

#: Reduction leaf → index of the iterable argument.
_REDUCER_ARG = {"sum": 0, "accumulate": 0, "reduce": 1}

#: Call leaves returning set-typed values.
_SET_LEAVES = frozenset({"set", "frozenset"})

#: Call leaves enumerating the filesystem in OS order.
_FS_LEAVES = frozenset(
    {"listdir", "scandir", "glob", "iglob", "rglob", "iterdir"}
)

#: Dict-view leaves (nondeterministic only on provably-dict receivers).
_VIEW_LEAVES = frozenset({"values", "keys", "items"})


def _leaf(node: ast.expr) -> str:
    while isinstance(node, ast.Attribute):
        return node.attr
    return node.id if isinstance(node, ast.Name) else ""


def _walk_shallow(node: ast.AST):
    """Expression walk that skips lambdas and nested defs."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(
            cur, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef,
                  ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(cur))


def _own_exprs(stmt: ast.stmt) -> List[ast.AST]:
    own: List[ast.AST] = []
    for fname, value in ast.iter_fields(stmt):
        if fname in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.AST):
            own.append(value)
        elif isinstance(value, list):
            own.extend(v for v in value if isinstance(v, ast.AST))
    return own


class _ScopeScan:
    """One lexical scope: tracks nondet bindings, collects findings."""

    def __init__(self, rule: "OrderedReduction", unit) -> None:
        self.rule = rule
        self.unit = unit
        #: local name → why its value iterates nondeterministically
        self.nondet: Dict[str, str] = {}
        #: local names provably bound to a dict
        self.dictlike: Set[str] = set()
        self.findings: List[Finding] = []

    # ------------------------------------------------------------ facts
    def _reason(self, node: ast.expr) -> Optional[str]:
        """Why ``node`` iterates in nondeterministic order, or None."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set (iteration order is hash- and history-dependent)"
        if isinstance(node, ast.Name):
            return self.nondet.get(node.id)
        if not isinstance(node, ast.Call):
            return None
        leaf = _leaf(node.func)
        if leaf in _SET_LEAVES:
            return (
                f"{leaf}(...) (iteration order is hash- and "
                "history-dependent)"
            )
        if leaf in _FS_LEAVES:
            return f"{leaf}(...) (filesystem enumeration order is OS-defined)"
        if leaf in ("list", "tuple") and node.args:
            # list()/tuple() freeze the *current* nondeterministic order
            # — the fact survives; sorted() is the only launderer.
            return self._reason(node.args[0])
        if leaf in _VIEW_LEAVES and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if isinstance(recv, ast.Dict) or (
                isinstance(recv, ast.Name) and recv.id in self.dictlike
            ):
                return (
                    f".{leaf}() of a dict (the fold silently depends on "
                    "insertion order)"
                )
        return None

    @staticmethod
    def _fixable(node: ast.expr) -> bool:
        """Whether a ``wrap-sorted`` hint is safe: a one-line set or
        dict-view expression (filesystem calls may be generators a
        caller expects lazily, and multi-line spans would need
        reindenting — both refused)."""
        if getattr(node, "end_lineno", None) != node.lineno:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            leaf = _leaf(node.func)
            return leaf in _SET_LEAVES or leaf in _VIEW_LEAVES
        return False

    # ----------------------------------------------------------- checks
    def _check_call(self, call: ast.Call) -> None:
        leaf = _leaf(call.func)
        arg_idx = _REDUCER_ARG.get(leaf)
        if arg_idx is None or len(call.args) <= arg_idx:
            return
        iterable = call.args[arg_idx]
        if isinstance(iterable, ast.Starred):
            return
        why = self._reason(iterable)
        if why is None:
            return
        fix = None
        if self._fixable(iterable):
            fix = {
                "op": "wrap-sorted",
                "line": iterable.lineno,
                "col": iterable.col_offset,
                "end_col": iterable.end_col_offset,
            }
        self.findings.append(self.rule.finding(
            self.unit, call.lineno, call.col_offset,
            f"{leaf}() folds {why}; float addition is not associative — "
            "wrap the iterable in sorted(...) to pin the fold order",
            fix=fix,
        ))

    # -------------------------------------------------------- bindings
    def _bind(self, name: str, value: ast.expr) -> None:
        why = self._reason(value)
        self.nondet.pop(name, None)
        self.dictlike.discard(name)
        if why is not None:
            self.nondet[name] = why
        elif isinstance(value, (ast.Dict, ast.DictComp)):
            self.dictlike.add(name)
        elif isinstance(value, ast.Call) and _leaf(value.func) == "dict":
            self.dictlike.add(name)

    def run(self, body: List[ast.stmt]) -> "_ScopeScan":
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes are scanned on their own
            for expr in _own_exprs(stmt):
                for sub in _walk_shallow(expr):
                    if isinstance(sub, ast.Call):
                        self._check_call(sub)
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._bind(target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._bind(stmt.target.id, stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    # Mutated: whatever we proved no longer holds.
                    self.nondet.pop(stmt.target.id, None)
                    self.dictlike.discard(stmt.target.id)
            elif isinstance(stmt, ast.For):
                for sub in ast.walk(stmt.target):
                    if isinstance(sub, ast.Name):
                        self.nondet.pop(sub.id, None)
                        self.dictlike.discard(sub.id)
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    self.run(inner)
            for handler in getattr(stmt, "handlers", ()) or ():
                self.run(handler.body)
        return self


@register
class OrderedReduction(Rule):
    id = "R015"
    title = "float reductions must fold a deterministically ordered iterable"
    description = (
        "In src/repro/{core,execution,market,backtest}, sum/np.sum, "
        "functools.reduce and itertools.accumulate must not fold sets, "
        "filesystem enumerations (os.listdir, glob, Path.iterdir) or "
        "dict views of provably-dict receivers: float addition is not "
        "associative, so a hash- or OS-defined fold order changes the "
        "result in the last ulps run to run. sorted(...) pins the "
        "order and clears the finding (list(...) does not); one-line "
        "set/dict-view iterables carry a wrap-sorted autofix. "
        "math.fsum is exempt — correctly rounded, order-independent."
    )
    help_uri = "DESIGN.md#14-interprocedural-summaries"

    def applies(self, relpath: str) -> bool:
        return in_packages(relpath, ORDERED_PACKAGES) and not in_benchmarks(
            relpath
        )

    def check(self, unit, ctx) -> Iterator[Finding]:
        yield from _ScopeScan(self, unit).run(unit.tree.body).findings
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from _ScopeScan(self, unit).run(node.body).findings
            elif isinstance(node, ast.ClassDef):
                scan = _ScopeScan(self, unit)
                for stmt in node.body:
                    if not isinstance(
                        stmt,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        scan.run([stmt])
                yield from scan.findings
        return
