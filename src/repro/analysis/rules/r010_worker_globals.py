"""R010 — no worker-side writes to module globals (lost updates).

A function submitted to the :class:`~repro.execution.pool.WorkerPool`
runs in a forked/spawned child: any module global it rebinds or mutates
changes *that worker's* interpreter only and silently vanishes from the
parent's results — the classic "it worked serially" bug.  The escape
analysis (:mod:`..escape`) computes every function reachable from a
``submit``/``run_ordered``/``map``/``initializer=`` boundary; this rule
flags each module-global write inside that closure.

Two patterns are sanctioned by design:

* **the metric-snapshot merge** (PR 8): workers accumulate into
  :mod:`repro.obs` and return ``metrics.snapshot()`` for the parent to
  ``merge_snapshot`` — the rule only checks the deterministic packages
  (core/execution/market/mpi), so obs-side accumulation never fires;
* **registered shared caches**: a global referenced (transitively) by a
  clearer the module registers via ``register_cache_clearer`` is a
  declared per-process cache with a managed lifecycle — worker-side
  cache fills (kernel tables, shm attach maps) are the *point* of the
  warm pool, and ``clear_shared_caches()`` can always drop them.
"""

from __future__ import annotations

from typing import Iterator

from ..escape import registered_clearers
from ..findings import Finding
from ..registry import Rule, in_packages, register

#: Packages whose worker-side state must round-trip through returns.
CHECKED_PACKAGES = ("core", "execution", "market", "mpi")


@register
class WorkerGlobalWrites(Rule):
    id = "R010"
    title = "no worker-side writes to module globals outside registered caches"
    scope = "project"
    needs_escape = True
    description = (
        "A module global written by a function reachable from a "
        "WorkerPool.submit/run_ordered/map or executor-initializer "
        "boundary only changes the worker's interpreter; the parent "
        "never sees the update. Return the state instead (the PR-8 "
        "metric-snapshot merge pattern) or declare it a shared cache by "
        "referencing it from a register_cache_clearer-registered "
        "clearer. Checked in core/execution/market/mpi; repro.obs "
        "accumulation (merged by the parent) is out of scope by design."
    )
    help_uri = "DESIGN.md#13-process-safety-escape-analysis"

    def check_project(self, ctx) -> Iterator[Finding]:
        escape = getattr(ctx, "escape", None)
        graph = ctx.project
        if escape is None or graph is None:
            return
        for key in sorted(escape.worker_reachable):
            info = graph.functions.get(key)
            syms = graph.modules.get(key[0]) if info else None
            if info is None or syms is None:
                continue
            if not in_packages(syms.relpath, CHECKED_PACKAGES):
                continue
            unit = ctx.units.get(syms.relpath)
            if unit is None:
                continue
            clearers = registered_clearers(syms)
            if info.qualname in clearers or info.name in clearers:
                continue  # teardown itself may reset the state it owns
            sanctioned = escape.sanctioned_names(info.module)
            for write in escape.global_writes(key):
                if write.name in sanctioned:
                    continue
                verb = (
                    "rebinds" if write.kind == "rebind" else "mutates"
                )
                yield self.finding(
                    unit, write.lineno, write.col,
                    f"{info.qualname}() {verb} module global "
                    f"{write.name!r} but is worker-reachable (submitted "
                    f"entry {escape.entry_name(key)}); the write never "
                    "propagates back to the parent — return the state, "
                    "or register a clearer that manages it",
                )
