"""R011 — shared-memory attach/create must reach a close/unlink path.

``multiprocessing.shared_memory`` has no garbage-collected safety net:
a created block that never reaches ``unlink()`` leaks ``/dev/shm``
pages for the machine's lifetime, an attached block that never reaches
``close()`` pins dead pool pages in every long-lived worker, and —
bpo-38119 — CPython registers every *attach* with the resource tracker
as if the attacher owned the block, so a worker that does not
explicitly unregister will unlink the owner's live blocks at exit.

The rule checks each module that creates or attaches blocks:

* every ``SharedMemory(create=True, ...)`` binding must reach both a
  ``.close()`` and a ``.unlink()`` somewhere in the module — directly
  on the binding, or through the containers it is stored into
  (``self._blocks.append(shm)`` transfers the obligation to
  ``_blocks``, satisfied by ``for shm in self._blocks: shm.close();
  shm.unlink()``);
* every ``SharedMemory(name=...)`` attach must likewise reach a
  ``.close()``, and its enclosing function must carry the bpo-38119
  guard: a comparison against the handle's tracker pid plus a
  ``resource_tracker.unregister`` call;
* every directly-constructed ``SharedTracePool`` must reach a
  ``.close()`` the same way (its close both closes and unlinks).

Resolution is name-based and module-wide, in keeping with the
under-approximation contract: a binding that escapes through a
``return`` or into an unrecognised call is assumed handled by the
caller and produces no finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..escape import walk_shallow
from ..findings import Finding
from ..registry import Rule, in_packages, register
from ..symbols import dotted_name

SHM_PACKAGES = ("core", "execution", "market", "mpi")

#: Constructor leaves that produce a parent-owned segment set.
_POOL_CTORS = frozenset({"SharedTracePool"})

_TRACKER_NAME_RE = re.compile(r"(?i)tracker")


@dataclass
class _Creation:
    """One SharedMemory/pool construction bound to a local name."""

    node: ast.Call
    kind: str  # "create" | "attach" | "pool"
    binding: str
    fn: ast.AST  # enclosing function (or module) node


@dataclass
class _FnFacts:
    """Name-level release facts of one function."""

    aliases: Dict[str, Set[str]] = field(default_factory=dict)
    closed: Set[str] = field(default_factory=set)
    unlinked: Set[str] = field(default_factory=set)


def _shm_kind(call: ast.Call) -> Optional[str]:
    leaf = dotted_name(call.func).rsplit(".", 1)[-1]
    if leaf in _POOL_CTORS:
        return "pool"
    if leaf != "SharedMemory":
        return None
    for kw in call.keywords:
        if kw.arg == "create":
            truthy = isinstance(kw.value, ast.Constant) and bool(kw.value.value)
            return "create" if truthy else "attach"
    return "attach"


def _base_names(expr: ast.AST) -> Set[str]:
    """Every Name id and Attribute leaf mentioned in an expression."""
    out: Set[str] = set()
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _expand(name: str, aliases: Dict[str, Set[str]]) -> Set[str]:
    """``name`` plus everything it aliases, transitively (bounded)."""
    out: Set[str] = set()
    frontier = [name]
    while frontier:
        cand = frontier.pop()
        if cand in out:
            continue
        out.add(cand)
        frontier.extend(aliases.get(cand, ()))
    return out


def _function_facts(fn_node: ast.AST) -> _FnFacts:
    facts = _FnFacts()
    for node in walk_shallow(fn_node):
        if isinstance(node, ast.Assign):
            bases = _base_names(node.value)
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        facts.aliases.setdefault(sub.id, set()).update(bases)
        elif isinstance(node, ast.For):
            bases = _base_names(node.iter)
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    facts.aliases.setdefault(sub.id, set()).update(bases)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bases = _base_names(node.context_expr)
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    facts.aliases.setdefault(sub.id, set()).update(bases)
    for node in walk_shallow(fn_node):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ("close", "unlink", "shutdown"):
            continue
        receiver = node.func.value
        names: Set[str] = set()
        if isinstance(receiver, ast.Name):
            names = _expand(receiver.id, facts.aliases)
        elif isinstance(receiver, ast.Attribute):
            names = {receiver.attr} | _base_names(receiver)
        if node.func.attr == "unlink":
            facts.unlinked.update(names)
        else:
            facts.closed.update(names)
    return facts


def _functions_and_module(tree: ast.Module):
    """Every function node, plus the module body as a pseudo-function."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _creations_in(fn_node: ast.AST) -> Iterator[_Creation]:
    for node in walk_shallow(fn_node):
        if not isinstance(node, ast.Assign):
            continue
        for call in ast.walk(node.value):
            if not isinstance(call, ast.Call):
                continue
            kind = _shm_kind(call)
            if kind is None:
                continue
            binding = ""
            target = node.targets[0]
            if isinstance(target, ast.Name):
                binding = target.id
            elif isinstance(target, ast.Attribute):
                binding = target.attr
            if binding:
                yield _Creation(call, kind, binding, fn_node)


def _obligations(
    creation: _Creation, fn_node: ast.AST
) -> Optional[Set[str]]:
    """Names responsible for releasing the creation, or None if the
    binding escapes (returned / passed onward) and the caller owns it."""
    obligations = {creation.binding}
    for _ in range(8):  # fixpoint over container transfers
        grew = False
        for node in walk_shallow(fn_node):
            if isinstance(node, ast.Return) and node.value is not None:
                if _base_names(node.value) & obligations:
                    return None
            elif isinstance(node, ast.Call):
                fn_name = dotted_name(node.func)
                leaf = fn_name.rsplit(".", 1)[-1]
                arg_names: Set[str] = set()
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        arg_names.add(arg.id)
                if not (arg_names & obligations):
                    continue
                if leaf in ("append", "add", "insert", "setdefault") and (
                    isinstance(node.func, ast.Attribute)
                ):
                    receiver = _base_names(node.func.value)
                    if not receiver <= obligations:
                        obligations |= receiver
                        grew = True
                else:
                    return None  # handed to an unknown callee
            elif isinstance(node, ast.Assign):
                value_names: Set[str] = set()
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        value_names.add(sub.id)
                if not (value_names & obligations):
                    continue
                for target in node.targets:
                    bases = _base_names(target)
                    if not bases <= obligations:
                        obligations |= bases
                        grew = True
        if not grew:
            break
    return obligations


def _has_tracker_guard(fn_node: ast.AST) -> bool:
    has_compare = False
    has_unregister = False
    for node in walk_shallow(fn_node):
        if isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            for side in sides:
                if any(
                    _TRACKER_NAME_RE.search(n) for n in _base_names(side)
                ):
                    has_compare = True
        elif isinstance(node, ast.Call):
            if dotted_name(node.func).rsplit(".", 1)[-1] == "unregister":
                has_unregister = True
    return has_compare and has_unregister


@register
class ShmLifecycle(Rule):
    id = "R011"
    title = "shared-memory attach/create paired with close/unlink"
    description = (
        "Every SharedMemory(create=True) binding must reach both "
        ".close() and .unlink() somewhere in its module (directly or "
        "through the container it is stored into); every "
        "SharedMemory(name=...) attach must reach .close() and its "
        "enclosing function must carry the bpo-38119 guard (a "
        "tracker-pid comparison plus resource_tracker.unregister), or "
        "workers unlink the owner's live blocks at exit; a directly "
        "constructed SharedTracePool must reach .close(). Bindings "
        "that escape via return are the caller's responsibility."
    )
    help_uri = "DESIGN.md#13-process-safety-escape-analysis"

    def applies(self, relpath: str) -> bool:
        return in_packages(relpath, SHM_PACKAGES)

    def check(self, unit, ctx) -> Iterator[Finding]:
        fns = list(_functions_and_module(unit.tree))
        creations: List[_Creation] = []
        closed: Set[str] = set()
        unlinked: Set[str] = set()
        for fn in fns:
            creations.extend(_creations_in(fn))
            facts = _function_facts(fn)
            closed |= facts.closed
            unlinked |= facts.unlinked
        for creation in creations:
            obligations = _obligations(creation, creation.fn)
            if obligations is None:
                continue
            line, col = creation.node.lineno, creation.node.col_offset
            if not (obligations & closed):
                what = {
                    "create": "created SharedMemory block",
                    "attach": "attached SharedMemory block",
                    "pool": "SharedTracePool",
                }[creation.kind]
                yield self.finding(
                    unit, line, col,
                    f"{what} bound to {creation.binding!r} never reaches "
                    "a .close(); long-lived processes pin its pages "
                    "forever",
                )
            elif creation.kind == "create" and not (obligations & unlinked):
                yield self.finding(
                    unit, line, col,
                    f"SharedMemory block bound to {creation.binding!r} is "
                    "closed but never .unlink()ed; /dev/shm leaks the "
                    "segment for the machine's lifetime",
                )
            if creation.kind == "attach" and not _has_tracker_guard(
                creation.fn
            ):
                yield self.finding(
                    unit, line, col,
                    "SharedMemory attach without the bpo-38119 guard: "
                    "compare the owner's tracker pid and call "
                    "resource_tracker.unregister, or this process will "
                    "unlink the owner's live blocks at exit",
                )
