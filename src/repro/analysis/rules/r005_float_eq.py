"""R005 — no bare float equality.

``==``/``!=`` against a float literal, or between two dollar-valued
expressions, is the signature of a tolerance bug: totals that are
*mathematically* equal drift apart in the last ulp as soon as a
summation order changes, which is exactly what the ledger audits exist
to catch with explicit tolerances.  Exact float comparison is only
legitimate when the value is a *sentinel* (``granularity_hours == 0.0``
means continuous billing) or a *parity assertion* (the audit layer's
"never launched ⇒ billed exactly $0"); those are suppressed inline or
grandfathered in the baseline with a documented reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..dataflow import MONEY, infer_dim
from ..findings import Finding
from ..registry import Rule, register


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _zero_guard_fix(node: ast.Compare, op, lhs, rhs):
    """Autofix hint for the one mechanically-safe shape: ``X ==/!= 0.0``.

    Cost, hours and seconds quantities are non-negative by construction,
    so ``X == 0.0`` means "no X" and is robustly ``X <= 0.0``, while
    ``X != 0.0`` is ``X > 0.0``.  Only the canonical single-comparison
    form with the literal on the right and everything on one line
    qualifies; anything else keeps a hint-free finding.
    """
    if len(node.ops) != 1:
        return None
    if not (
        isinstance(rhs, ast.Constant)
        and isinstance(rhs.value, float)
        # reprolint: disable=R005 -- matching the literal token 0.0 itself
        and rhs.value == 0.0
    ):
        return None
    if infer_dim(lhs) is None:
        return None  # sign unknown: <=/> would not be equivalent
    if not (lhs.end_lineno == rhs.lineno == node.lineno):
        return None
    return {
        "op": "zero-guard",
        "line": node.lineno,
        "start": lhs.end_col_offset,
        "end": rhs.col_offset,
        "repl": "<=" if isinstance(op, ast.Eq) else ">",
    }


@register
class FloatEquality(Rule):
    id = "R005"
    title = "no ==/!= against float literals or between dollar totals"
    description = (
        "Flags ==/!= where an operand is a float literal, or where both "
        "operands are confidently dollar-dimensioned (cost totals). Use "
        "math.isclose or an explicit tolerance; exact sentinel checks "
        "and parity assertions must be suppressed inline or baselined "
        "with a documented reason."
    )

    def applies(self, relpath: str) -> bool:
        return "tests/" not in relpath and not relpath.startswith("tests")

    def check(self, unit, ctx) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(lhs) or _is_float_literal(rhs):
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        "exact ==/!= against a float literal; use a "
                        "tolerance, or document the exact sentinel and "
                        "suppress/baseline",
                        fix=_zero_guard_fix(node, op, lhs, rhs),
                    )
                elif (
                    infer_dim(lhs) == MONEY and infer_dim(rhs) == MONEY
                ):
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        "exact ==/!= between dollar totals; summation-order "
                        "drift makes this flaky — compare with a tolerance",
                    )
