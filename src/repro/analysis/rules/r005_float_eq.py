"""R005 — no bare float equality.

``==``/``!=`` against a float literal, or between two dollar-valued
expressions, is the signature of a tolerance bug: totals that are
*mathematically* equal drift apart in the last ulp as soon as a
summation order changes, which is exactly what the ledger audits exist
to catch with explicit tolerances.  Exact float comparison is only
legitimate when the value is a *sentinel* (``granularity_hours == 0.0``
means continuous billing) or a *parity assertion* (the audit layer's
"never launched ⇒ billed exactly $0"); those are suppressed inline or
grandfathered in the baseline with a documented reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register
from ._dims import MONEY, infer_dim


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEquality(Rule):
    id = "R005"
    title = "no ==/!= against float literals or between dollar totals"
    description = (
        "Flags ==/!= where an operand is a float literal, or where both "
        "operands are confidently dollar-dimensioned (cost totals). Use "
        "math.isclose or an explicit tolerance; exact sentinel checks "
        "and parity assertions must be suppressed inline or baselined "
        "with a documented reason."
    )

    def applies(self, relpath: str) -> bool:
        return "tests/" not in relpath and not relpath.startswith("tests")

    def check(self, unit, ctx) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(lhs) or _is_float_literal(rhs):
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        "exact ==/!= against a float literal; use a "
                        "tolerance, or document the exact sentinel and "
                        "suppress/baseline",
                    )
                elif (
                    infer_dim(lhs) == MONEY and infer_dim(rhs) == MONEY
                ):
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        "exact ==/!= between dollar totals; summation-order "
                        "drift makes this flaky — compare with a tolerance",
                    )
