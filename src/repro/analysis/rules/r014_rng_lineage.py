"""R014 — rng seed lineage: every generator descends from an explicit seed.

The bit-identity contracts (DESIGN.md §6–§8, §12) require every random
stream in the reproduction to be derivable from the experiment's root
seed: ``sim.rng.derive_seed`` hashes ``(root_seed, name)`` and the
registry hands out named ``Generator`` streams from it.  R001 bans the
unseeded *APIs* (stdlib ``random``, ``np.random`` globals) and R012
checks worker-reachable code; this rule closes the remaining lineage
gaps anywhere in the seeded packages:

* **naked derivations** — ``default_rng()`` / ``SeedSequence()`` with
  no argument draw OS entropy, which no replay can reproduce;
* **entropy-fed seeds** — a seed argument provably derived from process
  state (clocks, pids, ``os.urandom``; :class:`~..dataflow.
  EntropyTaint`), *through any number of call hops*: the summary
  fixpoint records which callee parameters transitively reach a
  ``default_rng``/``SeedSequence`` sink and whether a callee's return
  value carries entropy, so ``make_gen(seed=stamp())`` fires even when
  both the sink and the entropy live in other functions;
* **entropy in instance state** — a field assigned from process state
  in one method (``self._salt = time.monotonic()``) taints seed
  derivations reading it in *any* method, via the per-class field facts;
* **module-level generator state** — ``_RNG = default_rng(...)`` at
  module scope is a hidden stream shared by every importer: consumption
  order (imports, threads, call interleavings) becomes part of the
  seed lineage, so generators must live in function/instance scope and
  be threaded explicitly (the ``sim.rng`` registry is the sanctioned
  home for shared streams).

Inside worker-reachable code a hit may double with R012; as with
R001/R012, that is intentional — one inline disable must answer for
both contracts.  All non-module findings keep the conservative
confident-or-absent contract: unresolvable calls contribute nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..dataflow import EntropyTaint, SEED_SINK_LEAVES, analyze_entropy
from ..findings import Finding
from ..registry import Rule, in_benchmarks, in_packages, register

#: Packages whose random streams must descend from the root seed.  The
#: backtest harness and the rng plumbing itself join R001's set —
#: a lineage break in ``sim.rng`` would poison every consumer.
SEEDED_PACKAGES = (
    "core", "execution", "market", "backtest", "sim", "experiments"
)

_REMEDY = (
    "every stream must descend from the experiment's root seed "
    "(sim.rng.derive_seed / RngRegistry)"
)


def _call_leaf(node: ast.Call) -> str:
    fn = node.func
    while isinstance(fn, ast.Attribute):
        return fn.attr
    return fn.id if isinstance(fn, ast.Name) else ""


@register
class RngSeedLineage(Rule):
    id = "R014"
    title = "random generators must descend from an explicit root seed"
    scope = "project"
    needs_summaries = True
    description = (
        "In src/repro/{core,execution,market,backtest,sim,experiments}, "
        "every np.random.Generator must have explicit seed lineage: "
        "default_rng()/SeedSequence() with no seed (OS entropy), seeds "
        "derived from process state (clocks, pids, os.urandom) — "
        "tracked through arbitrarily deep call chains and through "
        "instance fields via the interprocedural summary fixpoint — "
        "and module-level generator state (a hidden stream shared by "
        "every importer) are all flagged."
    )
    help_uri = "DESIGN.md#14-interprocedural-summaries"

    def check_project(self, ctx) -> Iterator[Finding]:
        graph = ctx.project
        summaries = ctx.summaries
        if graph is None:
            return
        for relpath in sorted(graph.by_relpath):
            if not in_packages(relpath, SEEDED_PACKAGES) or in_benchmarks(
                relpath
            ):
                continue
            unit = ctx.units.get(relpath)
            if unit is None:
                continue
            syms = graph.by_relpath[relpath]

            yield from self._module_state(unit)

            # Module-scope derivations (rare, but a naked default_rng()
            # at import time is the worst offender).
            module_taint = EntropyTaint()
            module_taint.run(unit.tree.body)
            for issue in module_taint.issues:
                yield self.finding(
                    unit, issue.lineno, issue.col,
                    f"at module scope, {issue.source}; {_REMEDY}",
                )

            for info in sorted(
                syms.functions.values(), key=lambda i: i.qualname
            ):
                facts = (
                    summaries.class_facts_for(info)
                    if summaries is not None
                    else None
                )
                issues = analyze_entropy(
                    info.node,
                    call_resolver=(
                        summaries.entropy_resolver(info)
                        if summaries is not None
                        else None
                    ),
                    sink_param_resolver=(
                        summaries.sink_resolver(info)
                        if summaries is not None
                        else None
                    ),
                    tainted_fields=(
                        facts.entropy_fields
                        if facts is not None
                        else frozenset()
                    ),
                )
                for issue in issues:
                    yield self.finding(
                        unit, issue.lineno, issue.col,
                        f"in {info.qualname}(), {issue.source}; {_REMEDY}",
                    )

    def _module_state(self, unit) -> Iterator[Finding]:
        """Module-level ``X = default_rng(...)`` / ``SeedSequence(...)``."""
        for stmt in unit.tree.body:
            value: ast.expr = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is None:
                continue
            calls: List[ast.Call] = [
                sub for sub in ast.walk(value)
                if isinstance(sub, ast.Call)
                and _call_leaf(sub) in SEED_SINK_LEAVES
            ]
            for call in calls:
                yield self.finding(
                    unit, call.lineno, call.col_offset,
                    f"module-level {_call_leaf(call)}(...) is a hidden "
                    "stream shared by every importer — consumption order "
                    "becomes part of the seed lineage; construct "
                    "generators in function or instance scope and thread "
                    "them explicitly",
                )
