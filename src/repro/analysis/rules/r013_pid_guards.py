"""R013 — pool/shm singleton reads go through a pid-stamp guard.

A module-level executor, pool registry or shm slot survives ``fork()``
into every child process — but the *resources* it names (worker
processes, file descriptors, tracker registrations) belong to the
parent.  A child that reads the inherited slot and treats it as its own
will join the parent's workers, double-close its segments, or serve the
parent's warm state as if it were local.  The repo's convention
(``WorkerPool.shared``, ``shared_trace_handle``) is a pid stamp: every
read of the singleton happens behind an ``os.getpid()`` comparison
against the recorded owner pid, and a mismatch re-initialises instead
of reusing.

This rule generalises R002's clearer requirement from *lifecycle* to
*access*: any function that reads a module-level pool/executor
singleton (the same name/value heuristics as R002) must contain both a
``getpid()`` call and a pid-named comparison — unless the function is
teardown, i.e. a clearer registered via ``register_cache_clearer`` (or
one it delegates to), which may touch the slot unguarded because
closing an inherited reference is itself pid-guarded at the resource.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from ..escape import clearer_function_names, walk_shallow
from ..findings import Finding
from ..registry import Rule, in_packages, register
from ..symbols import dotted_name, extract_symbols
from .r002_caches import _POOL_NAME_RE, _is_poolish_value

POOL_PACKAGES = ("core", "execution", "market", "mpi")

_PID_NAME_RE = re.compile(r"(?i)pid")


def _module_singletons(tree: ast.Module) -> Set[str]:
    """Module-level pool/executor singleton names (R002's heuristics)."""
    out: Set[str] = set()
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _POOL_NAME_RE.search(target.id) and _is_poolish_value(value):
                out.add(target.id)
    return out


def _has_pid_guard(fn_node: ast.AST) -> bool:
    """A ``getpid()`` call plus a pid-named comparison, both present."""
    has_getpid = False
    has_compare = False
    for node in walk_shallow(fn_node):
        if isinstance(node, ast.Call):
            if dotted_name(node.func).rsplit(".", 1)[-1] == "getpid":
                has_getpid = True
        elif isinstance(node, ast.Compare):
            for side in (node.left, *node.comparators):
                for sub in ast.walk(side):
                    name = ""
                    if isinstance(sub, ast.Name):
                        name = sub.id
                    elif isinstance(sub, ast.Attribute):
                        name = sub.attr
                    if name and _PID_NAME_RE.search(name):
                        has_compare = True
    return has_getpid and has_compare


@register
class PidGuardedSingletons(Rule):
    id = "R013"
    title = "module pool/shm singletons read behind a pid-stamp check"
    description = (
        "A function reading a module-level pool/executor singleton "
        "(name says pool/executor, value is a None slot, registry dict "
        "or pool-factory call) must contain an os.getpid() call and a "
        "pid-named comparison, so a forked child re-initialises instead "
        "of adopting the parent's workers/segments. Registered clearers "
        "(and functions they delegate to) are teardown and exempt."
    )
    help_uri = "DESIGN.md#13-process-safety-escape-analysis"

    def applies(self, relpath: str) -> bool:
        return in_packages(relpath, POOL_PACKAGES)

    def check(self, unit, ctx) -> Iterator[Finding]:
        singletons = _module_singletons(unit.tree)
        if not singletons:
            return
        syms = extract_symbols(unit)
        exempt = clearer_function_names(syms)
        for info in syms.functions.values():
            if info.qualname in exempt or info.name in exempt:
                continue
            reads = []
            for node in walk_shallow(info.node):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in singletons
                ):
                    reads.append(node)
            if not reads or _has_pid_guard(info.node):
                continue
            reported: Set[str] = set()
            for node in reads:
                if node.id in reported:
                    continue
                reported.add(node.id)
                yield self.finding(
                    unit, node.lineno, node.col_offset,
                    f"{info.qualname}() reads module singleton "
                    f"{node.id!r} without a pid guard; after fork() the "
                    "slot names the parent's resources — stamp the "
                    "owner pid (os.getpid()) and compare before reuse",
                )
