"""R003 — units discipline via dataflow over naming conventions.

The two cost-accounting drifts fixed in PR 2 were both
dollars-vs-hours confusions that type annotations (everything is
``float``) could never catch.  v1 of this rule compared the *suffixes*
of the two operands of every addition/comparison; v2 runs the
intraprocedural dataflow of :mod:`..dataflow` instead, so the dimension
of a neutral name is learned from what was assigned to it and the
dimension of a call is resolved through the project graph (callee name
suffix, or the callee's own returns).  That catches the drift the
suffix pass provably misses::

    def total(cost_usd, runtime_hours):
        extra = runtime_hours        # 'extra' learns hours
        return cost_usd + extra      # v1 silent, v2 flags

Multiplication and division stay exempt — that is how rates and
conversions legitimately work — and every fact is either confident or
absent, so rates (``price_per_hour``) and unresolved calls never fire.
Assignments that *contradict* the target's own suffix are reported once
at the assignment (and carry a rename autofix hint for ``--fix``)
instead of cascading at every later use.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..dataflow import (
    ScopeAnalyzer,
    analyze_scope,
    default_call_resolver,
    infer_return_dim,
    suffix_dim,
)
from ..findings import Finding
from ..registry import Rule, in_benchmarks, register


def _graph_resolver(graph, caller_info, memo: Dict[tuple, Optional[str]]):
    """One-hop fallback resolver (kept for summary-less invocations)."""

    def resolve(name: str) -> Optional[str]:
        callee = None
        if graph is not None and caller_info is not None:
            callee = graph.resolve_call(caller_info, name)
        if callee is None:
            return default_call_resolver(name)
        if callee.key not in memo:
            memo[callee.key] = None  # recursion guard: in-progress = unknown
            memo[callee.key] = infer_return_dim(callee.node)
        return memo[callee.key]

    return resolve


def _graph_param_resolver(graph, caller_info):
    """Parameter-name resolver: carries caller facts into the callee's
    signature (the ``mix-arg`` check).  Unresolvable calls yield None —
    the graph's under-approximation contract means a missing edge can
    only miss findings, never invent them."""

    def resolve(name: str) -> Optional[Tuple[str, ...]]:
        if graph is None or caller_info is None:
            return None
        callee = graph.resolve_call(caller_info, name)
        if callee is None:
            return None
        return tuple(a.arg for a in callee.node.args.args)

    return resolve


@register
class UnitsDiscipline(Rule):
    id = "R003"
    title = "no additions/comparisons mixing dollars, hours and seconds"
    uses_project = True  # callee return dims come from the project graph
    needs_summaries = True  # v4: dims flow through arbitrarily deep chains
    description = (
        "Dataflow dimensional analysis over naming conventions "
        "(_usd/cost_ dollars, _hours hours, _s/_seconds seconds): "
        "dimensions propagate through assignments, augmented "
        "assignments, returns, call results (resolved through the "
        "interprocedural summary fixpoint, so facts cross arbitrarily "
        "deep call chains) and instance fields (per-class self.x facts "
        "seeded by __init__), and +, -, comparisons and += whose "
        "operands confidently disagree are flagged, as are functions "
        "and variables whose unit-suffixed name conflicts with their "
        "value, and call arguments whose dimension contradicts the "
        "callee parameter they bind to. Rates like price_per_hour "
        "classify as unknown and never fire."
    )

    def applies(self, relpath: str) -> bool:
        return not in_benchmarks(relpath)

    def check(self, unit, ctx) -> Iterator[Finding]:
        graph = ctx.project
        syms = graph.by_relpath.get(unit.relpath) if graph is not None else None
        by_node: Dict[int, object] = {}
        if syms is not None:
            for info in syms.functions.values():
                by_node[id(info.node)] = info
        memo: Dict[tuple, Optional[str]] = {}

        # Module-level statements (run() skips nested defs/classes).
        yield from self._emit(
            unit,
            analyze_scope(unit.tree.body, resolver=default_call_resolver),
        )

        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._emit(
                    unit,
                    analyze_scope(node.body, resolver=default_call_resolver),
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = by_node.get(id(node))
                summaries = ctx.summaries
                self_env = self_containers = None
                if summaries is not None and info is not None:
                    resolver = summaries.dim_resolver(info)
                    facts = summaries.class_facts_for(info)
                    if facts is not None and info.is_method:
                        self_env = {
                            f"self.{f}": dim
                            for f, dim in facts.fields_dim.items()
                        }
                        self_containers = {
                            f"self.{f}": elems
                            for f, elems in facts.field_containers.items()
                        }
                else:
                    resolver = _graph_resolver(graph, info, memo)
                params = tuple(a.arg for a in node.args.args)
                yield from self._emit(
                    unit,
                    analyze_scope(
                        node.body,
                        params=params,
                        resolver=resolver,
                        declared_return=suffix_dim(node.name),
                        fn_name=node.name,
                        param_resolver=_graph_param_resolver(graph, info),
                        self_env=self_env,
                        self_containers=self_containers,
                    ),
                )

    def _emit(self, unit, analysis: ScopeAnalyzer) -> Iterator[Finding]:
        for issue in analysis.issues:
            yield self.finding(
                unit, issue.lineno, issue.col, issue.message, fix=issue.fix
            )
