"""R003 — units discipline over identifier suffix conventions.

The two cost-accounting drifts fixed in PR 2 were both
dollars-vs-hours confusions that type annotations (everything is
``float``) could never catch.  This rule runs the lightweight
dimensional pass of :mod:`._dims` over every addition, subtraction and
comparison: when *both* operands carry a confident dimension
(``_usd``/``cost_`` dollars, ``_hours`` hours, ``_s``/``_seconds``
seconds) and the dimensions differ, adding or comparing them is
meaningless and almost certainly a bug.  Multiplication and division
are exempt — that is how rates and conversions legitimately work — and
a function whose *name* declares a unit suffix must not return an
expression of a conflicting dimension.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..registry import Rule, register
from ._dims import HOURS, MONEY, SECONDS, infer_dim

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: Function-name suffixes that pin the return dimension.
_RETURN_SUFFIXES = {
    "_usd": MONEY,
    "_dollars": MONEY,
    "_cost": MONEY,
    "_hours": HOURS,
    "_hrs": HOURS,
    "_s": SECONDS,
    "_seconds": SECONDS,
}


def _return_dim(func_name: str) -> Optional[str]:
    for suffix, dim in _RETURN_SUFFIXES.items():
        if func_name.endswith(suffix):
            return dim
    return None


@register
class UnitsDiscipline(Rule):
    id = "R003"
    title = "no additions/comparisons mixing dollars, hours and seconds"
    description = (
        "Infers dimensions from naming conventions (_usd/cost_ dollars, "
        "_hours hours, _s/_seconds seconds) and flags +, - and "
        "comparisons whose operands confidently disagree, plus functions "
        "whose unit-suffixed name conflicts with what they return. "
        "Rates like price_per_hour classify as unknown and never fire."
    )

    def check(self, unit, ctx) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = infer_dim(node.left)
                right = infer_dim(node.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        f"'{op}' mixes {left} and {right}; convert through "
                        "repro.units before combining",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _COMPARE_OPS):
                        continue
                    left = infer_dim(lhs)
                    right = infer_dim(rhs)
                    if left is not None and right is not None and left != right:
                        yield self.finding(
                            unit, node.lineno, node.col_offset,
                            f"comparison mixes {left} and {right}; one side "
                            "needs a repro.units conversion",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declared = _return_dim(node.name)
                if declared is None:
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Return) and sub.value is not None:
                        got = infer_dim(sub.value)
                        if got is not None and got != declared:
                            yield self.finding(
                                unit, sub.lineno, sub.col_offset,
                                f"{node.name}() declares {declared} by suffix "
                                f"but returns a {got}-dimensioned expression",
                            )
