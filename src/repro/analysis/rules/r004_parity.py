"""R004 — every vectorized kernel declares its scalar oracle + parity test.

The kernel layer's hard contract (DESIGN.md §8) is bit-identity with
the scalar code it replaces.  That contract is only as good as its
coverage: a vectorized function with no declared scalar reference and
no parity test is an unverified rewrite.  Each kernel module therefore
carries a module-level ``KERNEL_ORACLES`` dict literal mapping every
public vectorized function to the dotted path of its scalar reference,
and every mapped function must be exercised by name in
``tests/test_batch_parity.py``.  Non-kernel helpers (cache plumbing)
opt out with an inline ``# reprolint: disable=R004`` and a reason.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..findings import Finding
from ..registry import Rule, register

#: Modules bound by the kernel/oracle pairing contract.
KERNEL_MODULES = (
    "repro/core/grid_eval.py",
    "repro/execution/kernels.py",
    "repro/execution/batch_replay.py",
    "repro/market/correlated.py",
)

PARITY_TEST_FILE = "tests/test_batch_parity.py"

_DOTTED_RE = re.compile(r"^[A-Za-z_][\w]*(\.[A-Za-z_][\w]*)+$")


def _find_oracles(tree: ast.Module) -> Optional[ast.Dict]:
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if "KERNEL_ORACLES" in names and isinstance(node.value, ast.Dict):
                return node.value
    return None


@register
class KernelOraclePairing(Rule):
    id = "R004"
    title = "vectorized kernels paired with scalar oracles and parity tests"
    # Reads the parity-test source through ctx.read_project_file, so its
    # findings must invalidate with the project, not just this file.
    uses_project = True
    description = (
        "core/grid_eval.py, execution/kernels.py, "
        "execution/batch_replay.py and market/correlated.py must define "
        "KERNEL_ORACLES mapping each public function to its scalar "
        "reference (dotted path); every mapped kernel must appear in "
        "tests/test_batch_parity.py. Unmapped public functions are "
        "unverified rewrites."
    )

    def applies(self, relpath: str) -> bool:
        return any(relpath.endswith(mod) for mod in KERNEL_MODULES)

    def check(self, unit, ctx) -> Iterator[Finding]:
        oracles = _find_oracles(unit.tree)
        if oracles is None:
            yield self.finding(
                unit, 1, 0,
                "kernel module must declare KERNEL_ORACLES = "
                "{'kernel_fn': 'scalar.reference.path', ...} as a dict "
                "literal at module level",
            )
            return

        declared: dict = {}
        for key, value in zip(oracles.keys, oracles.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ) or not (
                isinstance(value, ast.Constant) and isinstance(value.value, str)
            ):
                yield self.finding(
                    unit, oracles.lineno, oracles.col_offset,
                    "KERNEL_ORACLES entries must be string-literal "
                    "name -> dotted-path pairs",
                )
                continue
            declared[key.value] = (value.value, key.lineno, key.col_offset)

        public = {
            node.name: node
            for node in unit.tree.body
            if isinstance(node, ast.FunctionDef)
            and not node.name.startswith("_")
        }

        for name, node in public.items():
            if name not in declared:
                yield self.finding(
                    unit, node.lineno, node.col_offset,
                    f"public function {name}() has no scalar reference in "
                    "KERNEL_ORACLES (declare its oracle, or mark it "
                    "non-kernel with an inline disable and a reason)",
                )

        parity_src = ctx.read_project_file(PARITY_TEST_FILE)
        if parity_src is None:
            yield self.finding(
                unit, 1, 0,
                f"parity test file {PARITY_TEST_FILE} not found; kernel "
                "oracle pairing cannot be verified",
            )

        for name, (oracle, line, col) in declared.items():
            if name not in public:
                yield self.finding(
                    unit, line, col,
                    f"KERNEL_ORACLES maps {name!r} but no public function "
                    "of that name exists in this module",
                )
                continue
            if not _DOTTED_RE.match(oracle):
                yield self.finding(
                    unit, line, col,
                    f"scalar reference {oracle!r} for {name}() is not a "
                    "dotted module path",
                )
            if parity_src is not None and not re.search(
                rf"\b{re.escape(name)}\b", parity_src
            ):
                yield self.finding(
                    unit, line, col,
                    f"kernel {name}() has no matching parity test: the name "
                    f"never appears in {PARITY_TEST_FILE}",
                )
