"""R001 — no unseeded randomness in model/execution code.

Every Monte-Carlo path in the reproduction must be a pure function of
its seed (the bit-identity contracts of DESIGN.md §6–§8 depend on it),
so the deterministic packages may only draw randomness through the
seeded ``np.random.Generator`` plumbing (``sim.rng``).  The stdlib
``random`` module, the legacy ``np.random.*`` global functions, and
wall-clock reads (``time.time``, ``datetime.now``) are all banned.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..dataflow import BANNED_CLOCK_ATTRS
from ..findings import Finding
from ..registry import Rule, in_benchmarks, in_packages, register

#: Packages whose results must be a pure function of the seed.  The
#: experiments entrypoints joined in v3: they drive figure generation,
#: so an unseeded draw there silently invalidates published numbers.
DETERMINISTIC_PACKAGES = ("core", "execution", "market", "mpi", "experiments")

#: ``np.random`` attributes that are part of the *seeded* API.
ALLOWED_NP_RANDOM = frozenset(
    {"Generator", "default_rng", "SeedSequence", "BitGenerator",
     "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)

# BANNED_CLOCK_ATTRS moved to ..dataflow (the summary fixpoint and
# R012/R014 must agree with the syntactic ban); imported above and
# still importable from here.


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ''."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class NoUnseededRandomness(Rule):
    id = "R001"
    title = "no unseeded randomness or wall-clock reads in deterministic code"
    description = (
        "src/repro/{core,execution,market,mpi,experiments} and "
        "benchmarks/ must draw randomness only through seeded "
        "np.random.Generator plumbing. Bans the stdlib 'random' module, "
        "np.random global functions (np.random.seed/rand/normal/...), "
        "time.time and datetime.now — all of which break the seeded "
        "bit-identity contract of the replay kernels."
    )

    def applies(self, relpath: str) -> bool:
        return in_packages(relpath, DETERMINISTIC_PACKAGES) or in_benchmarks(
            relpath
        )

    def check(self, unit, ctx) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            unit, node.lineno, node.col_offset,
                            "stdlib 'random' is unseeded global state; use a "
                            "seeded np.random.Generator (sim.rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "random":
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        "stdlib 'random' is unseeded global state; use a "
                        "seeded np.random.Generator (sim.rng)",
                    )
                elif mod in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name not in ALLOWED_NP_RANDOM:
                            yield self.finding(
                                unit, node.lineno, node.col_offset,
                                f"numpy.random.{alias.name} is the unseeded "
                                "global stream; use np.random.default_rng(seed)",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted in BANNED_CLOCK_ATTRS:
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        f"wall-clock read {dotted}() makes results "
                        "run-dependent; thread times through arguments",
                    )
                    continue
                head, _, attr = dotted.rpartition(".")
                if head in ("np.random", "numpy.random") and (
                    attr not in ALLOWED_NP_RANDOM
                ):
                    yield self.finding(
                        unit, node.lineno, node.col_offset,
                        f"{dotted} uses numpy's unseeded global stream; "
                        "use np.random.default_rng(seed)",
                    )
