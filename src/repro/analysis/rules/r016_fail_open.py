"""R016 — documented fail-open functions must actually fail open.

The repo's IO layers (artifact store, shared-memory pool, lint cache)
promise *fail-open* behaviour: a missing file, a torn write, a vanished
shared-memory segment degrade to a recompute or a cold run — never to
an exception crossing the caller's boundary.  The promise lives in
docstrings, which nothing checked: PR 8's artifact store shipped with
a guarded ``load`` but an ``_entries`` sweep whose ``stat`` could still
raise on a concurrently-evicted file, and the v3 lint cache's
dependency probe had the same TOCTOU shape.

This rule makes the docstring binding.  Any function whose docstring
contains ``fail-open`` (or ``fail open``) is checked against the
exception-flow half of the summary fixpoint: if an abstract ``OSError``
or ``EOFError`` fact can escape its body, every escaping site is
flagged — an ``open``/``stat``/``SharedMemory`` call outside a
``try``, an ``except FileNotFoundError`` that narrows away the general
``OSError`` case, a bare ``raise`` re-raising what a handler caught,
or a worker entry whose escaping raises resurface at the
``submit``/``run_ordered`` gather in the parent.

Unlike every other fact in the analyzer, exception flow is a
**may-escape over-approximation** (see :mod:`..summaries`): the rule
asserts the *absence* of escapes, so it must err toward reporting.
The raiser table is curated rather than exhaustive, which keeps the
direction honest for the IO leaves the repo actually uses; a site
that handles the error in a way the model cannot see carries an
inline ``# reprolint: disable=R016`` with its justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from ..findings import Finding
from ..registry import Rule, register
from ..summaries import escaping_raises

_MARKER = re.compile(r"fail[- ]open", re.IGNORECASE)


@register
class FailOpenContract(Rule):
    id = "R016"
    title = "documented fail-open functions must not leak OSError/EOFError"
    scope = "project"
    needs_summaries = True
    description = (
        "A function whose docstring promises fail-open behaviour "
        "('fail-open'/'fail open') must not let OSError or EOFError "
        "escape: the interprocedural exception-flow summary "
        "(may-escape, from a curated table of IO raisers plus callee "
        "summaries) flags every escaping site, including raises that "
        "surface through a worker submit/run_ordered boundary and "
        "handlers that catch a subclass (FileNotFoundError) while the "
        "general OSError still escapes."
    )
    help_uri = "DESIGN.md#14-interprocedural-summaries"

    def check_project(self, ctx) -> Iterator[Finding]:
        graph = ctx.project
        summaries = ctx.summaries
        if graph is None or summaries is None:
            return
        for key in sorted(graph.functions):
            info = graph.functions[key]
            doc = ast.get_docstring(info.node)
            if not doc or not _MARKER.search(doc):
                continue
            syms = graph.modules.get(info.module)
            unit = ctx.units.get(syms.relpath) if syms is not None else None
            if unit is None:
                continue

            sites: List[Tuple[int, int, str, str]] = []
            escaped = escaping_raises(
                info.node.body,
                summaries.raise_resolver(info),
                record=lambda exc, ln, col, why: sites.append(
                    (ln, col, exc, why)
                ),
            )
            if not escaped:
                continue
            seen: Set[Tuple[int, int, str]] = set()
            for ln, col, exc, why in sites:
                if exc not in escaped or (ln, col, exc) in seen:
                    continue
                seen.add((ln, col, exc))
                yield self.finding(
                    unit, ln, col,
                    f"{info.qualname}() documents a fail-open contract "
                    f"but {exc} can escape here ({why}); catch it and "
                    "degrade — log or count the failure and fall back — "
                    "instead of letting the caller crash",
                )
