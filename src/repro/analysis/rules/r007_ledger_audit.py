"""R007 — every CostLedger construction must reach a repro.obs audit hook.

The checkpoint-storage drift fixed in PR 2 survived for three PRs
because a ledger was *built* but never *reconciled*: the executor path
constructed a ``CostLedger``, summed its own total, and no audit ever
compared the two.  The ``repro.obs`` contract since then is that every
path constructing a ledger threads its result through an audit hook
(``observe_result`` → ``audit_run_result``, or
``audit_adaptive_result``), where conservation invariants re-derive the
bill record by record.

This is precisely the invariant no single file can witness: the
construction lives in one module, the hook two calls away in another.
The rule therefore runs on the project graph — it collects every
``CostLedger(...)`` call site, computes the set of functions from which
an audit hook is reachable (reverse BFS over the call graph), and flags
constructions in functions outside that set.

Exempt by construction: the module that *defines* ``CostLedger`` (the
billing layer builds ledgers to model them, not to bill), the ``obs``
package itself (the auditor re-derives ledgers as oracles), and test
trees.  Dataclass ``default_factory=CostLedger`` references are not
calls and never match — an empty default ledger carries no money.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from ..findings import Finding
from ..registry import Rule, register
from ..symbols import dotted_name

#: A call resolving (or literally written) like this is an audit hook.
_AUDIT_LEAF_RE = re.compile(r"^audit_\w+$")
_OBS_MODULE_RE = re.compile(r"(^|\.)obs(\.|$)")

#: Modules exempt from the construction check (posix relpath patterns).
_EXEMPT_PATH_RE = re.compile(r"(^|/)(tests?|obs)(/|$)|(^|/)billing\.py$")


def _is_audit_name(dotted: str) -> bool:
    head, _, leaf = dotted.rpartition(".")
    return bool(_AUDIT_LEAF_RE.match(leaf)) and bool(
        _OBS_MODULE_RE.search(head or "")
    )


@register
class LedgerAuditCoverage(Rule):
    id = "R007"
    title = "CostLedger constructions thread through repro.obs audit hooks"
    scope = "project"
    description = (
        "Whole-program rule: collects every CostLedger(...) call site, "
        "computes (over the project call graph) the set of functions "
        "from which a repro.obs audit hook (obs.audit_*) is reachable, "
        "and flags ledger constructions in functions that can never "
        "reach one — a bill that is built but never reconciled. The "
        "billing module, the obs package and tests are exempt."
    )

    def check_project(self, ctx) -> Iterator[Finding]:
        graph = ctx.project
        if graph is None:
            return

        # --- audit sinks: obs functions named audit_*, plus any call
        # written/resolved as obs.audit_* that the graph cannot see
        # (e.g. linting a subtree without the obs package).
        sink_keys: Set[Tuple[str, str]] = set()
        for info in graph.functions.values():
            if _AUDIT_LEAF_RE.match(info.name) and _OBS_MODULE_RE.search(
                info.module
            ):
                sink_keys.add(info.key)
        for info in graph.functions.values():
            for call in info.calls:
                if graph.resolve_call(info, call.name) is not None:
                    continue
                syms = graph.modules.get(info.module)
                absolute = syms.resolve_local(call.name) if syms else None
                if _is_audit_name(absolute or call.name):
                    sink_keys.add(info.key)  # direct caller of an unseen hook
                    break

        audited = graph.reaching(sink_keys)

        # --- every CostLedger(...) construction site.  Nested defs are
        # walked by their enclosing function too, so first collect the
        # sites of every audited scope, then report each remaining site
        # once — a site is fine when *any* enclosing scope reaches a
        # hook.
        covered: Set[Tuple[str, int, int]] = set()
        pending = []  # (info, syms, sites) for unaudited scopes
        for info in graph.functions.values():
            syms = graph.modules.get(info.module)
            if syms is None or _EXEMPT_PATH_RE.search(syms.relpath):
                continue
            sites = self._construction_sites(info.node, syms)
            if not sites:
                continue
            if info.key in audited:
                covered.update((syms.relpath, *site) for site in sites)
            else:
                pending.append((info, syms, sites))

        reported: Set[Tuple[str, int, int]] = set()
        for info, syms, sites in pending:
            for lineno, col in sites:
                key = (syms.relpath, lineno, col)
                if key in covered or key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    syms.unit, lineno, col,
                    f"{info.qualname}() constructs a CostLedger but no "
                    "repro.obs audit hook (obs.audit_*) is reachable from "
                    "it in the call graph; thread the result through "
                    "observe_result/audit_adaptive_result so the bill is "
                    "reconciled",
                )

    @staticmethod
    def _construction_sites(fn_node: ast.AST, syms) -> List[Tuple[int, int]]:
        sites: List[Tuple[int, int]] = []
        for sub in ast.walk(fn_node):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if not name:
                continue
            leaf = name.rsplit(".", 1)[-1]
            if leaf != "CostLedger":
                continue
            resolved = syms.resolve_local(name)
            if resolved is not None and not resolved.endswith("CostLedger"):
                continue  # locally shadowed by something else
            sites.append((sub.lineno, sub.col_offset))
        return sites
