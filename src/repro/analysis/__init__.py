"""reprolint — AST-based invariant linter for the reproduction.

A self-contained static-analysis pass (stdlib ``ast`` only, no imports
of the simulation code) that rejects whole classes of the bugs the
runtime suites catch late or not at all: unseeded randomness in
deterministic packages, unregistered memo caches, dollars-vs-hours unit
mixing, vectorized kernels without scalar oracles/parity tests, bare
float equality, and swallowed exceptions.  DESIGN.md §9 documents the
rule set and workflow.

Run it as ``python -m repro.analysis [paths]`` or ``make lint``.
Programmatic entry points:

>>> from repro.analysis import run_lint, get_rules, Baseline
>>> result = run_lint(["src"], root=repo_root,
...                   baseline=Baseline.load(baseline_path))
>>> result.exit_code()
0
"""

from .baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_NAME
from .engine import LintContext, LintResult, ModuleUnit, load_unit, run_lint
from .findings import Finding, Severity
from .registry import RULES, Rule, get_rules, register

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintContext",
    "LintResult",
    "ModuleUnit",
    "RULES",
    "Rule",
    "Severity",
    "get_rules",
    "load_unit",
    "register",
    "run_lint",
]
