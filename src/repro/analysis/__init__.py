"""reprolint — AST-based invariant linter for the reproduction.

A self-contained static-analysis pass (stdlib ``ast`` only, no imports
of the simulation code) that rejects whole classes of the bugs the
runtime suites catch late or not at all: unseeded randomness in
deterministic packages, unregistered memo caches, dollars-vs-hours unit
mixing, vectorized kernels without scalar oracles/parity tests, bare
float equality, swallowed exceptions, unaudited cost ledgers,
unregistered experiment modules, and docstrings whose declared units
contradict the name-suffix convention.  DESIGN.md §9 documents the rule
set and workflow.

The v2 engine is whole-program: every lint builds a
:class:`~.project.ProjectGraph` (import graph, symbol tables, call
graph) when any selected rule needs it, unit dimensions flow through an
intraprocedural dataflow lattice (:mod:`.dataflow`), a content-hash
cache (:mod:`.cache`) replays findings for unchanged files — including
a fully-warm path that parses nothing — and mechanically-safe findings
carry autofix hints applied by ``--fix`` (:mod:`.fixers`).

Run it as ``python -m repro.analysis [paths]`` or ``make lint``.
Programmatic entry points:

>>> from repro.analysis import run_lint, get_rules, Baseline
>>> result = run_lint(["src"], root=repo_root,
...                   baseline=Baseline.load(baseline_path))
>>> result.exit_code()
0
"""

from .baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_NAME
from .cache import DEFAULT_CACHE_NAME, LintCache
from .engine import LintContext, LintResult, ModuleUnit, load_unit, run_lint
from .findings import Finding, Severity
from .fixers import FixReport, fix_paths
from .project import ProjectGraph
from .registry import RULES, Rule, get_rules, register

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CACHE_NAME",
    "Finding",
    "FixReport",
    "LintCache",
    "LintContext",
    "LintResult",
    "ModuleUnit",
    "ProjectGraph",
    "RULES",
    "Rule",
    "Severity",
    "fix_paths",
    "get_rules",
    "load_unit",
    "register",
    "run_lint",
]
