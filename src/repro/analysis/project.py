"""Whole-program import/symbol graph and call graph for reprolint.

Built once per lint run from every parsed module, then handed to rules
through :class:`~.engine.LintContext`: per-file rules consult it for
cross-module facts (callee return dimensions, re-exports) and
project-scope rules (R007 ledger-audit coverage, R008 experiment
registry) traverse it directly.

Resolution is deliberately best-effort and *under*-approximate: a call
the resolver cannot attribute (dynamic dispatch, higher-order plumbing)
simply produces no edge.  Rules built on the graph must therefore be
phrased so that missing edges cause missed findings, never false
positives — the same conservatism contract as the dimension inference
of :mod:`.dataflow`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .symbols import FunctionInfo, ModuleSymbols, extract_symbols

if TYPE_CHECKING:  # pragma: no cover
    from .engine import ModuleUnit

FuncKey = Tuple[str, str]  # (module, qualname)

#: Bound on import re-export hops (`from .audit import f` chains).
_MAX_REEXPORT_HOPS = 8


@dataclass
class ProjectGraph:
    """Import graph + symbol tables + call graph over one file set."""

    modules: Dict[str, ModuleSymbols] = field(default_factory=dict)
    by_relpath: Dict[str, ModuleSymbols] = field(default_factory=dict)
    functions: Dict[FuncKey, FunctionInfo] = field(default_factory=dict)
    call_edges: Dict[FuncKey, Set[FuncKey]] = field(default_factory=dict)
    callers: Dict[FuncKey, Set[FuncKey]] = field(default_factory=dict)
    import_edges: Dict[str, Set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, units: Sequence["ModuleUnit"]) -> "ProjectGraph":
        graph = cls()
        for unit in units:
            syms = extract_symbols(unit)
            # Last writer wins on module-name collisions (shadowed
            # fixtures); relpath lookup stays exact either way.
            graph.modules[syms.module] = syms
            graph.by_relpath[syms.relpath] = syms
        for syms in graph.modules.values():
            for info in syms.functions.values():
                graph.functions[info.key] = info
        for syms in graph.modules.values():
            targets: Set[str] = set()
            for dotted in syms.imports.values():
                mod = graph._containing_module(dotted)
                if mod and mod != syms.module:
                    targets.add(mod)
            graph.import_edges[syms.module] = targets
        for info in graph.functions.values():
            edges: Set[FuncKey] = set()
            for call in info.calls:
                callee = graph.resolve_call(info, call.name)
                if callee is not None:
                    edges.add(callee.key)
            graph.call_edges[info.key] = edges
            for callee_key in edges:
                graph.callers.setdefault(callee_key, set()).add(info.key)
        return graph

    def _containing_module(self, dotted: str) -> Optional[str]:
        """Longest known module that is a prefix of ``dotted``."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            cand = ".".join(parts[:cut])
            if cand in self.modules:
                return cand
        return None

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_function(self, dotted: str) -> Optional[FunctionInfo]:
        """Function for an *absolute* dotted name, following re-exports."""
        for _ in range(_MAX_REEXPORT_HOPS):
            mod = self._containing_module(dotted)
            if mod is None:
                return None
            rest = dotted[len(mod) :].lstrip(".")
            if not rest:
                return None  # names a module, not a function
            syms = self.modules[mod]
            if rest in syms.functions:
                return syms.functions[rest]
            # Re-export: ``from .audit import f`` makes ``pkg.f`` an
            # alias for ``pkg.audit.f``; follow one hop and retry.
            head, _, tail = rest.partition(".")
            if head in syms.imports:
                target = syms.imports[head]
                dotted = f"{target}.{tail}" if tail else target
                continue
            return None
        return None

    def resolve_call(
        self, caller: FunctionInfo, name: str
    ) -> Optional[FunctionInfo]:
        """Callee of ``name`` as written inside ``caller``, if known."""
        syms = self.modules.get(caller.module)
        if syms is None:
            return None
        if name.startswith("self.") or name.startswith("cls."):
            # Same-class method call: swap the receiver for the class
            # qualname prefix of the calling method.
            prefix, _, _ = caller.qualname.rpartition(".")
            if prefix:
                method = f"{prefix}.{name.split('.', 1)[1]}"
                if method in syms.functions:
                    return syms.functions[method]
            return None
        absolute = syms.resolve_local(name)
        if absolute is None:
            return None
        return self.resolve_function(absolute)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def functions_in(self, relpath: str) -> List[FunctionInfo]:
        syms = self.by_relpath.get(relpath)
        return list(syms.functions.values()) if syms else []

    def imports_module(self, importer: str, imported: str) -> bool:
        return imported in self.import_edges.get(importer, set())

    def reaching(self, sinks: Iterable[FuncKey]) -> Set[FuncKey]:
        """Every function from which some sink is reachable via calls.

        Includes the sinks themselves; computed by reverse BFS over the
        call graph, so a helper that *indirectly* funnels into a sink
        (``replay_decision → observe_result → audit_run_result``) is
        covered without any per-rule traversal code.
        """
        out: Set[FuncKey] = set()
        frontier: List[FuncKey] = [s for s in sinks]
        while frontier:
            key = frontier.pop()
            if key in out:
                continue
            out.add(key)
            frontier.extend(self.callers.get(key, ()))
        return out

    def find_functions(
        self, predicate: Callable[[FunctionInfo], bool]
    ) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if predicate(f)]

    # ------------------------------------------------------------------
    # condensation
    # ------------------------------------------------------------------
    def sccs(self) -> Tuple[List[List[FuncKey]], Dict[FuncKey, int]]:
        """Strongly connected components of the call graph.

        Returns ``(components, component_of)`` where ``components`` is
        in **reverse topological order** — every call edge leaving a
        component points at an *earlier* entry in the list, so a single
        forward sweep sees callees before callers.  This is the
        evaluation order of the summary fixpoint (:mod:`.summaries`):
        acyclic chains need exactly one visit per function, and only
        genuinely mutually-recursive groups iterate.

        Tarjan's algorithm, made iterative (an explicit work stack
        instead of recursion) so pathological call chains cannot hit the
        interpreter recursion limit.  Nodes are visited in sorted key
        order, which makes the component order — and therefore the
        content keys derived from it — deterministic across runs.
        """
        index: Dict[FuncKey, int] = {}
        low: Dict[FuncKey, int] = {}
        on_stack: Set[FuncKey] = set()
        stack: List[FuncKey] = []
        components: List[List[FuncKey]] = []
        component_of: Dict[FuncKey, int] = {}
        counter = [0]

        def strongconnect(root: FuncKey) -> None:
            # (node, iterator over remaining successors) work frames
            work: List[Tuple[FuncKey, Iterator[FuncKey]]] = []
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(self.call_edges.get(root, ())))))
            while work:
                node, succs = work[-1]
                advanced = False
                for succ in succs:
                    if succ not in self.functions:
                        continue  # edge into a module we did not lint
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self.call_edges.get(succ, ()))))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[FuncKey] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    component.sort()
                    for member in component:
                        component_of[member] = len(components)
                    components.append(component)

        for key in sorted(self.functions):
            if key not in index:
                strongconnect(key)
        return components, component_of
