"""Circle-group subset selection (Section 4.4).

Only ``kappa`` of the ``K`` candidate circle groups actually run the
application.  The paper traverses every combination of ``kappa`` groups
and keeps the cheapest feasible solution; since a solution that leaves a
slot empty is also admissible (a zero bid means "do not use the group"),
we traverse all subsets of size ``1..kappa``.

A greedy alternative (grow the subset by the group that improves the
expected cost most) is provided as an extension; the ablation benchmark
compares its solution quality and search cost against the exhaustive
traversal.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from . import grid_eval
from .two_level import SubsetResult, TwoLevelOptimizer


def enumerate_subsets(
    n_groups: int, kappa: int, exact_size: bool = False
) -> Iterator[Tuple[int, ...]]:
    """All candidate subsets of the ``K`` groups.

    ``exact_size=True`` yields only size-``kappa`` subsets (the paper's
    literal traversal); the default also yields smaller subsets, which is
    never worse and lets the optimizer drop useless replicas.
    """
    if n_groups < 1:
        raise ConfigurationError(f"n_groups must be >= 1, got {n_groups}")
    if kappa < 1:
        raise ConfigurationError(f"kappa must be >= 1, got {kappa}")
    kappa = min(kappa, n_groups)
    sizes = [kappa] if exact_size else range(1, kappa + 1)
    for size in sizes:
        yield from itertools.combinations(range(n_groups), size)


def _precomputed_bounds(
    optimizer: TwoLevelOptimizer,
    subsets: Sequence[Tuple[int, ...]],
    objective: str,
) -> Optional[Dict[Tuple[int, ...], float]]:
    """Admissible bounds for every candidate subset in one array program.

    With ``config.grid_eval`` the traversal's per-subset bound
    derivation (a Python generator expression per subset) collapses
    into one :func:`repro.core.grid_eval.subset_bounds` call per subset
    size.  The per-group floors and the accumulation order are the
    scalar ``_subset_bound``'s, so every bound — and therefore every
    incumbent pruning decision — is bit-identical.  Returns ``None``
    when the one-shot path is disabled (the scalar bound is derived
    inside ``optimize_subset`` as before).
    """
    if not optimizer.config.grid_eval:
        return None
    subsets = list(subsets)
    if not subsets:
        return {}
    n = optimizer.problem.n_groups
    min_spot = np.empty(n)
    min_ratio = np.empty(n)
    min_wall = np.empty(n)
    for i in range(n):
        table = optimizer.group_table(i)
        min_spot[i] = table.e_spot.min()
        min_ratio[i] = table.e_ratio.min()
        min_wall[i] = table.e_wall.min()
    by_size: Dict[int, list] = {}
    for subset in subsets:
        by_size.setdefault(len(subset), []).append(subset)
    bounds: Dict[Tuple[int, ...], float] = {}
    for group in by_size.values():
        cost_b, time_b = grid_eval.subset_bounds(
            min_spot, min_ratio, min_wall,
            np.array(group, dtype=np.intp),
            optimizer.ondemand.full_run_cost,
        )
        chosen = cost_b if objective == "cost" else time_b
        for subset, value in zip(group, chosen):
            bounds[subset] = float(value)
    return bounds


def exhaustive_subset_search(
    optimizer: TwoLevelOptimizer,
    kappa: int,
    exact_size: bool = False,
    objective: str = "cost",
    budget: Optional[float] = None,
) -> Optional[SubsetResult]:
    """Best result over all subsets (``None`` if every subset is infeasible).

    The traversal keeps an incumbent and hands its score to
    :meth:`TwoLevelOptimizer.optimize_subset` as ``prune_above``: subsets
    whose admissible lower bound cannot beat the best feasible score seen
    so far are skipped without evaluating their bid combinations.  The
    bound is a true lower bound on the exact score, so the winner (and
    the reported ``combos_evaluated``) is identical with pruning off.
    """
    best: Optional[SubsetResult] = None

    def score(res: SubsetResult) -> float:
        return res.expectation.cost if objective == "cost" else res.expectation.time

    subsets = list(
        enumerate_subsets(optimizer.problem.n_groups, kappa, exact_size)
    )
    bounds = _precomputed_bounds(optimizer, subsets, objective)
    for subset in subsets:
        result = optimizer.optimize_subset(
            subset,
            objective=objective,
            budget=budget,
            prune_above=None if best is None else score(best),
            bound=None if bounds is None else bounds[subset],
        )
        if result is None:
            continue
        if best is None or score(result) < score(best):
            best = result
    return best


def greedy_subset_search(
    optimizer: TwoLevelOptimizer,
    kappa: int,
    objective: str = "cost",
    budget: Optional[float] = None,
) -> Optional[SubsetResult]:
    """Grow the subset greedily: start from the best single group, then
    repeatedly add the group that improves the objective the most.

    Evaluates ``O(K * kappa)`` subsets instead of ``O(C(K, kappa))``.
    Accepts the same ``objective``/``budget`` pair as the exhaustive
    traversal so budget-constrained planning can use the heuristic too.
    """
    n = optimizer.problem.n_groups
    kappa = min(kappa, n)
    chosen: list[int] = []
    best: Optional[SubsetResult] = None
    remaining = set(range(n))

    def score(res: SubsetResult) -> float:
        return res.expectation.cost if objective == "cost" else res.expectation.time

    for _ in range(kappa):
        round_best: Optional[SubsetResult] = None
        round_pick: Optional[int] = None
        candidates = [tuple(chosen + [g]) for g in sorted(remaining)]
        bounds = _precomputed_bounds(optimizer, candidates, objective)
        for subset in candidates:
            g = subset[-1]
            # Prune against the *round* incumbent only: the stop rule
            # below compares round_best against the overall best, so
            # round_best itself must come out exactly as without pruning.
            result = optimizer.optimize_subset(
                subset,
                objective=objective,
                budget=budget,
                prune_above=None if round_best is None else score(round_best),
                bound=None if bounds is None else bounds[subset],
            )
            if result is None:
                continue
            if round_best is None or score(result) < score(round_best):
                round_best, round_pick = result, g
        if round_pick is None:
            break
        # Keep growing only while it helps; adding a replica costs money,
        # so the curve is not monotone.
        if best is not None and score(round_best) >= score(best):
            break
        chosen.append(round_pick)
        remaining.discard(round_pick)
        best = round_best
    return best
