"""Problem definition (Section 3).

A *circle group* is an independent replica candidate: spot instances of
one type in one availability zone, sized so that every MPI process gets a
core (``M_i = ceil(N / cores)``).  The optimizer picks

* which groups to use (at most ``kappa`` of the ``K`` candidates),
* a bid price ``P_i`` for each used group,
* a checkpoint interval ``F_i`` for each used group, and
* the on-demand instance type ``d`` used to recover if every group dies,

to minimise expected monetary cost subject to an expected-time deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..cloud.instance_types import InstanceType, instances_needed
from ..errors import ConfigurationError
from ..market.history import MarketKey
from ..units import check_nonnegative, check_positive


@dataclass(frozen=True)
class CircleGroupSpec:
    """Static description of one circle-group candidate.

    Attributes
    ----------
    key:
        The spot market this group bids into.
    itype:
        Instance type (must match ``key.instance_type``).
    n_instances:
        Fleet size ``M_i`` — one MPI process per core.
    exec_time:
        ``T_i``: productive hours to complete the application on this
        group, excluding all checkpoint/recovery overhead.
    checkpoint_overhead:
        ``O_i``: wall hours added per checkpoint.
    recovery_overhead:
        ``R_i``: wall hours to restart from a stored checkpoint.
    image_bytes:
        Size of one coordinated checkpoint image (all ranks); used only
        for S3 storage-cost accounting, which the paper shows to be
        negligible (< 0.1% of the bill).  0 disables the accounting.
    """

    key: MarketKey
    itype: InstanceType
    n_instances: int
    exec_time: float
    checkpoint_overhead: float
    recovery_overhead: float
    image_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.key.instance_type != self.itype.name:
            raise ConfigurationError(
                f"market {self.key} does not match instance type {self.itype.name}"
            )
        if self.n_instances < 1:
            raise ConfigurationError("n_instances must be >= 1")
        check_positive("exec_time", self.exec_time)
        check_nonnegative("checkpoint_overhead", self.checkpoint_overhead)
        check_nonnegative("recovery_overhead", self.recovery_overhead)
        check_nonnegative("image_bytes", self.image_bytes)

    @classmethod
    def for_processes(
        cls,
        key: MarketKey,
        itype: InstanceType,
        n_processes: int,
        exec_time: float,
        checkpoint_overhead: float,
        recovery_overhead: float,
    ) -> "CircleGroupSpec":
        """Build a spec with ``M_i`` derived from the process count."""
        return cls(
            key=key,
            itype=itype,
            n_instances=instances_needed(itype, n_processes),
            exec_time=exec_time,
            checkpoint_overhead=checkpoint_overhead,
            recovery_overhead=recovery_overhead,
        )


@dataclass(frozen=True)
class OnDemandOption:
    """One candidate fallback on-demand configuration (type ``d``)."""

    itype: InstanceType
    n_instances: int
    exec_time: float  # T_d, hours

    def __post_init__(self) -> None:
        if self.n_instances < 1:
            raise ConfigurationError("n_instances must be >= 1")
        check_positive("exec_time", self.exec_time)

    @property
    def fleet_rate(self) -> float:
        """Dollars per hour for the whole fleet (``D_d * M_d``)."""
        return self.itype.ondemand_price * self.n_instances

    @property
    def full_run_cost(self) -> float:
        """Cost of a complete from-scratch run (``T_d * D_d * M_d``)."""
        return self.exec_time * self.fleet_rate


@dataclass(frozen=True)
class Problem:
    """The constrained optimization problem (Formula 1)."""

    groups: Tuple[CircleGroupSpec, ...]
    ondemand_options: Tuple[OnDemandOption, ...]
    deadline: float  # hours

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("need at least one circle-group candidate")
        if not self.ondemand_options:
            raise ConfigurationError("need at least one on-demand option")
        check_positive("deadline", self.deadline)
        keys = [g.key for g in self.groups]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate circle-group market keys")

    @property
    def n_groups(self) -> int:
        return len(self.groups)


@dataclass(frozen=True)
class GroupDecision:
    """The per-group part of a decision: bid price and checkpoint interval."""

    group_index: int
    bid: float
    interval: float  # F_i, hours; interval >= T_i means "no checkpoints"

    def __post_init__(self) -> None:
        if self.group_index < 0:
            raise ConfigurationError("group_index must be >= 0")
        check_nonnegative("bid", self.bid)
        check_positive("interval", self.interval)


@dataclass(frozen=True)
class Decision:
    """A complete assignment of the decision variables."""

    groups: Tuple[GroupDecision, ...]
    ondemand_index: int

    def __post_init__(self) -> None:
        if self.ondemand_index < 0:
            raise ConfigurationError("ondemand_index must be >= 0")
        idx = [g.group_index for g in self.groups]
        if len(set(idx)) != len(idx):
            raise ConfigurationError("a group may appear at most once in a decision")

    @property
    def group_indices(self) -> Tuple[int, ...]:
        return tuple(g.group_index for g in self.groups)

    def describe(self, problem: Problem) -> str:
        """Human-readable summary used by examples and experiment output."""
        lines = []
        for gd in self.groups:
            spec = problem.groups[gd.group_index]
            lines.append(
                f"  {spec.key}: bid=${gd.bid:.4f}/h, "
                f"checkpoint every {gd.interval:.2f} h, "
                f"M={spec.n_instances}, T={spec.exec_time:.2f} h"
            )
        od = problem.ondemand_options[self.ondemand_index]
        lines.append(
            f"  fallback: {od.itype.name} x{od.n_instances} on-demand "
            f"(T={od.exec_time:.2f} h, ${od.fleet_rate:.2f}/h)"
        )
        return "\n".join(lines)
