"""Plan/holdout window splitting for time-travel backtests (DESIGN.md §11).

The backtest harness (:mod:`repro.backtest`) scores the planner the way
"Application-centric Resource Provisioning for Amazon EC2 Spot
Instances" scores its models: decide on a *plan* window of price
history, then live through a disjoint *holdout* window the planner never
saw.  This module owns the partitioning primitives and the written
record of one backtest — the :class:`BacktestManifest` — so that a run
is reproducible from the manifest alone (window bounds, seed, engine
fingerprint, trace content hashes).

Everything here is pure bookkeeping over trace windows; the planner and
replay drivers live in :mod:`repro.backtest` (which may import the
execution layer — this module must not, to keep ``core`` cycle-free).
All times are hours on the traces' absolute axis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..market.history import SpotPriceHistory
from ..market.trace import SpotPriceTrace

__all__ = [
    "BacktestManifest",
    "BacktestWindow",
    "sample_window_starts",
    "split_history",
    "split_windows",
]

#: Manifest document format identifier (bump on schema changes).
MANIFEST_FORMAT = "repro.backtest-manifest.v1"


@dataclass(frozen=True)
class BacktestWindow:
    """One plan/holdout partition of the price history.

    The planner may read ``[plan_start, plan_end)``; replays draw their
    starting points from ``[plan_end, holdout_end)`` and never overlap
    the plan window — ``plan_end`` is the hard wall between "past" and
    "future".
    """

    index: int
    plan_start: float  # hours
    plan_end: float  # hours; also the holdout start
    holdout_end: float  # hours

    def __post_init__(self) -> None:
        if not self.plan_start < self.plan_end < self.holdout_end:
            raise ConfigurationError(
                f"window {self.index}: need plan_start < plan_end < "
                f"holdout_end, got [{self.plan_start}, {self.plan_end}, "
                f"{self.holdout_end})"
            )

    @property
    def plan_hours(self) -> float:
        return self.plan_end - self.plan_start

    @property
    def holdout_hours(self) -> float:
        return self.holdout_end - self.plan_end

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "plan_start": self.plan_start,
            "plan_end": self.plan_end,
            "holdout_end": self.holdout_end,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BacktestWindow":
        return cls(
            index=int(doc["index"]),
            plan_start=float(doc["plan_start"]),
            plan_end=float(doc["plan_end"]),
            holdout_end=float(doc["holdout_end"]),
        )


def split_windows(
    start_time: float,
    end_time: float,
    n_windows: int,
    plan_hours: float,
    holdout_hours: float,
    stride_hours: Optional[float] = None,
) -> Tuple[BacktestWindow, ...]:
    """Tile ``[start_time, end_time)`` into rolling plan/holdout windows.

    Window ``i`` plans on ``[start + i*stride, start + i*stride + plan)``
    and holds out the following ``holdout_hours``.  The default stride is
    ``holdout_hours`` (rolling origin: consecutive holdouts are disjoint
    and contiguous, each plan window absorbs the previous holdout).
    Raises :class:`ConfigurationError` when the span cannot fit the
    requested windows — never silently samples outside the trace.
    """
    if n_windows < 1:
        raise ConfigurationError(f"n_windows must be >= 1, got {n_windows}")
    if plan_hours <= 0.0 or holdout_hours <= 0.0:
        raise ConfigurationError(
            f"plan_hours and holdout_hours must be > 0, got "
            f"{plan_hours} and {holdout_hours}"
        )
    stride = holdout_hours if stride_hours is None else stride_hours
    if stride <= 0.0:
        raise ConfigurationError(f"stride_hours must be > 0, got {stride}")
    needed = (n_windows - 1) * stride + plan_hours + holdout_hours
    available = end_time - start_time
    if needed > available + 1e-9:
        raise ConfigurationError(
            f"history [{start_time:g}, {end_time:g}) h is too short for "
            f"{n_windows} window(s) of {plan_hours:g} h plan + "
            f"{holdout_hours:g} h holdout at stride {stride:g} h "
            f"(need {needed:g} h, have {available:g} h)"
        )
    windows = []
    for i in range(n_windows):
        t0 = start_time + i * stride
        windows.append(
            BacktestWindow(
                index=i,
                plan_start=t0,
                plan_end=t0 + plan_hours,
                holdout_end=t0 + plan_hours + holdout_hours,
            )
        )
    return tuple(windows)


def sample_window_starts(
    trace: SpotPriceTrace,
    span_hours: float,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``n`` uniform window starts leaving ``span_hours`` of trace.

    This is the checked replacement for the inverted-range bug in the
    accuracy experiment: ``rng.uniform(start, end - span)`` with
    ``span > duration`` silently produced start times *outside* the
    trace.  Here a trace too short for the span raises
    :class:`ConfigurationError` instead.
    """
    if span_hours <= 0.0:
        raise ConfigurationError(f"span_hours must be > 0, got {span_hours}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    latest = trace.end_time - span_hours
    if latest <= trace.start_time:
        raise ConfigurationError(
            f"trace window [{trace.start_time:g}, {trace.end_time:g}) h is "
            f"too short for a {span_hours:g} h sampling span"
        )
    return rng.uniform(trace.start_time, latest, size=n)


def split_history(
    history: SpotPriceHistory, window: BacktestWindow
) -> Tuple[SpotPriceHistory, SpotPriceHistory]:
    """``(plan, holdout)`` histories for one window.

    Each side holds fresh trace objects sliced to its half-open window,
    so the planner *cannot* read holdout prices: they are simply absent
    from the history object it is handed.  Because artifact-store and
    planner-cache keys hash trace content, the two tiers can never share
    cached tables either — the slices have different content by
    construction (disjoint windows).
    """
    plan = SpotPriceHistory()
    holdout = SpotPriceHistory()
    for key, trace in history.items():
        plan.add(key, trace.slice(window.plan_start, window.plan_end))
        holdout.add(key, trace.slice(window.plan_end, window.holdout_end))
    return plan, holdout


@dataclass(frozen=True)
class BacktestManifest:
    """The written record of one backtest: enough to re-run it exactly.

    ``trace_hashes`` pins the input data (market -> trace content hash)
    and ``engine_fingerprint`` pins the code (the artifact store's
    engine hash, computed by the harness); a reloaded manifest re-run on
    matching data and code is bit-identical.  ``deadline_factors`` maps
    a label ("loose"/"tight") to the factor multiplying Baseline Time.
    """

    seed: int
    engine_fingerprint: str
    plan_hours: float
    holdout_hours: float
    stride_hours: float
    n_samples: int
    apps: Tuple[str, ...]
    deadline_factors: Tuple[Tuple[str, float], ...]
    windows: Tuple[BacktestWindow, ...]
    trace_hashes: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.windows:
            raise ConfigurationError("a manifest needs at least one window")
        if not self.apps:
            raise ConfigurationError("a manifest needs at least one app")
        if self.n_samples < 1:
            raise ConfigurationError(
                f"n_samples must be >= 1, got {self.n_samples}"
            )

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "seed": self.seed,
            "engine_fingerprint": self.engine_fingerprint,
            "plan_hours": self.plan_hours,
            "holdout_hours": self.holdout_hours,
            "stride_hours": self.stride_hours,
            "n_samples": self.n_samples,
            "apps": list(self.apps),
            "deadline_factors": [[name, f] for name, f in self.deadline_factors],
            "windows": [w.to_dict() for w in self.windows],
            "trace_hashes": [[market, h] for market, h in self.trace_hashes],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BacktestManifest":
        fmt = doc.get("format")
        if fmt != MANIFEST_FORMAT:
            raise ConfigurationError(
                f"unknown manifest format {fmt!r}; expected {MANIFEST_FORMAT}"
            )
        return cls(
            seed=int(doc["seed"]),
            engine_fingerprint=str(doc["engine_fingerprint"]),
            plan_hours=float(doc["plan_hours"]),
            holdout_hours=float(doc["holdout_hours"]),
            stride_hours=float(doc["stride_hours"]),
            n_samples=int(doc["n_samples"]),
            apps=tuple(str(a) for a in doc["apps"]),
            deadline_factors=tuple(
                (str(name), float(f)) for name, f in doc["deadline_factors"]
            ),
            windows=tuple(
                BacktestWindow.from_dict(w) for w in doc["windows"]
            ),
            trace_hashes=tuple(
                (str(m), str(h)) for m, h in doc["trace_hashes"]
            ),
        )

    def save(self, path) -> None:
        """Write the manifest as deterministic JSON (sorted keys).

        Python's ``json`` emits floats via ``repr``, which round-trips
        float64 exactly — reloading yields bit-identical window bounds.
        """
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "BacktestManifest":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def check_traces(self, history: SpotPriceHistory) -> None:
        """Raise unless ``history`` matches the recorded content hashes.

        A manifest replayed over different price data would silently
        measure something else; this is the guard the re-run path calls
        before planning.
        """
        actual = {str(key): trace.content_hash() for key, trace in history.items()}
        for market, expected in self.trace_hashes:
            got = actual.get(market)
            if got != expected:
                raise ConfigurationError(
                    f"manifest trace hash mismatch for {market}: manifest "
                    f"has {expected[:12]}..., history has "
                    f"{'absent' if got is None else got[:12] + '...'}"
                )


def manifest_trace_hashes(
    history: SpotPriceHistory,
) -> Tuple[Tuple[str, str], ...]:
    """Sorted ``(market, content_hash)`` pairs for a manifest."""
    return tuple(
        (str(key), trace.content_hash()) for key, trace in history.items()
    )
