"""One-shot candidate-grid kernels for the planner (DESIGN.md §10).

The cold planning path used to spend most of its time in scalar Python
loops over candidate grids: :func:`repro.core.interval.optimal_interval`
builds one :class:`~repro.core.cost_model.GroupOutcome` per interval
candidate (tens of array allocations and pmf validations each), the bid
candidates are generated market by market, and every subset's pruning
bound is re-derived from Python generator expressions.  This module
evaluates each of those grids as **one** array program over the same
float64 inputs.

The hard contract is the kernel layer's (DESIGN.md §8): **bit identity**
with the scalar code being replaced — same IEEE-754 operations applied
in the same order, elementwise.  Concretely:

* every elementwise formula below is copied operation-for-operation
  from its scalar oracle (broadcasting a column of interval candidates
  against a row of outcomes performs the identical multiply/divide per
  element that the scalar loop performs one candidate at a time);
* reductions that the scalar path runs as 1-D ``np.dot`` stay per-row
  1-D ``np.dot`` here (a matrix-vector product may associate
  differently in the last ulp);
* sequential accumulations (``sum``, ``*=``, ``max`` over groups in
  subset order) stay sequential per position, so the float operation
  order is unchanged;
* winner selection replicates the scalar incumbent loop — strict
  comparison against the running best, first winner kept.

``KERNEL_ORACLES`` declares the scalar reference of every public
function (reprolint R004) and ``tests/test_batch_parity.py`` pins exact
equality on representative and adversarial grids.  Everything here is a
pure function of its arguments: no caches, no config reads — gating by
``config.grid_eval`` happens at the call sites in :mod:`.two_level` and
:mod:`.subset`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import check_positive
from .interval import _interval_candidates, young_interval
from .problem import CircleGroupSpec, OnDemandOption
from .ratio import _COMPLETE_ATOL

#: Scalar reference for every public kernel (reprolint R004): the
#: vectorized function must be bit-identical to the dotted scalar path,
#: verified by tests/test_batch_parity.py.
KERNEL_ORACLES = {
    "bid_matrix_rows": "repro.core.bid_search.log_bid_candidates",
    "outcome_grid": "repro.core.cost_model.GroupOutcome.from_pmf",
    "optimal_interval_grid": "repro.core.interval.optimal_interval",
    "subset_bounds": "repro.core.two_level.TwoLevelOptimizer._subset_bound",
}


def bid_matrix_rows(
    max_prices: Sequence[float], levels: int, floor_prices: Sequence[float]
) -> List[np.ndarray]:
    """Per-market geometric bid candidates, whole grid in one program.

    Row ``i`` equals ``log_bid_candidates(max_prices[i], levels,
    floor_prices[i])`` exactly: the ``(markets, levels + 1)`` candidate
    matrix is one broadcast multiply (each element is the same single
    ``H * 2**(j - levels)`` product the scalar path computes), and the
    floor clip + dedup run per row on identical values.
    """
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    maxima = np.asarray(max_prices, dtype=float)
    floors = np.asarray(floor_prices, dtype=float)
    if maxima.shape != floors.shape or maxima.ndim != 1:
        raise ConfigurationError(
            "max_prices and floor_prices must be 1-D of equal length"
        )
    for hi, lo in zip(maxima, floors):
        check_positive("max_price", float(hi))
        check_positive("floor_price", float(lo))
        if lo > hi:
            raise ConfigurationError(
                f"floor_price {lo} exceeds max_price {hi}"
            )
    steps = np.exp2(np.arange(levels + 1, dtype=float) - levels)
    grid = maxima[:, None] * steps[None, :]
    return [
        np.unique(np.maximum(row, lo)) for row, lo in zip(grid, floors)
    ]


def outcome_grid(
    spec: CircleGroupSpec,
    intervals: np.ndarray,
    n_steps: int,
    step_hours: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Outcome tables for every interval candidate at once.

    Returns ``(productive, wall, ratios)`` where ``productive`` is the
    shared ``(n_steps + 1,)`` outcome row and ``wall`` / ``ratios`` are
    ``(candidates, n_steps + 1)``; row ``c`` is bit-identical to the
    ``wall`` / ``ratios`` arrays of ``GroupOutcome.from_pmf(spec, bid,
    intervals[c], pmf, price, step_hours)`` — every formula below is
    the scalar constructor's, broadcast over the candidate column.
    """
    F = np.asarray(intervals, dtype=float)
    if F.ndim != 1 or F.size == 0:
        raise ConfigurationError("intervals must be a non-empty 1-D array")
    if np.any(F <= 0):
        raise ConfigurationError("intervals must be > 0")
    T = spec.exec_time
    productive = np.minimum(step_hours * np.arange(n_steps + 1), T)
    productive[n_steps] = T
    col = F[:, None]
    # Checkpoints land at k*F strictly before completion; one exactly at
    # the finish line is never taken (from_pmf's k_max cap, elementwise).
    k_max = np.ceil(T / col - 1e-12) - 1.0
    n_ckpts = np.minimum(
        np.floor(productive / col + 1e-12), np.maximum(0.0, k_max)
    )
    wall = productive + spec.checkpoint_overhead * n_ckpts
    # ratio_array's formula, broadcast: saved progress, capped restart.
    saved = np.floor(productive / col) * col
    ratios = np.minimum(
        1.0, (T - saved + spec.recovery_overhead) / T
    )
    ratios = np.where(productive < col, 1.0, ratios)
    ratios = np.where(productive >= T - _COMPLETE_ATOL, 0.0, ratios)
    ratios[:, n_steps] = 0.0  # completion, regardless of grid rounding
    return productive, wall, ratios


def optimal_interval_grid(
    spec: CircleGroupSpec,
    bid: float,
    failure_model,
    ondemand: OnDemandOption,
    step_hours: float = 1.0,
    refine: bool = True,
) -> float:
    """``phi(P)`` with the refinement scan as one array program.

    Drop-in replacement for :func:`repro.core.interval.optimal_interval`
    (identical signature and return value): the candidate set, the
    single-group objective and the sequential winner rule are the
    scalar path's; only the per-candidate outcome tables are built in
    one :func:`outcome_grid` call instead of one
    ``GroupOutcome.from_pmf`` per candidate.  The per-candidate
    expectations stay 1-D ``np.dot`` per row — the scalar path's exact
    reduction — so the costs, and therefore the winning interval, are
    bit-identical.
    """
    young = young_interval(
        spec.checkpoint_overhead, failure_model.mttf_hours(bid), spec.exec_time
    )
    if not refine:
        return young
    candidates = _interval_candidates(spec, young, step_hours)
    n = max(1, int(np.ceil(spec.exec_time / step_hours)))
    pmf = failure_model.failure_pmf(bid, n)
    price = failure_model.expected_price(bid)
    _, wall, ratios = outcome_grid(spec, candidates, pmf.size - 1, step_hours)
    full_run_cost = ondemand.full_run_cost
    n_instances = spec.n_instances
    best_f, best_cost = young, math.inf
    for c in range(candidates.size):
        cost = price * n_instances * float(
            np.dot(pmf, wall[c])
        ) + full_run_cost * float(np.dot(pmf, ratios[c]))
        if cost < best_cost - 1e-12:
            best_cost, best_f = cost, float(candidates[c])
    return best_f


def subset_bounds(
    min_spot: np.ndarray,
    min_ratio: np.ndarray,
    min_wall: np.ndarray,
    subsets: np.ndarray,
    full_run_cost: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Admissible lower bounds for a whole ``(subsets, k)`` index matrix.

    ``min_spot`` / ``min_ratio`` / ``min_wall`` are the per-group floors
    (``e_spot.min()`` etc. of each group table); ``subsets`` holds group
    indices, one subset per row.  Returns ``(cost_bounds,
    time_bounds)``.  The accumulations run position by position in
    subset order — the identical float operation sequence as the scalar
    ``_subset_bound`` (``sum`` from zero, product from one, running
    ``max``) — so each bound equals its scalar counterpart bitwise and
    incumbent pruning decisions are unchanged.
    """
    idx = np.asarray(subsets, dtype=np.intp)
    if idx.ndim != 2 or idx.size == 0:
        raise ConfigurationError("subsets must be a non-empty (S, k) matrix")
    n_subsets, k = idx.shape
    spot = np.zeros(n_subsets)
    ratio = np.ones(n_subsets)
    wall = np.asarray(min_wall, dtype=float)[idx[:, 0]].astype(float, copy=True)
    for j in range(k):
        spot += np.asarray(min_spot, dtype=float)[idx[:, j]]
        ratio *= np.asarray(min_ratio, dtype=float)[idx[:, j]]
        if j > 0:
            np.maximum(wall, np.asarray(min_wall, dtype=float)[idx[:, j]], out=wall)
    return spot + ratio * full_run_cost, wall
