"""Checkpoint timeline arithmetic shared by the cost model and the replay.

The execution of one circle group alternates work and checkpoints:

``F`` hours of work, then an ``O``-hour checkpoint, repeated; checkpoints
land at productive times ``F, 2F, ...`` strictly *before* completion (a
checkpoint exactly at the finish line is never taken).  The helpers here
convert between productive time, wall time and checkpoint counts, and
are the single source of truth for that timeline — the analytic model
and the trace replay must agree on it or the Section 5.4.1 accuracy
study would measure our bugs instead of the model error.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


def checkpoints_completed(productive: float, exec_time: float, interval: float) -> int:
    """Checkpoints finished by productive time ``productive``.

    Checkpoints happen at ``k * interval`` for ``k >= 1`` while that is
    strictly less than ``exec_time``.
    """
    _check(exec_time, interval)
    if productive < 0:
        raise ConfigurationError(f"productive must be >= 0, got {productive}")
    k = math.floor(productive / interval + 1e-12)
    # A multiple of F at (or beyond) the finish line is not taken.
    while k >= 1 and k * interval >= exec_time - 1e-12:
        k -= 1
    return k


def wall_for_productive(
    productive: float, exec_time: float, interval: float, overhead: float
) -> float:
    """Wall hours to reach productive time ``productive`` (checkpoints done
    along the way included)."""
    k = checkpoints_completed(productive, exec_time, interval)
    return productive + overhead * k


def total_wall(exec_time: float, interval: float, overhead: float) -> float:
    """Wall hours of a failure-free run to completion."""
    return wall_for_productive(exec_time, exec_time, interval, overhead)


def progress_after_wall(
    wall: float, exec_time: float, interval: float, overhead: float
) -> tuple[float, float, int]:
    """Invert the timeline: given ``wall`` available hours, return
    ``(productive, saved, n_checkpoints)``.

    ``productive`` is the work done (capped at ``exec_time``); ``saved``
    is the checkpoint-protected prefix (what survives a failure at this
    instant — work past the last completed checkpoint is lost, and time
    spent *inside* a checkpoint protects nothing new).
    """
    _check(exec_time, interval)
    if wall < 0:
        raise ConfigurationError(f"wall must be >= 0, got {wall}")
    done_wall = total_wall(exec_time, interval, overhead)
    if wall >= done_wall - 1e-12:
        return exec_time, exec_time, checkpoints_completed(
            exec_time, exec_time, interval
        )
    cycle = interval + overhead
    k_full = int(math.floor(wall / cycle + 1e-12))
    rem = wall - k_full * cycle
    # Checkpoints at/after the finish line never happen, so a "cycle"
    # boundary beyond exec_time is pure work; handle by capping work.
    if rem <= interval + 1e-12:
        productive = k_full * interval + rem
        n_ckpt = k_full
    else:
        productive = (k_full + 1) * interval  # mid-checkpoint: work stalled
        n_ckpt = k_full
    productive = min(productive, exec_time)
    # The last completed checkpoint may be fewer than floor(p/F) when the
    # failure interrupts a checkpoint in progress; n_ckpt already tracks it.
    saved = min(n_ckpt * interval, productive)
    return productive, saved, n_ckpt


def _check(exec_time: float, interval: float) -> None:
    if exec_time <= 0:
        raise ConfigurationError(f"exec_time must be > 0, got {exec_time}")
    if interval <= 0:
        raise ConfigurationError(f"interval must be > 0, got {interval}")
