"""Chance constraints: the distribution behind the expectations (extension).

The paper constrains the *expected* execution time.  An expectation can
hide a fat tail — a plan that usually finishes early but occasionally
blows through the deadline satisfies ``E[Time] <= Deadline`` while
missing often.  This module samples the joint outcome distribution of a
decision (cheap: failure times are independent across groups with known
marginals) and exposes

* :func:`miss_probability` — ``P(Time > Deadline)``, usable as an extra
  constraint in the two-level optimizer
  (``SompiConfig.max_miss_probability``), and
* :func:`cost_quantile` — tail cost estimates for risk reporting.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .cost_model import GroupOutcome
from .problem import OnDemandOption


def sample_outcomes(
    outcomes: Sequence[GroupOutcome],
    ondemand: OnDemandOption,
    n_samples: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``(costs, times)`` samples from the model's joint distribution.

    Group failure times are independent (the paper's zone-independence
    assumption), so the joint sample is one marginal draw per group; the
    hybrid min/max coupling is then applied per sample exactly as in the
    analytic formulas.
    """
    if not outcomes:
        raise ConfigurationError("need at least one group outcome")
    if n_samples < 1:
        raise ConfigurationError(f"n_samples must be >= 1, got {n_samples}")
    g = len(outcomes)
    walls = np.empty((g, n_samples))
    ratios = np.empty((g, n_samples))
    spot_costs = np.zeros(n_samples)
    for i, o in enumerate(outcomes):
        idx = rng.choice(o.pmf.size, size=n_samples, p=o.pmf)
        walls[i] = o.wall[idx]
        ratios[i] = o.ratios[idx]
        spot_costs += o.expected_price * o.spec.n_instances * walls[i]
    min_ratio = ratios.min(axis=0)
    times = walls.max(axis=0) + min_ratio * ondemand.exec_time
    costs = spot_costs + min_ratio * ondemand.full_run_cost
    return costs, times


def miss_probability(
    outcomes: Sequence[GroupOutcome],
    ondemand: OnDemandOption,
    deadline: float,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> float:
    """``P(Time > Deadline)`` under the model's joint distribution."""
    rng = rng or np.random.default_rng(0)
    _costs, times = sample_outcomes(outcomes, ondemand, n_samples, rng)
    return float(np.mean(times > deadline + 1e-9))


def cost_quantile(
    outcomes: Sequence[GroupOutcome],
    ondemand: OnDemandOption,
    q: float,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> float:
    """The ``q``-quantile of the cost distribution (e.g. q=0.95)."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"q must be in [0, 1], got {q}")
    rng = rng or np.random.default_rng(0)
    costs, _times = sample_outcomes(outcomes, ondemand, n_samples, rng)
    return float(np.quantile(costs, q))
