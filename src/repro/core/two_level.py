"""Two-level optimization (Section 4.2).

Level 1 — *dimension reduction*: for every group and every candidate bid,
the checkpoint interval is fixed to ``phi(P)`` (:mod:`.interval`), so the
search runs over bids alone.

Level 2 — *logarithmic bid search*: each group contributes ``L + 1``
geometric bid candidates; a subset of ``k`` groups therefore has
``(L+1)**k`` bid combinations.  All combinations are evaluated **at
once** with NumPy broadcasting:

* the separable spot cost is a sum of per-(group, bid) scalars,
* ``E[min_i Ratio_i]`` is a product of per-(group, bid) survival rows on
  a shared midpoint grid, and
* ``E[max_i X_i]`` is a product of per-(group, bid) CDF rows likewise,

so one subset evaluation is a handful of ``(combos, grid)`` array
products instead of ``(L+1)**k`` python-level model evaluations.  The
grid introduces a small quadrature error, so the winning combination is
re-evaluated exactly (and, if the exact check violates the deadline, the
next-best candidates are tried in order).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, SompiConfig
from ..errors import ConfigurationError
from ..market.failure import FailureModel
from ..market.history import MarketKey
from .bid_search import log_bid_candidates
from .cost_model import Expectation, GroupOutcome, evaluate
from .interval import optimal_interval
from .problem import Decision, GroupDecision, OnDemandOption, Problem

_RATIO_GRID = 256
_WALL_GRID = 256
_MAX_BATCH = 65536
_EXACT_FALLBACK_TRIES = 32


@dataclass
class _GroupTable:
    """Per-group precomputation: one row per candidate bid."""

    group_index: int
    bids: np.ndarray  # (nb,)
    intervals: np.ndarray  # (nb,)
    outcomes: list[GroupOutcome]
    e_spot: np.ndarray  # (nb,) expected spot cost S*M*E[X]
    surv_ratio: np.ndarray  # (nb, RATIO_GRID) P(ratio >= midpoint)
    surv_wall: np.ndarray  # (nb, WALL_GRID)  P(wall  >= midpoint)

    @property
    def n_bids(self) -> int:
        return int(self.bids.size)


@dataclass(frozen=True)
class SubsetResult:
    """Best decision found for one fixed subset of circle groups."""

    group_indices: Tuple[int, ...]
    bids: Tuple[float, ...]
    intervals: Tuple[float, ...]
    expectation: Expectation
    combos_evaluated: int

    def to_decision(self, ondemand_index: int) -> Decision:
        return Decision(
            groups=tuple(
                GroupDecision(gi, bid, interval)
                for gi, bid, interval in zip(
                    self.group_indices, self.bids, self.intervals
                )
            ),
            ondemand_index=ondemand_index,
        )


def _survival_rows(values: np.ndarray, pmf: np.ndarray, midpoints: np.ndarray) -> np.ndarray:
    """``P(Y >= m)`` for each midpoint, one discrete RV."""
    order = np.argsort(values, kind="stable")
    vs, ps = values[order], pmf[order]
    tail = np.cumsum(ps[::-1])[::-1]
    idx = np.searchsorted(vs, midpoints, side="left")
    out = np.zeros(midpoints.size)
    inside = idx < vs.size
    out[inside] = tail[idx[inside]]
    return out


class TwoLevelOptimizer:
    """Optimizes bids and intervals for subsets of circle groups."""

    def __init__(
        self,
        problem: Problem,
        failure_models: Mapping[MarketKey, FailureModel],
        ondemand: OnDemandOption,
        config: SompiConfig = DEFAULT_CONFIG,
    ) -> None:
        self.problem = problem
        self.ondemand = ondemand
        self.config = config
        self._models: dict[int, FailureModel] = {}
        for i, spec in enumerate(problem.groups):
            try:
                self._models[i] = failure_models[spec.key]
            except KeyError:
                raise ConfigurationError(
                    f"no failure model supplied for market {spec.key}"
                ) from None
        self._tables: dict[int, _GroupTable] = {}
        self._grids_ready = False
        self.combos_evaluated = 0

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _build_tables(self) -> None:
        """Build all group tables and the shared quadrature grids."""
        if self._grids_ready:
            return
        step = self.config.time_step_hours
        raw: dict[int, tuple[np.ndarray, np.ndarray, list[GroupOutcome]]] = {}
        wall_hi = 0.0
        for i, spec in enumerate(self.problem.groups):
            fm = self._models[i]
            bids = log_bid_candidates(
                fm.max_price(), self.config.bid_levels, floor_price=fm.min_price()
            )
            intervals = np.empty(bids.size)
            outcomes: list[GroupOutcome] = []
            for b, bid in enumerate(bids):
                if not self.config.checkpointing:
                    interval = spec.exec_time  # w/o-CK ablation: no checkpoints
                else:
                    interval = optimal_interval(
                        spec,
                        float(bid),
                        fm,
                        self.ondemand,
                        step_hours=step,
                        refine=self.config.interval_refine,
                    )
                outcome = GroupOutcome.build(spec, float(bid), interval, fm, step)
                intervals[b] = interval
                outcomes.append(outcome)
                wall_hi = max(wall_hi, float(outcome.wall.max()))
            raw[i] = (bids, intervals, outcomes)

        wall_hi = max(wall_hi, 1e-9)
        ratio_mid = (np.arange(_RATIO_GRID) + 0.5) / _RATIO_GRID  # over [0, 1]
        wall_mid = (np.arange(_WALL_GRID) + 0.5) * (wall_hi / _WALL_GRID)
        self._ratio_delta = 1.0 / _RATIO_GRID
        self._wall_delta = wall_hi / _WALL_GRID

        for i, (bids, intervals, outcomes) in raw.items():
            nb = bids.size
            e_spot = np.array([o.expected_spot_cost() for o in outcomes])
            surv_ratio = np.empty((nb, _RATIO_GRID))
            surv_wall = np.empty((nb, _WALL_GRID))
            for b, o in enumerate(outcomes):
                surv_ratio[b] = _survival_rows(o.ratios, o.pmf, ratio_mid)
                surv_wall[b] = _survival_rows(o.wall, o.pmf, wall_mid)
            self._tables[i] = _GroupTable(
                i, bids, intervals, outcomes, e_spot, surv_ratio, surv_wall
            )
        self._grids_ready = True

    def group_table(self, group_index: int) -> _GroupTable:
        """Expose a group's precomputed table (used by experiments)."""
        self._build_tables()
        return self._tables[group_index]

    # ------------------------------------------------------------------
    # Subset optimization
    # ------------------------------------------------------------------
    def optimize_subset(
        self,
        group_indices: Sequence[int],
        objective: str = "cost",
        budget: Optional[float] = None,
    ) -> Optional[SubsetResult]:
        """Best (bids, intervals) for this subset, or ``None`` if no bid
        combination satisfies the constraint in exact evaluation.

        ``objective="cost"`` (the paper's problem): minimise expected
        cost subject to expected time <= deadline.  ``objective="time"``
        (the dual, budget-constrained problem): minimise expected time
        subject to expected cost <= ``budget``.
        """
        indices = tuple(group_indices)
        if len(indices) == 0:
            raise ConfigurationError("subset must contain at least one group")
        if len(set(indices)) != len(indices):
            raise ConfigurationError(f"duplicate groups in subset {indices}")
        if objective not in ("cost", "time"):
            raise ConfigurationError(f"unknown objective {objective!r}")
        if objective == "time" and budget is None:
            raise ConfigurationError("objective='time' requires a budget")
        self._build_tables()
        tables = [self._tables[i] for i in indices]
        sizes = [t.n_bids for t in tables]
        total = int(np.prod(sizes))

        candidates: list[tuple[float, float, tuple[int, ...]]] = []

        for batch in _combo_batches(sizes, _MAX_BATCH):
            # batch: (C, k) integer bid indices
            cost_spot = np.zeros(batch.shape[0])
            surv_r = np.ones((batch.shape[0], _RATIO_GRID))
            prod_below_w = np.ones((batch.shape[0], _WALL_GRID))
            for g, table in enumerate(tables):
                rows = batch[:, g]
                cost_spot += table.e_spot[rows]
                surv_r *= table.surv_ratio[rows]
                prod_below_w *= 1.0 - table.surv_wall[rows]
            e_min_ratio = self._ratio_delta * surv_r.sum(axis=1)
            e_max_wall = self._wall_delta * (1.0 - prod_below_w).sum(axis=1)
            cost = cost_spot + e_min_ratio * self.ondemand.full_run_cost
            time = e_max_wall + e_min_ratio * self.ondemand.exec_time
            # Keep a slightly generous feasibility margin; the exact
            # re-evaluation below is the authority.
            if objective == "cost":
                constraint, score = time, cost
                limit = self.problem.deadline
            else:
                constraint, score = cost, time
                limit = budget
            feasible = np.flatnonzero(constraint <= limit * 1.02 + 1e-9)
            if feasible.size > _EXACT_FALLBACK_TRIES:
                top = np.argpartition(score[feasible], _EXACT_FALLBACK_TRIES)
                feasible = feasible[top[:_EXACT_FALLBACK_TRIES]]
            for c in feasible:
                candidates.append((float(score[c]), float(cost[c]), tuple(batch[c])))
        self.combos_evaluated += total

        if not candidates:
            return None
        candidates.sort(key=lambda item: item[0])
        for _score, _cost, combo in candidates[:_EXACT_FALLBACK_TRIES]:
            outcomes = [t.outcomes[b] for t, b in zip(tables, combo)]
            exact = evaluate(outcomes, self.ondemand)
            ok = (
                exact.meets_deadline(self.problem.deadline)
                if objective == "cost"
                else exact.cost <= budget + 1e-9
            )
            if ok and self.config.max_miss_probability is not None:
                from .chance import miss_probability

                ok = (
                    miss_probability(
                        outcomes, self.ondemand, self.problem.deadline
                    )
                    <= self.config.max_miss_probability + 1e-9
                )
            if ok:
                return SubsetResult(
                    group_indices=indices,
                    bids=tuple(float(t.bids[b]) for t, b in zip(tables, combo)),
                    intervals=tuple(
                        float(t.intervals[b]) for t, b in zip(tables, combo)
                    ),
                    expectation=exact,
                    combos_evaluated=total,
                )
        return None


def _combo_batches(sizes: Sequence[int], max_batch: int):
    """Yield (C, k) index arrays covering the product space in batches."""
    total = int(np.prod(sizes))
    k = len(sizes)
    if total <= max_batch:
        grids = np.indices(sizes).reshape(k, total).T
        yield np.ascontiguousarray(grids)
        return
    # Stream the product in chunks without materialising it all.
    it = itertools.product(*[range(s) for s in sizes])
    while True:
        chunk = list(itertools.islice(it, max_batch))
        if not chunk:
            return
        yield np.asarray(chunk, dtype=np.intp)
