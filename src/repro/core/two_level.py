"""Two-level optimization (Section 4.2).

Level 1 — *dimension reduction*: for every group and every candidate bid,
the checkpoint interval is fixed to ``phi(P)`` (:mod:`.interval`), so the
search runs over bids alone.

Level 2 — *logarithmic bid search*: each group contributes ``L + 1``
geometric bid candidates; a subset of ``k`` groups therefore has
``(L+1)**k`` bid combinations.  All combinations are evaluated **at
once** with NumPy broadcasting:

* the separable spot cost is a sum of per-(group, bid) scalars,
* ``E[min_i Ratio_i]`` is a product of per-(group, bid) survival rows on
  a shared midpoint grid, and
* ``E[max_i X_i]`` is a product of per-(group, bid) CDF rows likewise,

so one subset evaluation is a handful of ``(combos, grid)`` array
products instead of ``(L+1)**k`` python-level model evaluations.  The
grid introduces a small quadrature error, so the winning combination is
re-evaluated exactly (and, if the exact check violates the deadline, the
next-best candidates are tried in order).

Performance layer (see DESIGN.md "Performance"): the per-group tables
(bid candidates, refined intervals, outcome pmfs) depend only on
``(market, spec, ondemand cost, config)`` — not on the deadline — so
they are shared across optimizer instances through a cache that lives
with each group's :class:`FailureModel`.  Subset score vectors and exact
re-evaluations are likewise memoised, and ``optimize_subset`` accepts an
incumbent bound (``prune_above``) that lets the subset search skip
combinations that provably cannot beat the best feasible cost found so
far.  All caches are exact and every pruning bound is admissible, so
results are bit-identical with the caches and pruning disabled.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import DEFAULT_CONFIG, SompiConfig
from ..errors import ConfigurationError
from ..market.failure import FailureModel
from ..market.history import MarketKey
from .bid_search import log_bid_candidates
from .cost_model import Expectation, GroupOutcome, evaluate
from .interval import optimal_interval
from .problem import Decision, GroupDecision, OnDemandOption, Problem

_RATIO_GRID = 256
_WALL_GRID = 256
_MAX_BATCH = 65536
_EXACT_FALLBACK_TRIES = 32

#: Relative safety margin applied to the admissible pruning bound before
#: a subset is skipped.  The bound is mathematically a true lower bound;
#: the margin absorbs last-ulp float differences between the bound's
#: summation order and the exact evaluator's, so pruning can never drop
#: a combination that exact evaluation would have scored strictly below
#: the incumbent.
_PRUNE_MARGIN = 1e-9


# ----------------------------------------------------------------------
# Cross-instance caches
# ----------------------------------------------------------------------
# The expensive per-group precomputation (interval refinement + outcome
# pmfs) is keyed by everything that enters it and stored *with the
# failure model* (weakly), so fig5/fig6/fig7/fig8 and Algorithm 1's
# windowed re-optimisation stop rebuilding identical tables.  A new
# trace means a new FailureModel means a fresh cache — no invalidation
# rules to get wrong.  Subset score vectors and exact re-evaluations are
# capped dicts, cleared wholesale when full (they are pure caches).

_RAW_TABLE_CACHE: "weakref.WeakKeyDictionary[FailureModel, dict]" = (
    weakref.WeakKeyDictionary()
)
_token_counter = itertools.count()

_SUBSET_EVAL_CACHE: dict = {}
_SUBSET_EVAL_CACHE_MAX = 2048
_EXACT_EVAL_CACHE: dict = {}
_EXACT_EVAL_CACHE_MAX = 65536


# Other layers (e.g. the replay kernels' per-(trace, bid) index tables)
# register their cache clearers here so clear_shared_caches() stays the
# single switch for "drop every shared cache" without this module having
# to import them (which would cycle).
_EXTERNAL_CACHE_CLEARERS: list = []


def register_cache_clearer(fn) -> None:
    """Register a callable to be invoked by :func:`clear_shared_caches`."""
    if fn not in _EXTERNAL_CACHE_CLEARERS:
        _EXTERNAL_CACHE_CLEARERS.append(fn)


def clear_shared_caches() -> None:
    """Drop every cross-instance planner cache (tests, memory pressure)."""
    _RAW_TABLE_CACHE.clear()
    _SUBSET_EVAL_CACHE.clear()
    _EXACT_EVAL_CACHE.clear()
    for fn in _EXTERNAL_CACHE_CLEARERS:
        fn()


@dataclass
class _RawGroupEntry:
    """Deadline-independent per-group precomputation, shareable across
    optimizer instances (cached per failure model)."""

    token: int  # unique id for downstream cache keys
    bids: np.ndarray
    intervals: np.ndarray
    outcomes: list[GroupOutcome]
    e_spot: np.ndarray  # (nb,) expected spot cost S*M*E[X]
    e_wall: np.ndarray  # (nb,) expected wall time E[X]
    e_ratio: np.ndarray  # (nb,) expected recovery ratio E[Ratio]
    wall_max: float
    grids: dict = field(default_factory=dict)  # wall_hi -> (surv_ratio, surv_wall)


@dataclass
class _GroupTable:
    """Per-group precomputation: one row per candidate bid."""

    group_index: int
    bids: np.ndarray  # (nb,)
    intervals: np.ndarray  # (nb,)
    outcomes: list[GroupOutcome]
    e_spot: np.ndarray  # (nb,) expected spot cost S*M*E[X]
    e_wall: np.ndarray  # (nb,) expected wall time E[X]
    e_ratio: np.ndarray  # (nb,) expected recovery ratio E[Ratio]
    surv_ratio: np.ndarray  # (nb, RATIO_GRID) P(ratio >= midpoint)
    surv_wall: np.ndarray  # (nb, WALL_GRID)  P(wall  >= midpoint)
    token: int = -1

    @property
    def n_bids(self) -> int:
        return int(self.bids.size)


@dataclass(frozen=True)
class SubsetResult:
    """Best decision found for one fixed subset of circle groups."""

    group_indices: Tuple[int, ...]
    bids: Tuple[float, ...]
    intervals: Tuple[float, ...]
    expectation: Expectation
    combos_evaluated: int

    def to_decision(self, ondemand_index: int) -> Decision:
        return Decision(
            groups=tuple(
                GroupDecision(gi, bid, interval)
                for gi, bid, interval in zip(
                    self.group_indices, self.bids, self.intervals
                )
            ),
            ondemand_index=ondemand_index,
        )


def _survival_rows(values: np.ndarray, pmf: np.ndarray, midpoints: np.ndarray) -> np.ndarray:
    """``P(Y >= m)`` for each midpoint, one discrete RV."""
    order = np.argsort(values, kind="stable")
    vs, ps = values[order], pmf[order]
    tail = np.cumsum(ps[::-1])[::-1]
    idx = np.searchsorted(vs, midpoints, side="left")
    out = np.zeros(midpoints.size)
    inside = idx < vs.size
    out[inside] = tail[idx[inside]]
    return out


class TwoLevelOptimizer:
    """Optimizes bids and intervals for subsets of circle groups."""

    def __init__(
        self,
        problem: Problem,
        failure_models: Mapping[MarketKey, FailureModel],
        ondemand: OnDemandOption,
        config: SompiConfig = DEFAULT_CONFIG,
    ) -> None:
        self.problem = problem
        self.ondemand = ondemand
        self.config = config
        self._models: dict[int, FailureModel] = {}
        for i, spec in enumerate(problem.groups):
            try:
                self._models[i] = failure_models[spec.key]
            except KeyError:
                raise ConfigurationError(
                    f"no failure model supplied for market {spec.key}"
                ) from None
        self._tables: dict[int, _GroupTable] = {}
        self._grids_ready = False
        self._wall_hi = 0.0
        self.combos_evaluated = 0
        self.subsets_pruned = 0

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _entry_key(self, spec) -> tuple:
        """Everything the per-group table computation reads."""
        cfg = self.config
        return (
            spec.key,
            spec.n_instances,
            spec.exec_time,
            spec.checkpoint_overhead,
            spec.recovery_overhead,
            self.ondemand.full_run_cost,
            cfg.bid_levels,
            cfg.time_step_hours,
            cfg.interval_refine,
            cfg.checkpointing,
        )

    def _raw_entry(self, fm: FailureModel, spec) -> _RawGroupEntry:
        use_cache = self.config.table_cache
        key = self._entry_key(spec)
        per_model: Optional[dict] = None
        if use_cache:
            per_model = _RAW_TABLE_CACHE.get(fm)
            if per_model is None:
                per_model = {}
                _RAW_TABLE_CACHE[fm] = per_model
            entry = per_model.get(key)
            if entry is not None:
                obs.get_metrics().inc("cache.table_hits")
                return entry
            obs.get_metrics().inc("cache.table_misses")

        step = self.config.time_step_hours
        bids = log_bid_candidates(
            fm.max_price(), self.config.bid_levels, floor_price=fm.min_price()
        )
        intervals = np.empty(bids.size)
        outcomes: list[GroupOutcome] = []
        wall_max = 0.0
        for b, bid in enumerate(bids):
            if not self.config.checkpointing:
                interval = spec.exec_time  # w/o-CK ablation: no checkpoints
            else:
                interval = optimal_interval(
                    spec,
                    float(bid),
                    fm,
                    self.ondemand,
                    step_hours=step,
                    refine=self.config.interval_refine,
                )
            outcome = GroupOutcome.build(spec, float(bid), interval, fm, step)
            intervals[b] = interval
            outcomes.append(outcome)
            wall_max = max(wall_max, float(outcome.wall.max()))
        entry = _RawGroupEntry(
            token=next(_token_counter),
            bids=bids,
            intervals=intervals,
            outcomes=outcomes,
            e_spot=np.array([o.expected_spot_cost() for o in outcomes]),
            e_wall=np.array([float(np.dot(o.pmf, o.wall)) for o in outcomes]),
            e_ratio=np.array([float(np.dot(o.pmf, o.ratios)) for o in outcomes]),
            wall_max=wall_max,
        )
        if per_model is not None:
            per_model[key] = entry
        return entry

    def _build_tables(self) -> None:
        """Build all group tables and the shared quadrature grids."""
        if self._grids_ready:
            return
        entries = {
            i: self._raw_entry(self._models[i], spec)
            for i, spec in enumerate(self.problem.groups)
        }
        wall_hi = 0.0
        for entry in entries.values():
            wall_hi = max(wall_hi, entry.wall_max)

        wall_hi = max(wall_hi, 1e-9)
        ratio_mid = (np.arange(_RATIO_GRID) + 0.5) / _RATIO_GRID  # over [0, 1]
        wall_mid = (np.arange(_WALL_GRID) + 0.5) * (wall_hi / _WALL_GRID)
        self._ratio_delta = 1.0 / _RATIO_GRID
        self._wall_delta = wall_hi / _WALL_GRID
        self._wall_hi = wall_hi

        for i, entry in entries.items():
            grids = entry.grids.get(wall_hi) if self.config.table_cache else None
            if grids is None:
                nb = entry.bids.size
                surv_ratio = np.empty((nb, _RATIO_GRID))
                surv_wall = np.empty((nb, _WALL_GRID))
                for b, o in enumerate(entry.outcomes):
                    surv_ratio[b] = _survival_rows(o.ratios, o.pmf, ratio_mid)
                    surv_wall[b] = _survival_rows(o.wall, o.pmf, wall_mid)
                grids = (surv_ratio, surv_wall)
                if self.config.table_cache:
                    entry.grids[wall_hi] = grids
            self._tables[i] = _GroupTable(
                i,
                entry.bids,
                entry.intervals,
                entry.outcomes,
                entry.e_spot,
                entry.e_wall,
                entry.e_ratio,
                grids[0],
                grids[1],
                entry.token,
            )
        self._grids_ready = True

    def group_table(self, group_index: int) -> _GroupTable:
        """Expose a group's precomputed table (used by experiments)."""
        self._build_tables()
        return self._tables[group_index]

    # ------------------------------------------------------------------
    # Pruning bound
    # ------------------------------------------------------------------
    def _subset_bound(self, tables: Sequence[_GroupTable], objective: str) -> float:
        """Admissible lower bound on the subset's best exact score.

        ``cost``: every combo pays at least each group's cheapest spot
        bill, and the on-demand recovery term satisfies
        ``E[min_i R_i] >= prod_i E[R_i]`` (``min(a, b) >= a * b`` for
        values in ``[0, 1]``, then independence), so
        ``sum_i min_b e_spot + D * prod_i min_b E[R]`` is admissible.

        ``time``: ``E[max_i X_i] >= E[X_i] >= min_b E[X_i(b)]`` for any
        group, so the largest per-group floor is admissible.
        """
        if objective == "cost":
            spot_floor = sum(float(t.e_spot.min()) for t in tables)
            ratio_floor = 1.0
            for t in tables:
                ratio_floor *= float(t.e_ratio.min())
            return spot_floor + ratio_floor * self.ondemand.full_run_cost
        return max(float(t.e_wall.min()) for t in tables)

    # ------------------------------------------------------------------
    # Subset optimization
    # ------------------------------------------------------------------
    def optimize_subset(
        self,
        group_indices: Sequence[int],
        objective: str = "cost",
        budget: Optional[float] = None,
        prune_above: Optional[float] = None,
    ) -> Optional[SubsetResult]:
        """Best (bids, intervals) for this subset, or ``None`` if no bid
        combination satisfies the constraint in exact evaluation.

        ``objective="cost"`` (the paper's problem): minimise expected
        cost subject to expected time <= deadline.  ``objective="time"``
        (the dual, budget-constrained problem): minimise expected time
        subject to expected cost <= ``budget``.

        ``prune_above`` is an incumbent score (best feasible cost/time
        found so far by the caller's subset traversal): when the subset's
        admissible lower bound cannot beat it, the whole evaluation is
        skipped and ``None`` is returned.  Because the bound is a true
        lower bound on the *exact* score, a pruned subset could never
        have replaced the incumbent, so the traversal's final result is
        unchanged.
        """
        indices = tuple(group_indices)
        if len(indices) == 0:
            raise ConfigurationError("subset must contain at least one group")
        if len(set(indices)) != len(indices):
            raise ConfigurationError(f"duplicate groups in subset {indices}")
        if objective not in ("cost", "time"):
            raise ConfigurationError(f"unknown objective {objective!r}")
        if objective == "time" and budget is None:
            raise ConfigurationError("objective='time' requires a budget")
        self._build_tables()
        tables = [self._tables[i] for i in indices]
        sizes = [t.n_bids for t in tables]
        total = int(np.prod(sizes))
        # Counts the search-space coverage (the paper's "bid combinations
        # traversed"), not the arithmetic actually performed — pruned and
        # cache-served combinations are still logically covered.
        self.combos_evaluated += total

        if prune_above is not None:
            bound = self._subset_bound(tables, objective)
            if bound >= prune_above * (1.0 + _PRUNE_MARGIN) + 1e-12:
                self.subsets_pruned += 1
                return None

        candidates: list[tuple[float, float, tuple[int, ...]]] = []

        for batch, cost, time in self._scored_batches(
            tables, sizes, total, objective, prune_above
        ):
            if objective == "cost":
                constraint, score = time, cost
                limit = self.problem.deadline
            else:
                constraint, score = cost, time
                limit = budget
            # Keep a slightly generous feasibility margin; the exact
            # re-evaluation below is the authority.
            feasible = np.flatnonzero(constraint <= limit * 1.02 + 1e-9)
            if feasible.size > _EXACT_FALLBACK_TRIES:
                top = np.argpartition(score[feasible], _EXACT_FALLBACK_TRIES)
                feasible = feasible[top[:_EXACT_FALLBACK_TRIES]]
            for c in feasible:
                candidates.append((float(score[c]), float(cost[c]), tuple(batch[c])))

        if not candidates:
            return None
        candidates.sort(key=lambda item: item[0])
        for _score, _cost, combo in candidates[:_EXACT_FALLBACK_TRIES]:
            outcomes = [t.outcomes[b] for t, b in zip(tables, combo)]
            exact = self._evaluate_exact(tables, combo, outcomes)
            ok = (
                exact.meets_deadline(self.problem.deadline)
                if objective == "cost"
                else exact.cost <= budget + 1e-9
            )
            if ok and self.config.max_miss_probability is not None:
                from .chance import miss_probability

                ok = (
                    miss_probability(
                        outcomes, self.ondemand, self.problem.deadline
                    )
                    <= self.config.max_miss_probability + 1e-9
                )
            if ok:
                return SubsetResult(
                    group_indices=indices,
                    bids=tuple(float(t.bids[b]) for t, b in zip(tables, combo)),
                    intervals=tuple(
                        float(t.intervals[b]) for t, b in zip(tables, combo)
                    ),
                    expectation=exact,
                    combos_evaluated=total,
                )
        return None

    # ------------------------------------------------------------------
    def _scored_batches(
        self,
        tables: Sequence[_GroupTable],
        sizes: Sequence[int],
        total: int,
        objective: str,
        prune_above: Optional[float],
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(batch, cost, time)`` score vectors for the subset.

        Single-batch subsets (the common case) are served from / stored
        into the shared score cache, because the score vectors depend
        only on the group tables — not on deadline or budget.  Whole
        batches whose *separable* spot cost already exceeds the incumbent
        are skipped before the grid products: every combination they
        contain has exact cost >= its spot cost, and their approximate
        scores likewise, so the skipped candidates sort strictly after
        every candidate that could still beat the incumbent — dropping
        them cannot change which combination the exact fallback returns
        to the traversal.
        """
        cache_key = None
        if self.config.table_cache and total <= _MAX_BATCH:
            cache_key = (tuple(t.token for t in tables), self._wall_hi)
            cached = _SUBSET_EVAL_CACHE.get(cache_key)
            if cached is not None:
                obs.get_metrics().inc("cache.subset_hits")
                yield cached
                return
            obs.get_metrics().inc("cache.subset_misses")

        for batch in _combo_batches(sizes, _MAX_BATCH):
            cost_spot = np.zeros(batch.shape[0])
            for g, table in enumerate(tables):
                cost_spot += table.e_spot[batch[:, g]]
            if (
                prune_above is not None
                and objective == "cost"
                and float(cost_spot.min()) >= prune_above
            ):
                # Applies to cacheable batches too (lazy fill): the
                # cache entry simply stays unfilled until some caller
                # actually needs the full score vectors.  Skipping the
                # grid products here was previously disabled when the
                # batch was cacheable, which made the *cold* cache-on
                # path measurably slower than the cache-off seed path.
                continue
            surv_r = np.ones((batch.shape[0], _RATIO_GRID))
            prod_below_w = np.ones((batch.shape[0], _WALL_GRID))
            for g, table in enumerate(tables):
                rows = batch[:, g]
                surv_r *= table.surv_ratio[rows]
                prod_below_w *= 1.0 - table.surv_wall[rows]
            e_min_ratio = self._ratio_delta * surv_r.sum(axis=1)
            e_max_wall = self._wall_delta * (1.0 - prod_below_w).sum(axis=1)
            cost = cost_spot + e_min_ratio * self.ondemand.full_run_cost
            time = e_max_wall + e_min_ratio * self.ondemand.exec_time
            if cache_key is not None:
                if len(_SUBSET_EVAL_CACHE) >= _SUBSET_EVAL_CACHE_MAX:
                    _SUBSET_EVAL_CACHE.clear()
                _SUBSET_EVAL_CACHE[cache_key] = (batch, cost, time)
            yield batch, cost, time

    def _evaluate_exact(
        self,
        tables: Sequence[_GroupTable],
        combo: Tuple[int, ...],
        outcomes: Sequence[GroupOutcome],
    ) -> Expectation:
        """Exact re-evaluation of one combination, memoised across
        optimizer instances (the Expectation depends only on the group
        outcomes and the on-demand option, both part of the key)."""
        if not self.config.table_cache:
            return evaluate(outcomes, self.ondemand)
        key = (
            tuple(t.token for t in tables),
            combo,
            self.ondemand.full_run_cost,
            self.ondemand.exec_time,
        )
        exact = _EXACT_EVAL_CACHE.get(key)
        if exact is None:
            obs.get_metrics().inc("cache.exact_misses")
            exact = evaluate(outcomes, self.ondemand)
            if len(_EXACT_EVAL_CACHE) >= _EXACT_EVAL_CACHE_MAX:
                _EXACT_EVAL_CACHE.clear()
            _EXACT_EVAL_CACHE[key] = exact
        else:
            obs.get_metrics().inc("cache.exact_hits")
        return exact


def _combo_batches(sizes: Sequence[int], max_batch: int):
    """Yield (C, k) index arrays covering the product space in batches.

    Both paths enumerate the product space in row-major order (last
    index fastest, matching ``itertools.product``); the streaming path
    decodes flat indices arithmetically instead of materialising python
    tuples, so even huge spaces stream as pure array work.
    """
    total = int(np.prod(sizes))
    k = len(sizes)
    if total <= max_batch:
        grids = np.indices(sizes).reshape(k, total).T
        yield np.ascontiguousarray(grids)
        return
    # Stream the product in chunks: decode flat indices lo..hi into
    # mixed-radix digits (row-major, matching itertools.product order).
    radix = np.asarray(sizes, dtype=np.intp)
    divisors = np.ones(k, dtype=np.intp)
    for j in range(k - 2, -1, -1):
        divisors[j] = divisors[j + 1] * radix[j + 1]
    for lo in range(0, total, max_batch):
        flat = np.arange(lo, min(lo + max_batch, total), dtype=np.intp)
        yield (flat[:, None] // divisors[None, :]) % radix[None, :]
