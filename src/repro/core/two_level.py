"""Two-level optimization (Section 4.2).

Level 1 — *dimension reduction*: for every group and every candidate bid,
the checkpoint interval is fixed to ``phi(P)`` (:mod:`.interval`), so the
search runs over bids alone.

Level 2 — *logarithmic bid search*: each group contributes ``L + 1``
geometric bid candidates; a subset of ``k`` groups therefore has
``(L+1)**k`` bid combinations.  All combinations are evaluated **at
once** with NumPy broadcasting:

* the separable spot cost is a sum of per-(group, bid) scalars,
* ``E[min_i Ratio_i]`` is a product of per-(group, bid) survival rows on
  a shared midpoint grid, and
* ``E[max_i X_i]`` is a product of per-(group, bid) CDF rows likewise,

so one subset evaluation is a handful of ``(combos, grid)`` array
products instead of ``(L+1)**k`` python-level model evaluations.  The
grid introduces a small quadrature error, so the winning combination is
re-evaluated exactly (and, if the exact check violates the deadline, the
next-best candidates are tried in order).

Performance layer (see DESIGN.md "Performance"): the per-group tables
(bid candidates, refined intervals, outcome pmfs) depend only on
``(market, spec, ondemand cost, config)`` — not on the deadline — so
they are shared across optimizer instances through a cache that lives
with each group's :class:`FailureModel`.  Subset score vectors and exact
re-evaluations are likewise memoised, and ``optimize_subset`` accepts an
incumbent bound (``prune_above``) that lets the subset search skip
combinations that provably cannot beat the best feasible cost found so
far.  All caches are exact and every pruning bound is admissible, so
results are bit-identical with the caches and pruning disabled.

Disk tier (DESIGN.md §10): every shared cache entry is keyed by a
*content token* — a hash of the trace content plus every scalar that
enters the computation — so keys survive process boundaries.  When
``config.artifact_cache`` is on, the per-problem table bundle, the
survival grids and the search sidecar (subset score vectors + exact
re-evaluations) are persisted to the on-disk artifact store
(:mod:`repro.execution.artifacts`): a cold process warms from disk
instead of rebuilding.  Loads are fail-open and artifacts store the
exact float64 arrays the build produced, so results are bit-identical
with the store on, off, deleted or corrupted mid-run.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import DEFAULT_CONFIG, SompiConfig
from ..errors import ConfigurationError
from ..market.failure import FailureModel
from ..market.history import MarketKey
from . import grid_eval
from .bid_search import log_bid_candidates
from .cost_model import Expectation, GroupOutcome, evaluate
from .interval import optimal_interval
from .keys import hash_key
from .problem import Decision, GroupDecision, OnDemandOption, Problem

_RATIO_GRID = 256
_WALL_GRID = 256
_MAX_BATCH = 65536
_EXACT_FALLBACK_TRIES = 32

#: Relative safety margin applied to the admissible pruning bound before
#: a subset is skipped.  The bound is mathematically a true lower bound;
#: the margin absorbs last-ulp float differences between the bound's
#: summation order and the exact evaluator's, so pruning can never drop
#: a combination that exact evaluation would have scored strictly below
#: the incumbent.
_PRUNE_MARGIN = 1e-9


# ----------------------------------------------------------------------
# Cross-instance caches
# ----------------------------------------------------------------------
# The expensive per-group precomputation (interval refinement + outcome
# pmfs) is keyed by everything that enters it and stored *with the
# failure model* (weakly), so fig5/fig6/fig7/fig8 and Algorithm 1's
# windowed re-optimisation stop rebuilding identical tables.  A new
# trace means a new FailureModel means a fresh cache — no invalidation
# rules to get wrong.  Subset score vectors and exact re-evaluations are
# capped dicts, cleared wholesale when full (they are pure caches);
# their keys are built from content tokens, so entries loaded from the
# on-disk sidecar and entries computed live are interchangeable.

_RAW_TABLE_CACHE: "weakref.WeakKeyDictionary[FailureModel, dict]" = (
    weakref.WeakKeyDictionary()
)

_SUBSET_EVAL_CACHE: dict = {}
_SUBSET_EVAL_CACHE_MAX = 2048
_EXACT_EVAL_CACHE: dict = {}
_EXACT_EVAL_CACHE_MAX = 65536

#: Sidecar artifact keys already merged into the process caches — a
#: second optimizer over the same scope skips the redundant disk read.
_SIDECAR_LOADED: set = set()


# Other layers (e.g. the replay kernels' per-(trace, bid) index tables)
# register their cache clearers here so clear_shared_caches() stays the
# single switch for "drop every shared cache" without this module having
# to import them (which would cycle).
_EXTERNAL_CACHE_CLEARERS: list = []


def register_cache_clearer(fn) -> None:
    """Register a callable to be invoked by :func:`clear_shared_caches`."""
    if fn not in _EXTERNAL_CACHE_CLEARERS:
        _EXTERNAL_CACHE_CLEARERS.append(fn)


def clear_shared_caches() -> None:
    """Drop every cross-instance planner cache (tests, memory pressure).

    Only *memory* is dropped — on-disk artifacts survive by design
    (that a cleared process re-warms from disk is the artifact store's
    whole point; tests simulate a truly cold machine by also pointing
    ``config.artifact_dir`` at an empty directory).
    """
    _RAW_TABLE_CACHE.clear()
    _SUBSET_EVAL_CACHE.clear()
    _EXACT_EVAL_CACHE.clear()
    _SIDECAR_LOADED.clear()
    for fn in _EXTERNAL_CACHE_CLEARERS:
        fn()


@dataclass
class _RawGroupEntry:
    """Deadline-independent per-group precomputation, shareable across
    optimizer instances (cached per failure model)."""

    token: str  # content hash keying downstream caches and artifacts
    bids: np.ndarray
    intervals: np.ndarray
    outcomes: list[GroupOutcome]
    e_spot: np.ndarray  # (nb,) expected spot cost S*M*E[X]
    e_wall: np.ndarray  # (nb,) expected wall time E[X]
    e_ratio: np.ndarray  # (nb,) expected recovery ratio E[Ratio]
    wall_max: float
    grids: dict = field(default_factory=dict)  # wall_hi -> (surv_ratio, surv_wall)


def _entry_to_arrays(entry: _RawGroupEntry, prefix: str) -> dict:
    """Flatten one entry into named arrays for the artifact bundle."""
    return {
        prefix + "bids": entry.bids,
        prefix + "intervals": entry.intervals,
        prefix + "e_spot": entry.e_spot,
        prefix + "e_wall": entry.e_wall,
        prefix + "e_ratio": entry.e_ratio,
        prefix + "wall_max": np.array([entry.wall_max]),
        prefix + "pmf": np.stack([o.pmf for o in entry.outcomes]),
        prefix + "price": np.array(
            [o.expected_price for o in entry.outcomes]
        ),
        prefix + "productive": np.stack(
            [o.productive for o in entry.outcomes]
        ),
        prefix + "wall": np.stack([o.wall for o in entry.outcomes]),
        prefix + "ratios": np.stack([o.ratios for o in entry.outcomes]),
    }


def _entry_from_arrays(
    arrays: dict, prefix: str, token: str, spec, step_hours: float
) -> Optional[_RawGroupEntry]:
    """Rebuild an entry from its persisted arrays; ``None`` on any
    schema damage (the caller falls open to a rebuild)."""
    try:
        bids = arrays[prefix + "bids"]
        intervals = arrays[prefix + "intervals"]
        pmf = arrays[prefix + "pmf"]
        price = arrays[prefix + "price"]
        productive = arrays[prefix + "productive"]
        wall = arrays[prefix + "wall"]
        ratios = arrays[prefix + "ratios"]
        nb = int(bids.size)
        if not (
            intervals.shape == (nb,)
            and price.shape == (nb,)
            and pmf.ndim == 2
            and pmf.shape[0] == nb
            and pmf.shape == productive.shape == wall.shape == ratios.shape
        ):
            return None
        outcomes = [
            GroupOutcome(
                spec=spec,
                bid=float(bids[b]),
                interval=float(intervals[b]),
                step_hours=step_hours,
                pmf=pmf[b],
                expected_price=float(price[b]),
                productive=productive[b],
                wall=wall[b],
                ratios=ratios[b],
            )
            for b in range(nb)
        ]
        return _RawGroupEntry(
            token=token,
            bids=bids,
            intervals=intervals,
            outcomes=outcomes,
            e_spot=arrays[prefix + "e_spot"],
            e_wall=arrays[prefix + "e_wall"],
            e_ratio=arrays[prefix + "e_ratio"],
            wall_max=float(arrays[prefix + "wall_max"][0]),
        )
    except (KeyError, IndexError, ValueError):
        return None


@dataclass
class _GroupTable:
    """Per-group precomputation: one row per candidate bid."""

    group_index: int
    bids: np.ndarray  # (nb,)
    intervals: np.ndarray  # (nb,)
    outcomes: list[GroupOutcome]
    e_spot: np.ndarray  # (nb,) expected spot cost S*M*E[X]
    e_wall: np.ndarray  # (nb,) expected wall time E[X]
    e_ratio: np.ndarray  # (nb,) expected recovery ratio E[Ratio]
    surv_ratio: np.ndarray  # (nb, RATIO_GRID) P(ratio >= midpoint)
    surv_wall: np.ndarray  # (nb, WALL_GRID)  P(wall  >= midpoint)
    token: str = ""

    @property
    def n_bids(self) -> int:
        return int(self.bids.size)


@dataclass(frozen=True)
class SubsetResult:
    """Best decision found for one fixed subset of circle groups."""

    group_indices: Tuple[int, ...]
    bids: Tuple[float, ...]
    intervals: Tuple[float, ...]
    expectation: Expectation
    combos_evaluated: int

    def to_decision(self, ondemand_index: int) -> Decision:
        return Decision(
            groups=tuple(
                GroupDecision(gi, bid, interval)
                for gi, bid, interval in zip(
                    self.group_indices, self.bids, self.intervals
                )
            ),
            ondemand_index=ondemand_index,
        )


def _survival_rows(values: np.ndarray, pmf: np.ndarray, midpoints: np.ndarray) -> np.ndarray:
    """``P(Y >= m)`` for each midpoint, one discrete RV."""
    order = np.argsort(values, kind="stable")
    vs, ps = values[order], pmf[order]
    tail = np.cumsum(ps[::-1])[::-1]
    idx = np.searchsorted(vs, midpoints, side="left")
    out = np.zeros(midpoints.size)
    inside = idx < vs.size
    out[inside] = tail[idx[inside]]
    return out


class TwoLevelOptimizer:
    """Optimizes bids and intervals for subsets of circle groups."""

    def __init__(
        self,
        problem: Problem,
        failure_models: Mapping[MarketKey, FailureModel],
        ondemand: OnDemandOption,
        config: SompiConfig = DEFAULT_CONFIG,
    ) -> None:
        self.problem = problem
        self.ondemand = ondemand
        self.config = config
        self._models: dict[int, FailureModel] = {}
        for i, spec in enumerate(problem.groups):
            try:
                self._models[i] = failure_models[spec.key]
            except KeyError:
                raise ConfigurationError(
                    f"no failure model supplied for market {spec.key}"
                ) from None
        self._tables: dict[int, _GroupTable] = {}
        self._grids_ready = False
        self._wall_hi = 0.0
        self._sidecar_key: Optional[str] = None
        self._sidecar_seen: set = set()
        self.combos_evaluated = 0
        self.subsets_pruned = 0
        self._store = None
        if config.table_cache and config.artifact_cache:
            from ..execution.artifacts import get_store

            self._store = get_store(config)

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _entry_key(self, spec) -> tuple:
        """Everything the per-group table computation reads."""
        cfg = self.config
        return (
            spec.key,
            spec.n_instances,
            spec.exec_time,
            spec.checkpoint_overhead,
            spec.recovery_overhead,
            self.ondemand.full_run_cost,
            cfg.bid_levels,
            cfg.time_step_hours,
            cfg.interval_refine,
            cfg.checkpointing,
        )

    def _group_token(self, fm: FailureModel, spec) -> str:
        """Content token: everything :meth:`_entry_key` pins plus the
        trace content and model discretisation, so equal tokens imply
        bit-identical tables — across optimizer instances *and* across
        processes (the artifact store's keying contract)."""
        return hash_key(
            fm.trace.content_hash(), fm.step_hours, fm.circular,
            self._entry_key(spec),
        )

    def _build_entry(
        self, fm: FailureModel, spec, token: str, bids: Optional[np.ndarray]
    ) -> _RawGroupEntry:
        """Compute one group's table from scratch (both cache tiers missed)."""
        step = self.config.time_step_hours
        if bids is None:
            bids = log_bid_candidates(
                fm.max_price(), self.config.bid_levels,
                floor_price=fm.min_price(),
            )
        intervals = np.empty(bids.size)
        outcomes: list[GroupOutcome] = []
        wall_max = 0.0
        for b, bid in enumerate(bids):
            if not self.config.checkpointing:
                interval = spec.exec_time  # w/o-CK ablation: no checkpoints
            elif self.config.grid_eval:
                interval = grid_eval.optimal_interval_grid(
                    spec,
                    float(bid),
                    fm,
                    self.ondemand,
                    step_hours=step,
                    refine=self.config.interval_refine,
                )
            else:
                interval = optimal_interval(
                    spec,
                    float(bid),
                    fm,
                    self.ondemand,
                    step_hours=step,
                    refine=self.config.interval_refine,
                )
            outcome = GroupOutcome.build(spec, float(bid), interval, fm, step)
            intervals[b] = interval
            outcomes.append(outcome)
            wall_max = max(wall_max, float(outcome.wall.max()))
        return _RawGroupEntry(
            token=token,
            bids=bids,
            intervals=intervals,
            outcomes=outcomes,
            e_spot=np.array([o.expected_spot_cost() for o in outcomes]),
            e_wall=np.array([float(np.dot(o.pmf, o.wall)) for o in outcomes]),
            e_ratio=np.array([float(np.dot(o.pmf, o.ratios)) for o in outcomes]),
            wall_max=wall_max,
        )

    def _raw_entries(self) -> dict[int, _RawGroupEntry]:
        """Per-group entries through all three tiers: process memory,
        disk bundle, fresh build (saving the bundle for next time)."""
        cfg = self.config
        metrics = obs.get_metrics()
        specs = list(enumerate(self.problem.groups))
        tokens = [self._group_token(self._models[i], spec) for i, spec in specs]
        entries: dict[int, _RawGroupEntry] = {}
        per_model: dict[int, dict] = {}
        keys: dict[int, tuple] = {}
        for i, spec in specs:
            keys[i] = self._entry_key(spec)
            if not cfg.table_cache:
                continue
            pm = _RAW_TABLE_CACHE.get(self._models[i])
            if pm is None:
                pm = {}
                _RAW_TABLE_CACHE[self._models[i]] = pm
            per_model[i] = pm
            entry = pm.get(keys[i])
            if entry is not None:
                metrics.inc("cache.table_hits")
                entries[i] = entry
            else:
                metrics.inc("cache.table_misses")

        missing = [i for i, _ in specs if i not in entries]
        store = self._store
        bundle_key = None
        if missing and store is not None:
            from ..execution.artifacts import engine_fingerprint

            bundle_key = hash_key(tuple(tokens), engine_fingerprint())
            arrays = store.load("group_tables", bundle_key)
            if arrays is not None:
                for i in missing:
                    entry = _entry_from_arrays(
                        arrays, f"g{i}_", tokens[i],
                        self.problem.groups[i], cfg.time_step_hours,
                    )
                    if entry is None:
                        break  # damaged schema: rebuild the rest below
                    entries[i] = entry
                    if i in per_model:
                        per_model[i][keys[i]] = entry
                missing = [i for i, _ in specs if i not in entries]

        if missing:
            bid_rows = None
            if cfg.grid_eval:
                bid_rows = grid_eval.bid_matrix_rows(
                    [self._models[i].max_price() for i in missing],
                    cfg.bid_levels,
                    [self._models[i].min_price() for i in missing],
                )
            for j, i in enumerate(missing):
                entry = self._build_entry(
                    self._models[i], self.problem.groups[i], tokens[i],
                    None if bid_rows is None else bid_rows[j],
                )
                entries[i] = entry
                if i in per_model:
                    per_model[i][keys[i]] = entry
            if bundle_key is not None:
                arrays = {}
                for i, _ in specs:
                    arrays.update(_entry_to_arrays(entries[i], f"g{i}_"))
                store.save("group_tables", bundle_key, arrays)
        return entries

    def _build_tables(self) -> None:
        """Build all group tables and the shared quadrature grids."""
        if self._grids_ready:
            return
        entries = self._raw_entries()
        wall_hi = 0.0
        for entry in entries.values():
            wall_hi = max(wall_hi, entry.wall_max)

        wall_hi = max(wall_hi, 1e-9)
        ratio_mid = (np.arange(_RATIO_GRID) + 0.5) / _RATIO_GRID  # over [0, 1]
        wall_mid = (np.arange(_WALL_GRID) + 0.5) * (wall_hi / _WALL_GRID)
        self._ratio_delta = 1.0 / _RATIO_GRID
        self._wall_delta = wall_hi / _WALL_GRID
        self._wall_hi = wall_hi

        grids_map: dict[int, tuple] = {}
        if self.config.table_cache:
            for i, entry in entries.items():
                cached = entry.grids.get(wall_hi)
                if cached is not None:
                    grids_map[i] = cached
        missing = [i for i in entries if i not in grids_map]
        store = self._store
        grids_key = None
        if missing and store is not None:
            from ..execution.artifacts import engine_fingerprint

            grids_key = hash_key(
                tuple(entries[i].token for i in sorted(entries)),
                wall_hi, _RATIO_GRID, _WALL_GRID, engine_fingerprint(),
            )
            arrays = store.load("surv_grids", grids_key)
            if arrays is not None and all(
                f"g{i}_ratio" in arrays
                and f"g{i}_wall" in arrays
                and arrays[f"g{i}_ratio"].shape
                == (entries[i].bids.size, _RATIO_GRID)
                and arrays[f"g{i}_wall"].shape
                == (entries[i].bids.size, _WALL_GRID)
                for i in missing
            ):
                for i in missing:
                    grids = (arrays[f"g{i}_ratio"], arrays[f"g{i}_wall"])
                    grids_map[i] = grids
                    if self.config.table_cache:
                        entries[i].grids[wall_hi] = grids
                missing = []

        if missing:
            for i in missing:
                entry = entries[i]
                nb = entry.bids.size
                surv_ratio = np.empty((nb, _RATIO_GRID))
                surv_wall = np.empty((nb, _WALL_GRID))
                for b, o in enumerate(entry.outcomes):
                    surv_ratio[b] = _survival_rows(o.ratios, o.pmf, ratio_mid)
                    surv_wall[b] = _survival_rows(o.wall, o.pmf, wall_mid)
                grids_map[i] = (surv_ratio, surv_wall)
                if self.config.table_cache:
                    entry.grids[wall_hi] = grids_map[i]
            if grids_key is not None:
                arrays = {}
                for i in entries:
                    arrays[f"g{i}_ratio"] = grids_map[i][0]
                    arrays[f"g{i}_wall"] = grids_map[i][1]
                store.save("surv_grids", grids_key, arrays)

        for i, entry in entries.items():
            grids = grids_map[i]
            self._tables[i] = _GroupTable(
                i,
                entry.bids,
                entry.intervals,
                entry.outcomes,
                entry.e_spot,
                entry.e_wall,
                entry.e_ratio,
                grids[0],
                grids[1],
                entry.token,
            )
        self._grids_ready = True
        self._load_sidecar()

    def group_table(self, group_index: int) -> _GroupTable:
        """Expose a group's precomputed table (used by experiments)."""
        self._build_tables()
        return self._tables[group_index]

    # ------------------------------------------------------------------
    # Search sidecar (disk tier of the subset-score / exact-eval caches)
    # ------------------------------------------------------------------
    def _sidecar_scope(self) -> Optional[str]:
        """Artifact key of this optimizer's search scope: the group
        tokens, the shared grid, and the on-demand scalars that enter
        every score — but *not* the deadline or budget, which only
        select among cached scores and never change them."""
        if self._store is None:
            return None
        if self._sidecar_key is None:
            from ..execution.artifacts import engine_fingerprint

            self._sidecar_key = hash_key(
                tuple(sorted(t.token for t in self._tables.values())),
                self._wall_hi,
                self.ondemand.full_run_cost,
                self.ondemand.exec_time,
                engine_fingerprint(),
            )
        return self._sidecar_key

    def _load_sidecar(self) -> None:
        """Merge the persisted subset-score vectors and exact
        re-evaluations for this scope into the process caches."""
        key = self._sidecar_scope()
        if key is None or key in _SIDECAR_LOADED:
            return
        _SIDECAR_LOADED.add(key)
        arrays = self._store.load("search_sidecar", key)
        if arrays is None:
            return
        odc, odt = self.ondemand.full_run_cost, self.ondemand.exec_time
        # Packed schema: thousands of cached entries live in ten flat
        # arrays (one npz member per *column*, not per entry) because
        # npz pays a fixed header-parse cost per member — a
        # member-per-entry layout made loading slower than rebuilding.
        try:
            s_ntok = arrays["s_ntok"].astype(np.int64)
            s_rows = arrays["s_rows"].astype(np.int64)
            s_toks = arrays["s_toks"]
            s_batch, s_cost = arrays["s_batch"], arrays["s_cost"]
            s_time = arrays["s_time"]
            tok_off = row_off = cell_off = 0
            for e in range(s_ntok.size):
                k, rows = int(s_ntok[e]), int(s_rows[e])
                toks = tuple(
                    str(t) for t in s_toks[tok_off:tok_off + k]
                )
                batch = s_batch[cell_off:cell_off + rows * k]
                batch = batch.reshape(rows, k).astype(np.intp)
                cost = s_cost[row_off:row_off + rows]
                time_v = s_time[row_off:row_off + rows]
                if cost.size != rows or time_v.size != rows:
                    raise ValueError("truncated sidecar")
                tok_off += k
                row_off += rows
                cell_off += rows * k
                ck = (toks, self._wall_hi)
                self._sidecar_seen.add(("s", ck))
                if ck not in _SUBSET_EVAL_CACHE:
                    _SUBSET_EVAL_CACHE[ck] = (batch, cost, time_v)
            e_ntok = arrays["e_ntok"].astype(np.int64)
            e_toks, e_combo = arrays["e_toks"], arrays["e_combo"]
            e_vals = arrays["e_vals"]
            if e_vals.ndim != 2 or e_vals.shape != (e_ntok.size, 7):
                raise ValueError("bad exact-value block")
            off = 0
            for j in range(e_ntok.size):
                k = int(e_ntok[j])
                toks = tuple(str(t) for t in e_toks[off:off + k])
                combo = tuple(int(c) for c in e_combo[off:off + k])
                off += k
                ek = (toks, combo, odc, odt)
                self._sidecar_seen.add(("e", ek))
                if ek not in _EXACT_EVAL_CACHE:
                    _EXACT_EVAL_CACHE[ek] = Expectation(
                        *(float(x) for x in e_vals[j])
                    )
        except (KeyError, IndexError, ValueError):
            # Half-written schema from an older layout: whatever merged
            # so far is still exact; the rest recomputes.
            return

    def save_search_sidecar(self) -> None:
        """Persist this scope's slice of the score/exact caches.

        Called by :class:`~repro.core.optimizer.SompiOptimizer` after a
        search completes; a no-op when the store is off or when nothing
        new was computed since the sidecar was loaded (a fully warm
        search never rewrites the artifact).
        """
        if not self._grids_ready:
            return
        key = self._sidecar_scope()
        if key is None:
            return
        mine = {t.token for t in self._tables.values()}
        odc, odt = self.ondemand.full_run_cost, self.ondemand.exec_time
        scores = []
        exacts = []
        fresh = False
        for ck, vectors in _SUBSET_EVAL_CACHE.items():
            toks, whi = ck
            if whi == self._wall_hi and all(t in mine for t in toks):
                scores.append((toks, vectors))
                fresh = fresh or ("s", ck) not in self._sidecar_seen
        for ek, exact in _EXACT_EVAL_CACHE.items():
            toks, combo, c, t = ek
            if c == odc and t == odt and all(tk in mine for tk in toks):
                exacts.append((toks, combo, exact))
                fresh = fresh or ("e", ek) not in self._sidecar_seen
        if not fresh or not (scores or exacts):
            return
        # Pack entries into flat columns (see _load_sidecar for why).
        s_toks: list = []
        s_batch: list = []
        s_cost: list = []
        s_time: list = []
        s_ntok = np.empty(len(scores), dtype=np.int64)
        s_rows = np.empty(len(scores), dtype=np.int64)
        for e, (toks, (batch, cost, time_v)) in enumerate(scores):
            s_ntok[e] = len(toks)
            s_rows[e] = batch.shape[0]
            s_toks.extend(toks)
            s_batch.append(np.asarray(batch, dtype=np.int64).ravel())
            s_cost.append(cost)
            s_time.append(time_v)
        e_toks: list = []
        e_combo: list = []
        e_ntok = np.empty(len(exacts), dtype=np.int64)
        e_vals = np.empty((len(exacts), 7))
        for j, (toks, combo, exact) in enumerate(exacts):
            e_ntok[j] = len(toks)
            e_toks.extend(toks)
            e_combo.extend(combo)
            e_vals[j] = (
                exact.cost,
                exact.time,
                exact.spot_cost,
                exact.ondemand_cost,
                exact.expected_min_ratio,
                exact.expected_max_wall,
                exact.completion_probability,
            )
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0)
        self._store.save("search_sidecar", key, {
            "s_ntok": s_ntok,
            "s_rows": s_rows,
            "s_toks": np.array(s_toks),
            "s_batch": np.concatenate(s_batch) if s_batch else empty_i,
            "s_cost": np.concatenate(s_cost) if s_cost else empty_f,
            "s_time": np.concatenate(s_time) if s_time else empty_f,
            "e_ntok": e_ntok,
            "e_toks": np.array(e_toks),
            "e_combo": np.array(e_combo, dtype=np.int64),
            "e_vals": e_vals,
        })

    # ------------------------------------------------------------------
    # Pruning bound
    # ------------------------------------------------------------------
    def _subset_bound(self, tables: Sequence[_GroupTable], objective: str) -> float:
        """Admissible lower bound on the subset's best exact score.

        ``cost``: every combo pays at least each group's cheapest spot
        bill, and the on-demand recovery term satisfies
        ``E[min_i R_i] >= prod_i E[R_i]`` (``min(a, b) >= a * b`` for
        values in ``[0, 1]``, then independence), so
        ``sum_i min_b e_spot + D * prod_i min_b E[R]`` is admissible.

        ``time``: ``E[max_i X_i] >= E[X_i] >= min_b E[X_i(b)]`` for any
        group, so the largest per-group floor is admissible.
        """
        if objective == "cost":
            spot_floor = sum(float(t.e_spot.min()) for t in tables)
            ratio_floor = 1.0
            for t in tables:
                ratio_floor *= float(t.e_ratio.min())
            return spot_floor + ratio_floor * self.ondemand.full_run_cost
        return max(float(t.e_wall.min()) for t in tables)

    # ------------------------------------------------------------------
    # Subset optimization
    # ------------------------------------------------------------------
    def optimize_subset(
        self,
        group_indices: Sequence[int],
        objective: str = "cost",
        budget: Optional[float] = None,
        prune_above: Optional[float] = None,
        bound: Optional[float] = None,
    ) -> Optional[SubsetResult]:
        """Best (bids, intervals) for this subset, or ``None`` if no bid
        combination satisfies the constraint in exact evaluation.

        ``objective="cost"`` (the paper's problem): minimise expected
        cost subject to expected time <= deadline.  ``objective="time"``
        (the dual, budget-constrained problem): minimise expected time
        subject to expected cost <= ``budget``.

        ``prune_above`` is an incumbent score (best feasible cost/time
        found so far by the caller's subset traversal): when the subset's
        admissible lower bound cannot beat it, the whole evaluation is
        skipped and ``None`` is returned.  Because the bound is a true
        lower bound on the *exact* score, a pruned subset could never
        have replaced the incumbent, so the traversal's final result is
        unchanged.

        ``bound`` optionally supplies the subset's precomputed admissible
        bound (the one-shot :func:`repro.core.grid_eval.subset_bounds`
        program computes every subset's bound in one pass, bit-identical
        to :meth:`_subset_bound`); when omitted the bound is derived
        here.
        """
        indices = tuple(group_indices)
        if len(indices) == 0:
            raise ConfigurationError("subset must contain at least one group")
        if len(set(indices)) != len(indices):
            raise ConfigurationError(f"duplicate groups in subset {indices}")
        if objective not in ("cost", "time"):
            raise ConfigurationError(f"unknown objective {objective!r}")
        if objective == "time" and budget is None:
            raise ConfigurationError("objective='time' requires a budget")
        self._build_tables()
        tables = [self._tables[i] for i in indices]
        sizes = [t.n_bids for t in tables]
        total = int(np.prod(sizes))
        # Counts the search-space coverage (the paper's "bid combinations
        # traversed"), not the arithmetic actually performed — pruned and
        # cache-served combinations are still logically covered.
        self.combos_evaluated += total

        if prune_above is not None:
            if bound is None:
                bound = self._subset_bound(tables, objective)
            if bound >= prune_above * (1.0 + _PRUNE_MARGIN) + 1e-12:
                self.subsets_pruned += 1
                return None

        candidates: list[tuple[float, float, tuple[int, ...]]] = []

        for batch, cost, time in self._scored_batches(
            tables, sizes, total, objective, prune_above
        ):
            if objective == "cost":
                constraint, score = time, cost
                limit = self.problem.deadline
            else:
                constraint, score = cost, time
                limit = budget
            # Keep a slightly generous feasibility margin; the exact
            # re-evaluation below is the authority.
            feasible = np.flatnonzero(constraint <= limit * 1.02 + 1e-9)
            if feasible.size > _EXACT_FALLBACK_TRIES:
                top = np.argpartition(score[feasible], _EXACT_FALLBACK_TRIES)
                feasible = feasible[top[:_EXACT_FALLBACK_TRIES]]
            for c in feasible:
                candidates.append((float(score[c]), float(cost[c]), tuple(batch[c])))

        if not candidates:
            return None
        candidates.sort(key=lambda item: item[0])
        for _score, _cost, combo in candidates[:_EXACT_FALLBACK_TRIES]:
            outcomes = [t.outcomes[b] for t, b in zip(tables, combo)]
            exact = self._evaluate_exact(tables, combo, outcomes)
            ok = (
                exact.meets_deadline(self.problem.deadline)
                if objective == "cost"
                else exact.cost <= budget + 1e-9
            )
            if ok and self.config.max_miss_probability is not None:
                from .chance import miss_probability

                ok = (
                    miss_probability(
                        outcomes, self.ondemand, self.problem.deadline
                    )
                    <= self.config.max_miss_probability + 1e-9
                )
            if ok:
                return SubsetResult(
                    group_indices=indices,
                    bids=tuple(float(t.bids[b]) for t, b in zip(tables, combo)),
                    intervals=tuple(
                        float(t.intervals[b]) for t, b in zip(tables, combo)
                    ),
                    expectation=exact,
                    combos_evaluated=total,
                )
        return None

    # ------------------------------------------------------------------
    def _scored_batches(
        self,
        tables: Sequence[_GroupTable],
        sizes: Sequence[int],
        total: int,
        objective: str,
        prune_above: Optional[float],
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(batch, cost, time)`` score vectors for the subset.

        Single-batch subsets (the common case) are served from / stored
        into the shared score cache, because the score vectors depend
        only on the group tables — not on deadline or budget.  Whole
        batches whose *separable* spot cost already exceeds the incumbent
        are skipped before the grid products: every combination they
        contain has exact cost >= its spot cost, and their approximate
        scores likewise, so the skipped candidates sort strictly after
        every candidate that could still beat the incumbent — dropping
        them cannot change which combination the exact fallback returns
        to the traversal.
        """
        cache_key = None
        if self.config.table_cache and total <= _MAX_BATCH:
            cache_key = (tuple(t.token for t in tables), self._wall_hi)
            cached = _SUBSET_EVAL_CACHE.get(cache_key)
            if cached is not None:
                obs.get_metrics().inc("cache.subset_hits")
                yield cached
                return
            obs.get_metrics().inc("cache.subset_misses")

        for batch in _combo_batches(sizes, _MAX_BATCH):
            cost_spot = np.zeros(batch.shape[0])
            for g, table in enumerate(tables):
                cost_spot += table.e_spot[batch[:, g]]
            if (
                prune_above is not None
                and objective == "cost"
                and float(cost_spot.min()) >= prune_above
            ):
                # Applies to cacheable batches too (lazy fill): the
                # cache entry simply stays unfilled until some caller
                # actually needs the full score vectors.  Skipping the
                # grid products here was previously disabled when the
                # batch was cacheable, which made the *cold* cache-on
                # path measurably slower than the cache-off seed path.
                continue
            surv_r = np.ones((batch.shape[0], _RATIO_GRID))
            prod_below_w = np.ones((batch.shape[0], _WALL_GRID))
            for g, table in enumerate(tables):
                rows = batch[:, g]
                surv_r *= table.surv_ratio[rows]
                prod_below_w *= 1.0 - table.surv_wall[rows]
            e_min_ratio = self._ratio_delta * surv_r.sum(axis=1)
            e_max_wall = self._wall_delta * (1.0 - prod_below_w).sum(axis=1)
            cost = cost_spot + e_min_ratio * self.ondemand.full_run_cost
            time = e_max_wall + e_min_ratio * self.ondemand.exec_time
            if cache_key is not None:
                if len(_SUBSET_EVAL_CACHE) >= _SUBSET_EVAL_CACHE_MAX:
                    _SUBSET_EVAL_CACHE.clear()
                _SUBSET_EVAL_CACHE[cache_key] = (batch, cost, time)
            yield batch, cost, time

    def _evaluate_exact(
        self,
        tables: Sequence[_GroupTable],
        combo: Tuple[int, ...],
        outcomes: Sequence[GroupOutcome],
    ) -> Expectation:
        """Exact re-evaluation of one combination, memoised across
        optimizer instances (the Expectation depends only on the group
        outcomes and the on-demand option, both part of the key)."""
        if not self.config.table_cache:
            return evaluate(outcomes, self.ondemand)
        key = (
            tuple(t.token for t in tables),
            combo,
            self.ondemand.full_run_cost,
            self.ondemand.exec_time,
        )
        exact = _EXACT_EVAL_CACHE.get(key)
        if exact is None:
            obs.get_metrics().inc("cache.exact_misses")
            exact = evaluate(outcomes, self.ondemand)
            if len(_EXACT_EVAL_CACHE) >= _EXACT_EVAL_CACHE_MAX:
                _EXACT_EVAL_CACHE.clear()
            _EXACT_EVAL_CACHE[key] = exact
        else:
            obs.get_metrics().inc("cache.exact_hits")
        return exact


def _combo_batches(sizes: Sequence[int], max_batch: int):
    """Yield (C, k) index arrays covering the product space in batches.

    Both paths enumerate the product space in row-major order (last
    index fastest, matching ``itertools.product``); the streaming path
    decodes flat indices arithmetically instead of materialising python
    tuples, so even huge spaces stream as pure array work.
    """
    total = int(np.prod(sizes))
    k = len(sizes)
    if total <= max_batch:
        grids = np.indices(sizes).reshape(k, total).T
        yield np.ascontiguousarray(grids)
        return
    # Stream the product in chunks: decode flat indices lo..hi into
    # mixed-radix digits (row-major, matching itertools.product order).
    radix = np.asarray(sizes, dtype=np.intp)
    divisors = np.ones(k, dtype=np.intp)
    for j in range(k - 2, -1, -1):
        divisors[j] = divisors[j + 1] * radix[j + 1]
    for lo in range(0, total, max_batch):
        flat = np.arange(lo, min(lo + max_batch, total), dtype=np.intp)
        yield (flat[:, None] // divisors[None, :]) % radix[None, :]
