"""Logarithmic bid-price candidates (Section 4.2.2).

A uniform grid over ``[0, H]`` wastes most of its points: the failure
rate and expected price respond to the bid strongly near the calm price
band and barely at all near the historical maximum (the paper's
Figure 4).  The paper therefore searches bids at geometrically spaced
points — the gap between candidates grows with the bid — reducing the
space from ``O(H / step)`` to ``O(log H)`` per group.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..units import check_positive


def log_bid_candidates(
    max_price: float, levels: int, floor_price: float | None = None
) -> np.ndarray:
    """Geometric bid candidates ``H * 2**(j - levels)`` for ``j = 0..levels``.

    Parameters
    ----------
    max_price:
        ``H`` — the highest price in the group's history.  Bidding ``H``
        makes an out-of-bid event (historically) impossible.
    levels:
        ``L`` — one plus the number of halvings; the returned array has
        ``levels + 1`` ascending entries ending exactly at ``H``.
    floor_price:
        Optional lower clip (e.g. the market's minimum observed price);
        candidates below it would never launch, so they are lifted to it.
        Duplicates created by the clip are removed.
    """
    check_positive("max_price", max_price)
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    cands = max_price * np.exp2(np.arange(levels + 1, dtype=float) - levels)
    if floor_price is not None:
        check_positive("floor_price", floor_price)
        if floor_price > max_price:
            raise ConfigurationError(
                f"floor_price {floor_price} exceeds max_price {max_price}"
            )
        cands = np.unique(np.maximum(cands, floor_price))
    return cands


def uniform_bid_candidates(max_price: float, count: int) -> np.ndarray:
    """Uniformly spaced candidates over ``(0, H]`` — the unreduced search
    space, kept for the Section 4.2.2 search-cost comparison."""
    check_positive("max_price", max_price)
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    return max_price * np.arange(1, count + 1, dtype=float) / count
