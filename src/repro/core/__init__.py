"""SOMPI — the paper's contribution.

Monetary-cost optimization of deadline-constrained MPI applications on a
mix of spot and on-demand instances (Sections 3-4 of the paper):

* :mod:`~repro.core.problem` — circle groups, decision variables, the
  constrained problem (Formula 1).
* :mod:`~repro.core.ratio` — the remaining-work function ``Ratio(t, F)``
  (Formula 7).
* :mod:`~repro.core.cost_model` — expected monetary cost and execution
  time (Formulas 2-11), with an exact ``O(sum T_i)`` evaluator and a
  naive joint-enumeration oracle.
* :mod:`~repro.core.ondemand_select` — fallback on-demand type selection
  with Slack (Section 4.1).
* :mod:`~repro.core.interval` — the checkpoint-interval function
  ``F = phi(P)`` (dimension reduction, Section 4.2.2).
* :mod:`~repro.core.bid_search` — logarithmic bid-price candidates.
* :mod:`~repro.core.two_level` — vectorised two-level optimization.
* :mod:`~repro.core.subset` — kappa-of-K circle-group selection.
* :mod:`~repro.core.optimizer` — the :class:`SompiOptimizer` facade.
"""

from .problem import CircleGroupSpec, OnDemandOption, Problem, Decision, GroupDecision
from .ratio import ratio, ratio_array
from .cost_model import GroupOutcome, Expectation, evaluate, evaluate_enumerated
from .ondemand_select import select_ondemand
from .interval import young_interval, optimal_interval
from .bid_search import log_bid_candidates
from .two_level import TwoLevelOptimizer, SubsetResult
from .subset import enumerate_subsets
from .optimizer import SompiOptimizer, SompiPlan
from .chance import miss_probability, cost_quantile, sample_outcomes

__all__ = [
    "CircleGroupSpec",
    "OnDemandOption",
    "Problem",
    "Decision",
    "GroupDecision",
    "ratio",
    "ratio_array",
    "GroupOutcome",
    "Expectation",
    "evaluate",
    "evaluate_enumerated",
    "select_ondemand",
    "young_interval",
    "optimal_interval",
    "log_bid_candidates",
    "TwoLevelOptimizer",
    "SubsetResult",
    "enumerate_subsets",
    "SompiOptimizer",
    "SompiPlan",
    "miss_probability",
    "cost_quantile",
    "sample_outcomes",
]
