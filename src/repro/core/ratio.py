"""The remaining-work function ``Ratio(t, F)`` (Formula 7).

``Ratio`` is the fraction of the application that must be re-executed on
on-demand instances after a circle group is terminated at productive time
``t``:

* ``t == T`` — the application completed; nothing remains (``0``).
* ``t <  F`` — the first checkpoint (taken at productive time ``F``) was
  never reached, so all progress is lost (``1``).
* ``t >= F`` — progress up to the last completed checkpoint,
  ``floor(t / F) * F``, survives; the recovery overhead ``R`` is charged
  on top of the remaining work.  The result is capped at ``1`` because
  restarting from scratch (and paying no recovery) dominates any worse
  checkpoint.

The ACM text of Formula 7 is garbled; this reconstruction follows the
surrounding prose (see DESIGN.md section 3).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

_COMPLETE_ATOL = 1e-12


def ratio(t: float, exec_time: float, interval: float, recovery: float) -> float:
    """Scalar ``Ratio(t, F)`` for one circle group.

    Parameters
    ----------
    t:
        Productive time at termination, hours, in ``[0, exec_time]``.
    exec_time:
        ``T``: full productive time of the application on this group.
    interval:
        ``F``: checkpoint interval; ``F >= T`` disables checkpointing.
    recovery:
        ``R``: restart overhead, hours.
    """
    _validate(exec_time, interval, recovery)
    if t < 0 or t > exec_time + _COMPLETE_ATOL:
        raise ConfigurationError(
            f"t={t} outside [0, T={exec_time}]"
        )
    if t >= exec_time - _COMPLETE_ATOL:
        return 0.0
    if t < interval:
        return 1.0
    saved = np.floor(t / interval) * interval
    return float(min(1.0, (exec_time - saved + recovery) / exec_time))


def ratio_array(
    t: np.ndarray, exec_time: float, interval: float, recovery: float
) -> np.ndarray:
    """Vectorised :func:`ratio` over an array of termination times."""
    _validate(exec_time, interval, recovery)
    t = np.asarray(t, dtype=float)
    if t.size and (t.min() < 0 or t.max() > exec_time + _COMPLETE_ATOL):
        raise ConfigurationError("termination times outside [0, T]")
    saved = np.floor(t / interval) * interval
    out = np.minimum(1.0, (exec_time - saved + recovery) / exec_time)
    out = np.where(t < interval, 1.0, out)
    out = np.where(t >= exec_time - _COMPLETE_ATOL, 0.0, out)
    return out


def _validate(exec_time: float, interval: float, recovery: float) -> None:
    if exec_time <= 0:
        raise ConfigurationError(f"exec_time must be > 0, got {exec_time}")
    if interval <= 0:
        raise ConfigurationError(f"interval must be > 0, got {interval}")
    if recovery < 0:
        raise ConfigurationError(f"recovery must be >= 0, got {recovery}")
