"""Checkpoint interval as a function of the bid price: ``F = phi(P)``.

The first level of the two-level optimization (Section 4.2.2) eliminates
the checkpoint-interval dimension: for a fixed bid the best interval for
a group depends only on that group's failure behaviour, so the paper
models ``F_i = phi_i(P_i)`` and optimizes over bids alone (Theorem 1).

``phi`` is computed in two stages:

1. **Young's first-order formula** (the paper's reference [10]):
   ``F* = sqrt(2 * O * MTTF(P))``, with the mean time to failure read off
   the failure model at the given bid.
2. Optional **numeric refinement**: a scan of candidate intervals that
   minimises the group's single-group expected cost (its spot bill plus
   the expected on-demand re-run it would cause).  This captures what
   Young's formula ignores — discrete failure-time grids, the cap of
   ``Ratio`` at 1, and recovery overhead.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..market.failure import FailureModel
from .cost_model import GroupOutcome
from .problem import CircleGroupSpec, OnDemandOption


def young_interval(
    checkpoint_overhead: float, mttf_hours: float, exec_time: float
) -> float:
    """Young's optimal checkpoint interval, clamped to ``(0, exec_time]``.

    ``F >= exec_time`` means "do not checkpoint"; that is the right answer
    when failures are rarer than the run length or when checkpoints are
    free to skip (no failures observed, ``mttf = inf``).
    """
    if exec_time <= 0:
        raise ConfigurationError(f"exec_time must be > 0, got {exec_time}")
    if checkpoint_overhead < 0 or mttf_hours < 0:
        raise ConfigurationError("overhead and mttf must be >= 0")
    if not math.isfinite(mttf_hours):
        return exec_time
    # Both inputs are validated non-negative above, so <= 0 is the same
    # predicate as the zero sentinel without an exact float equality.
    if checkpoint_overhead <= 0.0:
        # Free checkpoints: checkpoint as often as the model resolves.
        return min(exec_time, max(1e-6, mttf_hours / 100.0))
    if mttf_hours <= 0.0:
        return exec_time  # group never launches; interval is irrelevant
    return float(min(exec_time, math.sqrt(2.0 * checkpoint_overhead * mttf_hours)))


def _interval_candidates(
    spec: CircleGroupSpec, young: float, step_hours: float, max_candidates: int = 24
) -> np.ndarray:
    """Candidate intervals around Young's estimate plus even divisions.

    Includes ``T`` itself (no checkpoints) so refinement can always fall
    back to checkpoint-free execution.
    """
    T = spec.exec_time
    divisions = T / np.arange(1, max_candidates + 1)
    near_young = young * np.array([0.5, 0.75, 1.0, 1.5, 2.0])
    cands = np.concatenate([divisions, near_young, [T]])
    lo = min(step_hours, T)
    return np.unique(np.clip(cands, lo, T))


def optimal_interval(
    spec: CircleGroupSpec,
    bid: float,
    failure_model: FailureModel,
    ondemand: OnDemandOption,
    step_hours: float = 1.0,
    refine: bool = True,
) -> float:
    """``phi(P)`` for one group: the interval minimising its single-group
    expected cost at bid ``P``.

    The single-group objective is exactly the K=1 instance of the full
    cost model: ``S M E[X] + full_run_cost * E[Ratio]``.  For K > 1 the
    coupling through ``min_i Ratio_i`` makes the true optimum depend on
    the other groups; like the paper, we optimize per group (the
    independence of checkpointing across groups, Section 4.2.2).
    """
    young = young_interval(
        spec.checkpoint_overhead, failure_model.mttf_hours(bid), spec.exec_time
    )
    if not refine:
        return young
    candidates = _interval_candidates(spec, young, step_hours)
    n = max(1, int(np.ceil(spec.exec_time / step_hours)))
    pmf = failure_model.failure_pmf(bid, n)
    price = failure_model.expected_price(bid)
    best_f, best_cost = young, math.inf
    for interval in candidates:
        outcome = GroupOutcome.from_pmf(
            spec, bid, float(interval), pmf, price, step_hours
        )
        cost = outcome.expected_spot_cost() + ondemand.full_run_cost * float(
            np.dot(outcome.pmf, outcome.ratios)
        )
        if cost < best_cost - 1e-12:
            best_cost, best_f = cost, float(interval)
    return best_f
