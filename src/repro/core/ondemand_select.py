"""On-demand type selection (Section 4.1).

The cost of the on-demand fallback is independent of the spot-side
decisions (Formulas 4 and 6 decompose), so the paper selects the fallback
type ``d*`` first: the cheapest full-run option whose execution time fits
within ``Deadline * (1 - Slack)``, where the slack reserves time for
checkpointing and recovery (Formulas 12-13).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import InfeasibleError
from ..units import check_fraction, check_positive
from .problem import OnDemandOption


def select_ondemand(
    options: Sequence[OnDemandOption],
    deadline: float,
    slack: float,
) -> Tuple[int, OnDemandOption]:
    """Pick the index and option minimising ``T_d * D_d * M_d`` subject to
    ``T_d <= Deadline * (1 - Slack)``.

    Raises
    ------
    InfeasibleError
        If no option meets the slacked deadline.  The error message names
        the fastest option so callers can report how far off it is.
    """
    check_positive("deadline", deadline)
    check_fraction("slack", slack)
    budget = deadline * (1.0 - slack)
    feasible = [
        (opt.full_run_cost, i) for i, opt in enumerate(options) if opt.exec_time <= budget
    ]
    if not feasible:
        fastest = min(options, key=lambda o: o.exec_time)
        raise InfeasibleError(
            f"no on-demand option fits {budget:.3g} h "
            f"(= deadline {deadline:.3g} h x (1 - slack {slack:.2f})); "
            f"fastest is {fastest.itype.name} at {fastest.exec_time:.3g} h"
        )
    _, best = min(feasible)
    return best, options[best]


def select_ondemand_relaxed(
    options: Sequence[OnDemandOption],
    deadline: float,
    slack: float,
) -> Tuple[int, OnDemandOption]:
    """:func:`select_ondemand`, but degrade gracefully under tight deadlines.

    With a tight deadline (e.g. the paper's 1.05x Baseline Time) the
    slack-reduced budget can exclude *every* type even though the fastest
    type meets the raw deadline; in that case the slack is dropped.  Only
    when nothing fits the raw deadline either is the problem genuinely
    infeasible.
    """
    try:
        return select_ondemand(options, deadline, slack)
    except InfeasibleError:
        return select_ondemand(options, deadline, 0.0)


def feasible_options(
    options: Sequence[OnDemandOption], deadline: float, slack: float
) -> list[int]:
    """Indices of all options that meet the slacked deadline."""
    check_positive("deadline", deadline)
    check_fraction("slack", slack)
    budget = deadline * (1.0 - slack)
    return [i for i, opt in enumerate(options) if opt.exec_time <= budget]
