"""The SOMPI facade.

Ties the pipeline of Figure 3 together:

1. select the fallback on-demand type (Section 4.1),
2. build failure models from spot history (Section 4.4),
3. run the two-level optimization over kappa-of-K subsets
   (Sections 4.2 and 4.4),

and return a :class:`SompiPlan` — the decision plus its expected cost and
time — ready to hand to an executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .. import obs
from ..config import DEFAULT_CONFIG, SompiConfig
from ..errors import InfeasibleError
from ..market.failure import FailureModel
from ..market.history import MarketKey, SpotPriceHistory
from .cost_model import Expectation
from .ondemand_select import select_ondemand_relaxed
from .problem import Decision, OnDemandOption, Problem
from .subset import exhaustive_subset_search, greedy_subset_search
from .two_level import TwoLevelOptimizer


@dataclass(frozen=True)
class SompiPlan:
    """The optimizer's output: what to run, and what it should cost."""

    problem: Problem
    decision: Decision
    expectation: Expectation
    ondemand: OnDemandOption
    combos_evaluated: int
    used_spot: bool

    def describe(self) -> str:
        head = (
            f"expected cost ${self.expectation.cost:.2f}, "
            f"expected time {self.expectation.time:.2f} h "
            f"(deadline {self.problem.deadline:.2f} h)"
        )
        return head + "\n" + self.decision.describe(self.problem)

    def to_dict(self) -> dict:
        """JSON-friendly view of the plan (CLI ``plan --json``)."""
        return {
            "expected_cost": self.expectation.cost,
            "expected_time_hours": self.expectation.time,
            "deadline_hours": self.problem.deadline,
            "completion_probability": self.expectation.completion_probability,
            "used_spot": self.used_spot,
            "combos_evaluated": self.combos_evaluated,
            "groups": [
                {
                    "market": str(self.problem.groups[g.group_index].key),
                    "instances": self.problem.groups[g.group_index].n_instances,
                    "bid_per_hour": g.bid,
                    "checkpoint_interval_hours": g.interval,
                    "exec_time_hours": self.problem.groups[
                        g.group_index
                    ].exec_time,
                }
                for g in self.decision.groups
            ],
            "fallback": {
                "instance_type": self.ondemand.itype.name,
                "instances": self.ondemand.n_instances,
                "exec_time_hours": self.ondemand.exec_time,
                "fleet_rate_per_hour": self.ondemand.fleet_rate,
            },
        }


def build_failure_models(
    problem: Problem,
    history: SpotPriceHistory,
    step_hours: float = 1.0,
    cache: bool = True,
) -> dict[MarketKey, FailureModel]:
    """One failure model per circle-group market, from the given history.

    ``cache=False`` disables the models' per-bid memoisation (used by the
    perf benchmarks to time the uncached path; results are identical).
    """
    with obs.get_metrics().timer("plan.build_models"):
        return {
            spec.key: FailureModel(
                history.get(spec.key), step_hours=step_hours, cache=cache
            )
            for spec in problem.groups
        }


class SompiOptimizer:
    """Plans a hybrid spot + on-demand execution for one problem."""

    def __init__(
        self,
        problem: Problem,
        failure_models: Mapping[MarketKey, FailureModel],
        config: SompiConfig = DEFAULT_CONFIG,
    ) -> None:
        self.problem = problem
        self.failure_models = dict(failure_models)
        self.config = config

    @classmethod
    def from_history(
        cls,
        problem: Problem,
        history: SpotPriceHistory,
        config: SompiConfig = DEFAULT_CONFIG,
    ) -> "SompiOptimizer":
        models = build_failure_models(
            problem, history, step_hours=config.time_step_hours
        )
        return cls(problem, models, config)

    def plan(self) -> SompiPlan:
        """Run the full pipeline and return the best feasible plan.

        If every spot subset is infeasible (or uneconomical), the plan
        degenerates to a pure on-demand run — the model's hybrid execution
        always has that fallback available.

        Raises
        ------
        InfeasibleError
            If even the pure on-demand options cannot meet the deadline.
        """
        metrics = obs.get_metrics()
        metrics.inc("plan.calls")
        with metrics.timer("plan.ondemand_select"):
            od_index, ondemand = select_ondemand_relaxed(
                self.problem.ondemand_options, self.problem.deadline,
                self.config.slack,
            )
        optimizer = TwoLevelOptimizer(
            self.problem, self.failure_models, ondemand, self.config
        )
        with metrics.timer("plan.subset_search"):
            if self.config.subset_strategy == "greedy":
                result = greedy_subset_search(optimizer, self.config.kappa)
            else:
                result = exhaustive_subset_search(optimizer, self.config.kappa)
        optimizer.save_search_sidecar()
        metrics.inc("plan.combos_evaluated", optimizer.combos_evaluated)

        ondemand_only = _ondemand_only_expectation(ondemand)
        if result is None or result.expectation.cost >= ondemand_only.cost:
            decision = Decision(groups=(), ondemand_index=od_index)
            return SompiPlan(
                problem=self.problem,
                decision=decision,
                expectation=ondemand_only,
                ondemand=ondemand,
                combos_evaluated=optimizer.combos_evaluated,
                used_spot=False,
            )
        return SompiPlan(
            problem=self.problem,
            decision=result.to_decision(od_index),
            expectation=result.expectation,
            ondemand=ondemand,
            combos_evaluated=optimizer.combos_evaluated,
            used_spot=True,
        )


    def plan_budget(self, budget: float) -> SompiPlan:
        """The dual problem: minimise expected time within a cost budget.

        An extension beyond the paper (its related work frames this
        variant; the machinery is identical with the objective and
        constraint swapped).  The fallback on-demand type is the fastest
        one whose full run fits the budget; if none fits, spot is the
        only hope and the cheapest type backs the recovery path.

        Raises
        ------
        InfeasibleError
            If neither any spot plan nor any on-demand run fits the
            budget in expectation.
        """
        if budget <= 0:
            raise InfeasibleError(f"budget must be > 0, got {budget}")
        options = self.problem.ondemand_options
        affordable = [
            (o.exec_time, i) for i, o in enumerate(options) if o.full_run_cost <= budget
        ]
        if affordable:
            _, od_index = min(affordable)
        else:
            od_index = min(
                range(len(options)), key=lambda i: options[i].full_run_cost
            )
        ondemand = options[od_index]
        optimizer = TwoLevelOptimizer(
            self.problem, self.failure_models, ondemand, self.config
        )
        if self.config.subset_strategy == "greedy":
            result = greedy_subset_search(
                optimizer, self.config.kappa, objective="time", budget=budget
            )
        else:
            result = exhaustive_subset_search(
                optimizer, self.config.kappa, objective="time", budget=budget
            )
        optimizer.save_search_sidecar()
        ondemand_ok = ondemand.full_run_cost <= budget
        if result is None and not ondemand_ok:
            raise InfeasibleError(
                f"no plan fits the ${budget:.2f} budget; cheapest on-demand "
                f"run is ${ondemand.full_run_cost:.2f}"
            )
        if result is None or (
            ondemand_ok and ondemand.exec_time < result.expectation.time
        ):
            return SompiPlan(
                problem=self.problem,
                decision=Decision(groups=(), ondemand_index=od_index),
                expectation=_ondemand_only_expectation(ondemand),
                ondemand=ondemand,
                combos_evaluated=optimizer.combos_evaluated,
                used_spot=False,
            )
        return SompiPlan(
            problem=self.problem,
            decision=result.to_decision(od_index),
            expectation=result.expectation,
            ondemand=ondemand,
            combos_evaluated=optimizer.combos_evaluated,
            used_spot=True,
        )


def _ondemand_only_expectation(ondemand: OnDemandOption) -> Expectation:
    """Deterministic outcome of running everything on on-demand."""
    return Expectation(
        cost=ondemand.full_run_cost,
        time=ondemand.exec_time,
        spot_cost=0.0,
        ondemand_cost=ondemand.full_run_cost,
        expected_min_ratio=1.0,
        expected_max_wall=0.0,
        completion_probability=1.0,
    )
