"""Expected monetary cost and execution time (Formulas 1-11).

The paper writes the expectations as sums over the joint failure-time
vector ``(t_1, ..., t_K)``, which costs ``O(prod_i T_i)`` to enumerate.
Because group failures are independent and every term of the objective is
either *separable* in the groups (``Cost^S``), a *max* over groups
(``Time^S``) or a *min* over groups (the best-checkpoint ``Ratio`` that
prices the on-demand recovery), the expectations factor through the
per-group marginals:

* ``E[Cost^S] = sum_i S_i M_i E[X_i]`` with
  ``X_i = t_i + O_i floor(t_i / F_i)`` the wall time of group ``i``,
* ``E[Time^S] = E[max_i X_i]`` via the product of per-group CDFs,
* ``E[Cost^OD] = T D M * E[min_i Ratio_i]`` and
  ``E[Time^OD] = T * E[min_i Ratio_i]`` via the product of per-group
  survival functions,

all in ``O(sum_i T_i log)`` — see DESIGN.md section 3.  The naive joint
enumeration is kept as :func:`evaluate_enumerated` and the test suite
cross-validates the two on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..market.failure import FailureModel
from .problem import CircleGroupSpec, OnDemandOption
from .ratio import ratio_array


@dataclass(frozen=True)
class GroupOutcome:
    """Per-group randomness under one fixed (bid, interval) choice.

    ``pmf[t]`` for ``t < n_steps`` is the probability the group dies
    during productive step ``t``; ``pmf[n_steps]`` is the probability it
    completes.  ``productive``, ``wall`` and ``ratios`` are the
    corresponding outcome values, all indexed by ``t``.
    """

    spec: CircleGroupSpec
    bid: float
    interval: float
    step_hours: float
    pmf: np.ndarray
    expected_price: float
    productive: np.ndarray
    wall: np.ndarray
    ratios: np.ndarray

    @classmethod
    def build(
        cls,
        spec: CircleGroupSpec,
        bid: float,
        interval: float,
        failure_model: FailureModel,
        step_hours: float = 1.0,
    ) -> "GroupOutcome":
        """Assemble the outcome table from a failure model."""
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        n = max(1, int(np.ceil(spec.exec_time / step_hours)))
        pmf = failure_model.failure_pmf(bid, n)
        return cls.from_pmf(
            spec,
            bid,
            interval,
            pmf,
            expected_price=failure_model.expected_price(bid),
            step_hours=step_hours,
        )

    @classmethod
    def from_pmf(
        cls,
        spec: CircleGroupSpec,
        bid: float,
        interval: float,
        pmf: np.ndarray,
        expected_price: float,
        step_hours: float = 1.0,
    ) -> "GroupOutcome":
        """Assemble from an explicit failure pmf (tests, oracles)."""
        pmf = np.asarray(pmf, dtype=float)
        if pmf.ndim != 1 or pmf.size < 2:
            raise ConfigurationError("pmf must be 1-D with length n_steps + 1")
        if np.any(pmf < -1e-12) or abs(pmf.sum() - 1.0) > 1e-9:
            raise ConfigurationError("pmf must be non-negative and sum to 1")
        n = pmf.size - 1
        # Productive time at each outcome: t*step for failures (floored to
        # the step grid, as the paper discretises), T for completion.
        productive = np.minimum(step_hours * np.arange(n + 1), spec.exec_time)
        productive[n] = spec.exec_time
        # Checkpoints land at k*F strictly before completion; one exactly at
        # the finish line is never taken (see core.ckpt_math).
        k_max = int(np.ceil(spec.exec_time / interval - 1e-12)) - 1
        n_ckpts = np.minimum(np.floor(productive / interval + 1e-12), max(0, k_max))
        wall = productive + spec.checkpoint_overhead * n_ckpts
        ratios = ratio_array(
            productive, spec.exec_time, interval, spec.recovery_overhead
        )
        ratios[n] = 0.0  # completion, regardless of grid rounding
        return cls(
            spec=spec,
            bid=bid,
            interval=interval,
            step_hours=step_hours,
            pmf=pmf,
            expected_price=float(expected_price),
            productive=productive,
            wall=wall,
            ratios=ratios,
        )

    @property
    def completion_probability(self) -> float:
        return float(self.pmf[-1])

    def expected_spot_cost(self) -> float:
        """``S_i * M_i * E[X_i]`` — this group's expected spot bill."""
        return (
            self.expected_price
            * self.spec.n_instances
            * float(np.dot(self.pmf, self.wall))
        )


@dataclass(frozen=True)
class Expectation:
    """Evaluated objective and its decomposition."""

    cost: float
    time: float
    spot_cost: float
    ondemand_cost: float
    expected_min_ratio: float
    expected_max_wall: float
    completion_probability: float

    def meets_deadline(self, deadline: float) -> bool:
        return self.time <= deadline + 1e-9


# ----------------------------------------------------------------------
# Extreme-value helpers over independent discrete non-negative RVs
# ----------------------------------------------------------------------
def _survival_at(
    values: np.ndarray, pmf: np.ndarray, grid: np.ndarray
) -> np.ndarray:
    """``P(Y >= g)`` for each grid point, for a discrete RV (values, pmf)."""
    order = np.argsort(values, kind="stable")
    vs = values[order]
    ps = pmf[order]
    tail = np.cumsum(ps[::-1])[::-1]  # tail[k] = P(Y >= vs[k])
    idx = np.searchsorted(vs, grid, side="left")
    out = np.zeros(grid.size)
    inside = idx < vs.size
    out[inside] = tail[idx[inside]]
    return out


def expected_min(
    values_list: Sequence[np.ndarray], pmf_list: Sequence[np.ndarray]
) -> float:
    """``E[min_i Y_i]`` for independent discrete non-negative RVs."""
    grid = np.unique(np.concatenate([np.asarray(v, float) for v in values_list]))
    grid = grid[grid > 0]
    if grid.size == 0:
        return 0.0
    surv = np.ones(grid.size)
    for values, pmf in zip(values_list, pmf_list):
        surv *= _survival_at(np.asarray(values, float), np.asarray(pmf, float), grid)
    deltas = np.diff(np.concatenate([[0.0], grid]))
    return float(np.dot(deltas, surv))


def expected_max(
    values_list: Sequence[np.ndarray], pmf_list: Sequence[np.ndarray]
) -> float:
    """``E[max_i Y_i]`` for independent discrete non-negative RVs."""
    grid = np.unique(np.concatenate([np.asarray(v, float) for v in values_list]))
    grid = grid[grid > 0]
    if grid.size == 0:
        return 0.0
    # P(max >= g) = 1 - prod_i (1 - P(Y_i >= g))
    prod_below = np.ones(grid.size)
    for values, pmf in zip(values_list, pmf_list):
        prod_below *= 1.0 - _survival_at(
            np.asarray(values, float), np.asarray(pmf, float), grid
        )
    deltas = np.diff(np.concatenate([[0.0], grid]))
    return float(np.dot(deltas, 1.0 - prod_below))


# ----------------------------------------------------------------------
# Evaluators
# ----------------------------------------------------------------------
def evaluate(
    outcomes: Sequence[GroupOutcome], ondemand: OnDemandOption
) -> Expectation:
    """Exact expected cost/time via per-group marginals (fast path)."""
    if not outcomes:
        raise ConfigurationError("need at least one group outcome")
    spot_cost = sum(o.expected_spot_cost() for o in outcomes)
    ratios = [o.ratios for o in outcomes]
    walls = [o.wall for o in outcomes]
    pmfs = [o.pmf for o in outcomes]
    e_min_ratio = expected_min(ratios, pmfs)
    e_max_wall = expected_max(walls, pmfs)
    od_cost = e_min_ratio * ondemand.full_run_cost
    time = e_max_wall + e_min_ratio * ondemand.exec_time
    completion = 1.0 - float(
        np.prod([1.0 - o.completion_probability for o in outcomes])
    )
    return Expectation(
        cost=spot_cost + od_cost,
        time=time,
        spot_cost=spot_cost,
        ondemand_cost=od_cost,
        expected_min_ratio=e_min_ratio,
        expected_max_wall=e_max_wall,
        completion_probability=completion,
    )


def evaluate_enumerated(
    outcomes: Sequence[GroupOutcome],
    ondemand: OnDemandOption,
    max_states: int = 20_000_000,
) -> Expectation:
    """Naive joint enumeration over all failure-time vectors.

    This is the paper's literal ``O(prod_i T_i)`` sum (Formulas 2 and 8),
    kept as a verification oracle for :func:`evaluate`.
    """
    if not outcomes:
        raise ConfigurationError("need at least one group outcome")
    sizes = [o.pmf.size for o in outcomes]
    total = int(np.prod(sizes))
    if total > max_states:
        raise ConfigurationError(
            f"joint state space {total} exceeds max_states={max_states}; "
            "use evaluate() instead"
        )
    k = len(outcomes)
    shape_of = lambda i: tuple(
        sizes[j] if j == i else 1 for j in range(k)
    )  # noqa: E731 - local broadcasting helper

    joint_p = np.ones((1,) * k)
    for i, o in enumerate(outcomes):
        joint_p = joint_p * o.pmf.reshape(shape_of(i))

    spot = np.zeros((1,) * k)
    for i, o in enumerate(outcomes):
        per_state = o.expected_price * o.spec.n_instances * o.wall
        spot = spot + per_state.reshape(shape_of(i))

    min_ratio = np.full(tuple(sizes), np.inf)
    max_wall = np.zeros(tuple(sizes))
    for i, o in enumerate(outcomes):
        min_ratio = np.minimum(min_ratio, o.ratios.reshape(shape_of(i)))
        max_wall = np.maximum(max_wall, o.wall.reshape(shape_of(i)))

    e_spot = float((joint_p * spot).sum())
    e_min_ratio = float((joint_p * min_ratio).sum())
    e_max_wall = float((joint_p * max_wall).sum())
    od_cost = e_min_ratio * ondemand.full_run_cost
    time = e_max_wall + e_min_ratio * ondemand.exec_time
    completion = 1.0 - float(
        np.prod([1.0 - o.completion_probability for o in outcomes])
    )
    return Expectation(
        cost=e_spot + od_cost,
        time=time,
        spot_cost=e_spot,
        ondemand_cost=od_cost,
        expected_min_ratio=e_min_ratio,
        expected_max_wall=e_max_wall,
        completion_probability=completion,
    )
