"""Canonical content hashing for cross-process cache keys.

The on-disk artifact store (:mod:`repro.execution.artifacts`) and the
planner's cross-instance caches (:mod:`.two_level`) key everything by
*content*, never by object identity, so a cold process can recognise
work a previous process already did.  This module is the one encoder
both sides share; it deliberately has no repro imports so any layer can
use it without cycles.

Floats are encoded via ``float.hex()``: two keys collide iff the values
are bit-identical, which is exactly the planner's bit-identity contract
— formatting can never alias two different parameterisations onto one
artifact, and no tolerance rule exists to get wrong.
"""

from __future__ import annotations

import hashlib


def hash_key(*parts) -> str:
    """SHA-256 hexdigest over nested tuples of str/int/float/bool/None.

    Anything else falls back to its ``str()`` form, which is safe for
    the frozen value objects used in keys (e.g. ``MarketKey``) whose
    ``str()`` is stable and injective.
    """
    h = hashlib.sha256()
    _feed(h, parts)
    return h.hexdigest()


def _feed(h, value) -> None:
    if isinstance(value, (tuple, list)):
        h.update(b"(")
        for item in value:
            _feed(h, item)
        h.update(b")")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        h.update(b"b1" if value else b"b0")
    elif isinstance(value, float):
        h.update(b"f")
        h.update(value.hex().encode())
    elif isinstance(value, int):
        h.update(b"i")
        h.update(str(value).encode())
    elif isinstance(value, str):
        h.update(b"s")
        h.update(value.encode())
    elif value is None:
        h.update(b"n")
    else:
        h.update(b"o")
        h.update(str(value).encode())
    h.update(b"\x00")
