"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A model or optimizer was constructed with inconsistent parameters."""


class TraceError(ReproError):
    """A spot-price trace is malformed (non-monotonic time, negative price, ...)."""


class InfeasibleError(ReproError):
    """No decision satisfies the deadline constraint.

    Raised by the on-demand type selector when even the fastest instance
    type cannot finish within ``Deadline * (1 - Slack)``.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class MPIRuntimeError(SimulationError):
    """The simulated MPI runtime detected a protocol violation.

    Examples: mismatched collective participation, a receive with no
    matching send, or communication with a terminated rank.
    """


class CheckpointError(ReproError):
    """Checkpoint data was requested but never stored, or is corrupt."""


class AuditError(ReproError):
    """A result violated a cost-conservation or bookkeeping invariant.

    Raised only in audit mode (:mod:`repro.obs`): the replayed totals
    and their ledgers disagreed, which means a table built from them
    would be silently biased.
    """
