"""Shared-memory trace pool for multi-process Monte-Carlo replay.

``evaluate_decision_mc(jobs=N)`` fans chunks of starting points out to a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Before this module,
every submitted chunk re-pickled the full :class:`SpotPriceHistory` —
hundreds of kilobytes of trace arrays serialized once *per chunk*, which
for short chunks cost more than the replay itself.  The pool instead
copies each trace's ``times``/``prices`` arrays into one
:class:`multiprocessing.shared_memory.SharedMemory` block up front and
ships only a tiny picklable :class:`SharedHistoryHandle`; workers attach
lazily (first chunk of each worker) and build zero-copy numpy views over
the block.

Correctness properties:

* **Byte identity** — workers see the exact float64 bytes the parent
  wrote (a shared mapping, not a transcode), and the replay math is the
  same :mod:`.batch_replay` code either way, so results are
  byte-identical to the serial path and to the pickling path.
* **Fail-open** — if the platform cannot provide shared memory (no
  ``/dev/shm``, permissions, exotic start methods), pool construction
  raises and the caller falls back to pickling the history; nothing
  behavioural depends on the pool existing.
* **Lifecycle** — the parent owns the blocks: :meth:`SharedTracePool.
  close` unlinks them once the executor has shut down.  Workers only
  ever map existing blocks and explicitly unregister them from the
  ``resource_tracker`` (each worker would otherwise *unlink* the shared
  blocks at exit, racing the parent and other workers).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .. import obs
from ..core.two_level import register_cache_clearer
from ..market.history import MarketKey, SpotPriceHistory
from ..market.trace import SpotPriceTrace

__all__ = [
    "SharedHistoryHandle",
    "SharedTracePool",
    "attach_history",
    "close_trace_pools",
    "history_content_key",
    "shared_trace_handle",
]


@dataclass(frozen=True)
class SharedHistoryHandle:
    """Picklable description of a pooled history (one entry per trace).

    Each entry is ``(type, zone, shm_name, n_segments, end_time)``; the
    block holds ``times`` then ``prices``, each ``n_segments`` float64.
    """

    pool_id: str
    entries: Tuple[Tuple[str, str, str, int, float], ...]
    #: pid of the pool owner's resource-tracker process; a worker whose
    #: tracker is the same process (fork start method) must not touch
    #: the registrations, they are the owner's.
    tracker_pid: int = -1


class SharedTracePool:
    """Parent-side owner of one shared-memory block per trace."""

    def __init__(self, history: SpotPriceHistory) -> None:
        from multiprocessing import shared_memory

        self._owner_pid = os.getpid()
        self._blocks: List[object] = []
        entries: List[Tuple[str, str, str, int, float]] = []
        try:
            for key, trace in history.items():
                n = trace.n_segments
                shm = shared_memory.SharedMemory(
                    create=True, size=2 * n * 8
                )
                self._blocks.append(shm)
                buf = np.ndarray((2 * n,), dtype=np.float64, buffer=shm.buf)
                buf[:n] = trace.times
                buf[n:] = trace.prices
                entries.append(
                    (key.instance_type, key.zone, shm.name, n,
                     trace.end_time)
                )
        except BaseException:
            self.close()
            raise
        self.handle = SharedHistoryHandle(
            pool_id=entries[0][2] if entries else "empty",
            entries=tuple(entries),
            tracker_pid=_tracker_pid(),
        )

    def close(self) -> None:
        """Release and unlink every block (parent side, after workers).

        In a forked child an inherited pool belongs to the parent: the
        child only drops its references — unlinking here would destroy
        blocks the parent (and its other workers) still serve.
        """
        if os.getpid() != self._owner_pid:
            self._blocks = []
            return
        for shm in self._blocks:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        self._blocks = []


def _tracker_pid() -> int:
    """pid of this process's resource-tracker helper (-1 if unknown)."""
    try:
        from multiprocessing import resource_tracker

        pid = getattr(resource_tracker._resource_tracker, "_pid", None)
        return -1 if pid is None else int(pid)
    # reprolint: disable=R006 -- probes a CPython private; any failure means "unknown tracker"
    except Exception:
        return -1


# Worker-side cache: one attached history per pool, keyed by pool_id so
# a long-lived worker serving chunks from several evaluations never
# re-attaches (or worse, re-copies) the same blocks.  Superseded pools
# are evicted on the next attach (see ``_evict_superseded``): each
# evaluation builds a fresh pool, so without eviction a worker reused
# across evaluations would keep every dead pool's mappings open for its
# whole lifetime.
_ATTACHED: Dict[str, SpotPriceHistory] = {}
_ATTACHED_BLOCKS: Dict[str, list] = {}


def _evict_superseded(current_pool_id: str) -> None:
    """Close and forget every attached pool except ``current_pool_id``.

    The owner of a superseded pool has long since unlinked its blocks;
    only this process's mappings keep the pages alive.  Dropping the
    cached history first releases the numpy views, so the close
    normally succeeds; a ``BufferError`` means someone still holds a
    view into the block — then the mapping must stay (closing a mapped
    buffer out from under a live view would be a crash, not a cleanup)
    and it is simply no longer tracked.
    """
    for pool_id in [p for p in _ATTACHED_BLOCKS if p != current_pool_id]:
        _ATTACHED.pop(pool_id, None)
        for shm in _ATTACHED_BLOCKS.pop(pool_id, []):
            try:
                shm.close()
            except BufferError:
                pass


def attach_history(handle: SharedHistoryHandle) -> SpotPriceHistory:
    """The pooled history, as zero-copy views over the shared blocks.

    Safe to call in the parent too (it maps the same physical pages).
    The attached blocks stay mapped until a *different* pool is
    attached — each evaluation builds its own pool, so attaching a new
    one means every other cached pool is dead and its blocks are closed
    (the worker-lifetime leak this replaces kept them all mapped).
    """
    cached = _ATTACHED.get(handle.pool_id)
    if cached is not None:
        return cached
    _evict_superseded(handle.pool_id)
    from multiprocessing import shared_memory

    history = SpotPriceHistory()
    blocks: list = []
    for type_name, zone, shm_name, n, end_time in handle.entries:
        shm = shared_memory.SharedMemory(name=shm_name)
        # CPython registers every attach with the resource tracker
        # (bpo-38119), which would make this worker *unlink* the owner's
        # blocks at exit.  Undo that — unless the tracker process is the
        # owner's own (fork start method inherits it), in which case the
        # attach-registration was a set no-op and unregistering here
        # would strip the owner's entry instead.
        if _tracker_pid() != handle.tracker_pid:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            # reprolint: disable=R006 -- best-effort bpo-38119 workaround; worst case is tracker noise
            except Exception:
                pass
        blocks.append(shm)
        buf = np.ndarray((2 * n,), dtype=np.float64, buffer=shm.buf)
        history.add(
            MarketKey(type_name, zone),
            SpotPriceTrace(buf[:n], buf[n:], end_time),
        )
    _ATTACHED[handle.pool_id] = history
    _ATTACHED_BLOCKS[handle.pool_id] = blocks
    return history


# ----------------------------------------------------------------------
# Parent-side registry: one long-lived pool per history *content*
# ----------------------------------------------------------------------
# Keyed by a hash over every (market, trace-content-hash) pair, so two
# history objects with bit-identical traces share one set of shm blocks
# — and, because the handle (pool_id) is stable across calls, a warm
# worker's cached attach keeps serving without remapping.  Before this
# registry, every evaluate_decision_mc(jobs=N) call built and unlinked
# a fresh pool even for the same history object (ISSUE 8).  Bounded
# LRU: evicting a pool only unlinks shm blocks; the next call on that
# history pays one rebuild, results are unchanged.

_POOL_REGISTRY: "OrderedDict[str, SharedTracePool]" = OrderedDict()
_POOL_REGISTRY_MAX = 8
_POOL_REGISTRY_PID: int = -1


def history_content_key(history: SpotPriceHistory) -> str:
    """Content hash of a whole history: every market's trace bytes.

    Equal key implies every trace is bit-identical, which is the same
    keying contract the artifact store uses — safe to share shm blocks
    (and therefore replay inputs) across calls.
    """
    import hashlib

    h = hashlib.sha256()
    for key, trace in sorted(history.items(), key=lambda kv: str(kv[0])):
        h.update(str(key).encode())
        h.update(b"\x00")
        h.update(trace.content_hash().encode())
        h.update(b"\x00")
    return h.hexdigest()


def shared_trace_handle(history: SpotPriceHistory) -> SharedHistoryHandle:
    """The registry's handle for this history content, building on miss.

    Raises whatever :class:`SharedTracePool` raises when the platform
    cannot provide shared memory — callers keep their fail-open
    pickling fallback.  Hits and misses land in ``cache.shm_pool_*``
    metrics.
    """
    global _POOL_REGISTRY_PID
    pid = os.getpid()
    if _POOL_REGISTRY_PID != pid:
        # Fresh process — or a forked child that inherited the parent's
        # registry: those pools are the parent's, just forget them
        # (SharedTracePool.close() is pid-guarded anyway).
        _POOL_REGISTRY.clear()
        _POOL_REGISTRY_PID = pid
    metrics = obs.get_metrics()
    key = history_content_key(history)
    pool = _POOL_REGISTRY.get(key)
    if pool is not None:
        _POOL_REGISTRY.move_to_end(key)
        metrics.inc("cache.shm_pool_hits")
        return pool.handle
    metrics.inc("cache.shm_pool_misses")
    pool = SharedTracePool(history)
    _POOL_REGISTRY[key] = pool
    while len(_POOL_REGISTRY) > _POOL_REGISTRY_MAX:
        _, evicted = _POOL_REGISTRY.popitem(last=False)
        evicted.close()
        metrics.inc("cache.shm_pool_evictions")
    return pool.handle


def close_trace_pools() -> None:
    """Unlink every registered pool's blocks (tests, process teardown).

    Workers notice nothing until their next attach of a *different*
    pool (their existing zero-copy mappings keep the pages alive); the
    next parent-side call simply rebuilds.
    """
    global _POOL_REGISTRY_PID
    pools = list(_POOL_REGISTRY.values())
    _POOL_REGISTRY.clear()
    # Reset the pid stamp with the registry: a cleared registry in the
    # stamped owner process is indistinguishable from a fresh one, and
    # leaving the stale stamp would skip the fork guard on next use.
    _POOL_REGISTRY_PID = -1
    for pool in pools:
        pool.close()


def _drop_attached() -> None:
    """Close every worker-side attached mapping (tests, teardown).

    The empty pool id matches nothing, so :func:`_evict_superseded`
    treats every cached attach as superseded and releases it.
    """
    _evict_superseded("")


register_cache_clearer(close_trace_pools)
register_cache_clearer(_drop_attached)
