"""Vectorised trace replay over many starting points.

:func:`repro.execution.replay.replay_decision` drives one replay with
scalar trace scans (``first_at_or_below`` / ``first_exceedance`` walk a
boolean suffix per call).  Monte-Carlo evaluation replays the *same
decision* from hundreds of starting points, so here the per-(trace, bid)
next-launch / next-death segment indices are precomputed once (and
served from the shared cache in :mod:`.kernels`) and every start is
resolved with a ``searchsorted`` — all launches, deaths, progress
computations and the completion cut-back pass become array operations
over the whole batch.

Both spot semantics are batched: the single-shot kernel resolves each
group's one launch/death per start in a single array pass, and the
persistent kernel iterates relaunch *rounds* level by level — each round
advances every still-active sample one launch/death/progress step as
array operations, so the Python iteration count is the maximum number of
relaunches of any sample, not the number of samples.

The arithmetic mirrors the scalar replay operation-for-operation (same
IEEE ops in the same order; each run window's bill is evaluated with the
very same :func:`billed_spot_cost` call), so the results — including the
per-group records, hourly billing, checkpoint-storage accounting and the
cost ledger — are bit-identical to a sequential loop of
``replay_decision`` calls.  :func:`replay_window_batch` exposes the same
kernels over per-element windows and per-sample remaining work for the
adaptive executor.  See DESIGN.md §8 for the kernel-layer contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import obs
from ..cloud.billing import BillingPolicy, CONTINUOUS, CostLedger
from ..core.ckpt_math import checkpoints_completed, total_wall
from ..core.problem import Decision, Problem
from ..errors import ConfigurationError, TraceError
from ..market.history import SpotPriceHistory
from .kernels import (
    billed_cost_fast,
    checkpoints_completed_arr,
    progress_after_wall_arr,
    total_wall_arr,
    trace_tables,
)
from .replay import (
    SEMANTICS,
    WindowOutcome,
    checkpoint_storage_cost,
    decision_horizon,
    observe_result,
)
from .results import GroupRunRecord, RunResult

#: Scalar reference for every public kernel (reprolint R004); parity is
#: asserted bit-exactly in tests/test_batch_parity.py.
KERNEL_ORACLES = {
    "replay_window_batch": "repro.execution.replay.replay_window",
    "replay_batch": "repro.execution.replay.replay_decision",
}


@dataclass
class _GroupCtx:
    """Per-group constants plus the shared precomputed trace tables."""

    spec: object
    bid: float
    interval: float
    work: float
    eff_interval: float
    need_wall: float  # failure-free wall time for the full work
    done_wall: float
    k_done: int  # checkpoints of a completed run
    trace: object
    tables: object  # kernels.TraceBidTables


def _group_ctx(spec, gd, trace, cache: bool = True) -> _GroupCtx:
    work = spec.exec_time
    eff = min(gd.interval, work)
    return _GroupCtx(
        spec=spec,
        bid=gd.bid,
        interval=gd.interval,
        work=work,
        eff_interval=eff,
        need_wall=total_wall(work, eff, spec.checkpoint_overhead),
        done_wall=total_wall(work, eff, spec.checkpoint_overhead),
        k_done=checkpoints_completed(work, work, eff),
        trace=trace,
        tables=trace_tables(trace, gd.bid, cache=cache),
    )


@dataclass
class _GroupBatch:
    """One group's replay outcome across all starts, as arrays."""

    launched: np.ndarray  # bool
    launch: np.ndarray  # launch time (garbage where not launched)
    end: np.ndarray
    terminated: np.ndarray  # bool
    completed: np.ndarray  # bool
    productive: np.ndarray
    saved: np.ndarray
    n_ckpt: np.ndarray
    cost: np.ndarray


def _run_group_batch(
    ctx: _GroupCtx,
    t0: np.ndarray,
    t1: np.ndarray,
    work: Optional[np.ndarray] = None,
    billing: BillingPolicy = CONTINUOUS,
) -> _GroupBatch:
    """Array version of ``replay._run_group_in_window`` (single-shot)
    over per-element windows ``[t0, t1)``.

    ``work`` optionally carries per-element remaining work (all > 0, the
    adaptive path); without it every element owes the group's full work
    and the precomputed scalar timeline constants apply.
    """
    tb = ctx.tables
    times = tb.times
    n = tb.n_segments
    spec = ctx.spec
    if work is None:
        work_a = ctx.work
        eff = ctx.eff_interval
        need_wall = ctx.need_wall
        done_wall = ctx.done_wall
        k_done: object = ctx.k_done
    else:
        work_a = np.asarray(work, dtype=float)
        if np.any(work_a <= 0.0):
            raise ConfigurationError("batched windows need work > 0 everywhere")
        eff = np.minimum(ctx.interval, work_a)
        done_wall = total_wall_arr(work_a, eff, spec.checkpoint_overhead)
        need_wall = done_wall
        k_done = checkpoints_completed_arr(work_a, work_a, eff)

    k = np.searchsorted(times, t0, side="right") - 1
    below_k = tb.below[k]
    launch_seg = np.where(below_k, k, tb.nxt_below_ext[np.minimum(k + 1, n)])
    launch = np.where(below_k, t0, tb.times_ext[launch_seg])
    launched = launch < t1  # never-launch gives +inf, also excluded here

    death_seg = tb.nxt_above_ext[np.minimum(launch_seg + 1, n)]
    death = tb.times_ext[death_seg]
    # Unlaunched elements carry launch = +inf; pin them to the window
    # start so the arithmetic below stays finite (their outputs are
    # overwritten wholesale at the end).
    launch = np.where(launched, launch, t0)
    horizon = np.minimum(t1, launch + need_wall)
    terminated = death < horizon
    end = np.where(terminated, death, horizon)
    wall = np.maximum(end - launch, 0.0)

    productive, saved, n_ckpt = progress_after_wall_arr(
        wall, work_a, eff, spec.checkpoint_overhead, done_wall, k_done
    )
    completed = productive >= work_a - 1e-9
    bank = np.flatnonzero(launched & ~terminated & ~completed)
    if bank.size:
        boundary_wall = np.maximum(0.0, wall[bank] - spec.checkpoint_overhead)
        sel = lambda v: v if np.isscalar(v) else v[bank]  # noqa: E731
        banked, _s, _n = progress_after_wall_arr(
            boundary_wall, sel(work_a), sel(eff), spec.checkpoint_overhead,
            sel(done_wall), sel(k_done),
        )
        saved[bank] = np.maximum(saved[bank], banked)

    # Unlaunched: dead at the window boundary with nothing gained.
    end = np.where(launched, end, t1)
    terminated = np.where(launched, terminated, True)
    completed = np.where(launched, completed, False)
    productive = np.where(launched, productive, 0.0)
    saved = np.where(launched, saved, 0.0)
    n_ckpt = np.where(launched, n_ckpt, 0)

    cost = np.zeros(t0.size)
    bill_end = np.minimum(end, ctx.trace.end_time)
    for i in np.flatnonzero(launched & (end > launch)):
        cost[i] = (
            billed_cost_fast(
                ctx.trace, float(launch[i]), float(bill_end[i]),
                bool(terminated[i]), billing,
            )
            * spec.n_instances
        )
    return _GroupBatch(
        launched=launched, launch=launch, end=end, terminated=terminated,
        completed=completed, productive=productive, saved=saved,
        n_ckpt=n_ckpt, cost=cost,
    )


def _run_group_persistent_batch(
    ctx: _GroupCtx,
    t0: np.ndarray,
    t1: np.ndarray,
    work: Optional[np.ndarray] = None,
    billing: BillingPolicy = CONTINUOUS,
) -> _GroupBatch:
    """Array version of ``replay._run_group_persistent``.

    The scalar drives one sample through its relaunch rounds with a
    ``while`` loop; here each iteration advances *every* still-active
    sample one round — launch lookup, death lookup, progress and the
    died / survived-to-boundary / completed split all as array
    operations.  Samples leave the active set as they finish, so the
    Python-level iteration count is ``max_i rounds(i)``, typically a
    handful.  Per-round state updates replicate the scalar ordering
    exactly; spot bills accrue through the same per-round
    ``billed_spot_cost`` calls in the same order per sample.
    """
    tb = ctx.tables
    times = tb.times
    n = tb.n_segments
    spec = ctx.spec
    trace = ctx.trace
    O = spec.checkpoint_overhead
    R = spec.recovery_overhead
    size = t0.size
    if work is None:
        work_a = np.full(size, ctx.work)
    else:
        work_a = np.asarray(work, dtype=float)
    if np.any(work_a <= 0.0):
        raise ConfigurationError("batched windows need work > 0 everywhere")
    eff_interval = np.minimum(ctx.interval, work_a)

    saved = np.zeros(size)
    productive_tot = np.zeros(size)
    ckpts_tot = np.zeros(size, dtype=np.int64)
    cost = np.zeros(size)
    first_launch = np.full(size, np.nan)
    now = np.array(t0, dtype=float, copy=True)
    end = np.array(t1, dtype=float, copy=True)
    dead = np.ones(size, dtype=bool)
    completed = np.zeros(size, dtype=bool)
    active = np.ones(size, dtype=bool)

    while True:
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        nw = now[idx]
        # Launch attempt: price <= bid now, else the next below-bid
        # segment (first_at_or_below); +inf when the trace ran out.
        can = nw < trace.end_time
        k = np.minimum(np.searchsorted(times, nw, side="right") - 1, n - 1)
        below_k = tb.below[k]
        seg = np.where(below_k, k, tb.nxt_below_ext[np.minimum(k + 1, n)])
        launch = np.where(below_k, nw, tb.times_ext[seg])
        launch = np.where(can, launch, np.inf)
        miss = launch >= t1[idx]
        if miss.any():
            j = idx[miss]
            end[j] = t1[j]
            dead[j] = True
            active[j] = False
        go = np.flatnonzero(~miss)
        if go.size == 0:
            continue
        j = idx[go]
        lj = launch[go]
        sj = seg[go]
        first_launch[j] = np.where(np.isnan(first_launch[j]), lj, first_launch[j])

        recovery = np.where(saved[j] > 0, R, 0.0)
        remaining = work_a[j] - saved[j]
        eff_r = np.minimum(eff_interval[j], remaining)
        done_wall = total_wall_arr(remaining, eff_r, O)
        need_wall = recovery + done_wall
        # Death: the next above-bid segment strictly after the launch
        # segment (the launch segment itself is at/below the bid, so the
        # scalar's death <= launch branch is unreachable).
        death = tb.times_ext[tb.nxt_above_ext[np.minimum(sj + 1, n)]]
        horizon = np.minimum(t1[j], lj + need_wall)
        died = death < horizon
        run_end = np.where(died, death, horizon)
        avail = np.maximum(0.0, (run_end - lj) - recovery)
        k_done = checkpoints_completed_arr(remaining, remaining, eff_r)
        productive, newly_saved, n_ckpt = progress_after_wall_arr(
            avail, remaining, eff_r, O, done_wall, k_done
        )
        bill_end = np.minimum(run_end, trace.end_time)
        for b in np.flatnonzero(run_end > lj):
            cost[j[b]] += (
                billed_cost_fast(
                    trace, float(lj[b]), float(bill_end[b]), bool(died[b]),
                    billing,
                )
                * spec.n_instances
            )
        productive_tot[j] += productive
        ckpts_tot[j] += n_ckpt
        comp = productive >= remaining - 1e-9

        cj = j[comp]
        saved[cj] = work_a[cj]
        end[cj] = run_end[comp]
        dead[cj] = False
        completed[cj] = True
        active[cj] = False

        dmask = died & ~comp  # relaunch next round from the death time
        dj = j[dmask]
        saved[dj] = saved[dj] + newly_saved[dmask]
        now[dj] = run_end[dmask]
        dead[dj] = True
        end[dj] = run_end[dmask]

        smask = ~died & ~comp  # survived to the window boundary: bank
        if smask.any():
            sjj = j[smask]
            boundary = np.maximum(0.0, avail[smask] - O)
            banked, _s, _n = progress_after_wall_arr(
                boundary, remaining[smask], eff_r[smask], O,
                done_wall[smask], k_done[smask],
            )
            saved[sjj] = saved[sjj] + np.maximum(newly_saved[smask], banked)
            end[sjj] = run_end[smask]
            dead[sjj] = False
            active[sjj] = False

    return _GroupBatch(
        launched=~np.isnan(first_launch),
        launch=first_launch,
        end=end,
        terminated=dead,
        completed=completed,
        productive=productive_tot,
        saved=np.minimum(saved, work_a),
        n_ckpt=ckpts_tot,
        cost=cost,
    )


def _records_at(
    ctxs: Sequence[_GroupCtx], runs: Sequence[_GroupBatch], i: int, t1_i: float
) -> tuple[GroupRunRecord, ...]:
    recs = []
    for ctx, run in zip(ctxs, runs):
        launched = bool(run.launched[i])
        recs.append(
            GroupRunRecord(
                key=ctx.spec.key,
                bid=ctx.bid,
                interval=ctx.interval,
                launched=launched,
                launch_time=float(run.launch[i]) if launched else None,
                end_time=float(run.end[i]) if launched else t1_i,
                terminated=bool(run.terminated[i]),
                completed=bool(run.completed[i]),
                productive=float(run.productive[i]),
                saved=float(run.saved[i]),
                n_checkpoints=int(run.n_ckpt[i]),
                spot_cost=float(run.cost[i]),
            )
        )
    return tuple(recs)


def replay_window_batch(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    t0: np.ndarray,
    t1: np.ndarray,
    works: Optional[np.ndarray] = None,
    persistent: bool = False,
    billing: BillingPolicy = CONTINUOUS,
    table_cache: bool = True,
) -> list[WindowOutcome]:
    """Batched :func:`repro.execution.replay.replay_window` over
    per-element windows ``[t0_i, t1_i)``.

    ``works`` optionally carries per-sample remaining work, shaped
    ``(n_groups, n_samples)`` — the adaptive executor's batched step,
    where sample *i*'s scaled sub-problem owes ``works[g, i]`` hours of
    group *g* (``fraction_done`` is folded into ``works`` by the caller,
    so the outcome's ``gained_fraction`` is relative to ``works``).
    Outcomes are bit-identical to per-sample ``replay_window`` calls on
    the correspondingly scaled problems.
    """
    t0 = np.asarray(t0, dtype=float)
    t1 = np.asarray(t1, dtype=float)
    if np.any(t1 <= t0):
        i = int(np.flatnonzero(t1 <= t0)[0])
        raise ConfigurationError(f"empty window [{t0[i]}, {t1[i]})")
    if not decision.groups:
        return [
            WindowOutcome((), 0.0, False, None, None, 0.0, float(t))
            for t in t0
        ]
    obs.get_metrics().inc("replay.window_batches")

    ctxs = []
    for g, gd in enumerate(decision.groups):
        spec = problem.groups[gd.group_index]
        trace = history.get(spec.key)
        if np.any(t1 > trace.end_time):
            i = int(np.flatnonzero(t1 > trace.end_time)[0])
            raise TraceError(
                f"trace for {spec.key} ends at {trace.end_time}, "
                f"window needs {t1[i]}"
            )
        if t0.size and t0.min() < trace.start_time:
            bad = t0[t0 < trace.start_time][0]
            raise TraceError(
                f"t0={bad} outside trace window "
                f"[{trace.start_time}, {trace.end_time})"
            )
        ctxs.append(_group_ctx(spec, gd, trace, cache=table_cache))

    runner = _run_group_persistent_batch if persistent else _run_group_batch
    runs = [
        runner(
            ctx, t0, t1,
            work=None if works is None else works[g],
            billing=billing,
        )
        for g, ctx in enumerate(ctxs)
    ]

    # Completion cut-back (replay_window's second pass): every other
    # group is clipped to the first completion instant and recomputed.
    comp_end = np.where(
        np.stack([r.completed for r in runs]),
        np.stack([r.end for r in runs]),
        np.inf,
    )
    t_done = comp_end.min(axis=0)
    winner = comp_end.argmin(axis=0)  # first index on ties, like min(tuples)
    any_comp = np.isfinite(t_done)
    rerun = np.flatnonzero(any_comp & (t_done > t0))
    if rerun.size:
        for g, ctx in enumerate(ctxs):
            # The winner completed *at* t_done — its first-pass record is
            # already clipped correctly, and recomputing against the
            # completion horizon can only degrade it at float edges, so
            # (like replay_window) only the losing groups are recomputed.
            idx = rerun[winner[rerun] != g]
            if idx.size == 0:
                continue
            sub = runner(
                ctx, t0[idx], t_done[idx],
                work=None if works is None else works[g][idx],
                billing=billing,
            )
            for name in (
                "launched", "launch", "end", "terminated", "completed",
                "productive", "saved", "n_ckpt", "cost",
            ):
                getattr(runs[g], name)[idx] = getattr(sub, name)

    outcomes = []
    for i in range(t0.size):
        horizon_i = float(t_done[i]) if any_comp[i] else float(t1[i])
        records = _records_at(ctxs, runs, i, horizon_i)
        cost = sum(r.spot_cost for r in records)
        if any_comp[i]:
            win_spec = problem.groups[decision.groups[int(winner[i])].group_index]
            outcomes.append(
                WindowOutcome(
                    records=records,
                    cost=cost,
                    completed=True,
                    completed_key=str(win_spec.key),
                    completion_time=float(t_done[i]),
                    gained_fraction=1.0,
                    all_dead_at=None,
                )
            )
            continue
        gained = 0.0
        for g, (ctx, rec) in enumerate(zip(ctxs, records)):
            work_gi = ctx.work if works is None else float(works[g][i])
            gained = max(gained, rec.saved / work_gi)
        any_alive = any(not r.terminated for r in records)
        all_dead_at = None if any_alive else max(r.end_time for r in records)
        outcomes.append(
            WindowOutcome(
                records=records,
                cost=cost,
                completed=False,
                completed_key=None,
                completion_time=None,
                gained_fraction=gained,
                all_dead_at=all_dead_at,
            )
        )
    return outcomes


def replay_batch(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    starts: np.ndarray,
    horizon: Optional[float] = None,
    semantics: str = "single-shot",
    billing: BillingPolicy = CONTINUOUS,
    account_storage: bool = False,
    table_cache: bool = True,
) -> list[RunResult]:
    """Replay ``decision`` from every start in ``starts``; equivalent to
    ``[replay_decision(problem, decision, history, t, horizon=horizon,
    semantics=semantics, billing=billing, account_storage=account_storage)
    for t in starts]`` with the trace scans batched across starts."""
    if semantics not in SEMANTICS:
        raise ConfigurationError(
            f"unknown semantics {semantics!r}; known: {SEMANTICS}"
        )
    starts = np.asarray(starts, dtype=float)
    metrics = obs.get_metrics()
    metrics.inc("replay.batch_runs")
    metrics.inc("replay.batch_starts", starts.size)
    ondemand = problem.ondemand_options[decision.ondemand_index]
    if not decision.groups:
        out = []
        for t in starts:
            ledger = CostLedger()
            cost = ondemand.full_run_cost
            ledger.add("ondemand", f"full run on {ondemand.itype.name}", cost)
            out.append(
                observe_result(
                    RunResult(
                        start_time=float(t), cost=cost,
                        makespan=ondemand.exec_time, completed_by="ondemand",
                        ondemand_hours=ondemand.exec_time,
                        group_records=(), ledger=ledger,
                    ),
                    problem, decision, history, billing, semantics,
                    account_storage,
                )
            )
        return out

    if horizon is None:
        horizon = decision_horizon(problem, decision)
    t1 = starts + horizon
    for gd in decision.groups:
        spec = problem.groups[gd.group_index]
        trace = history.get(spec.key)
        if starts.size and (
            starts.min() < trace.start_time or starts.max() >= trace.end_time
        ):
            bad = starts[
                (starts < trace.start_time) | (starts >= trace.end_time)
            ][0]
            raise TraceError(
                f"t0={bad} outside trace window "
                f"[{trace.start_time}, {trace.end_time})"
            )
        t1 = np.minimum(t1, trace.end_time)
    if np.any(t1 <= starts):
        raise TraceError("no trace data at the requested start time")

    outcomes = replay_window_batch(
        problem, decision, history, starts, t1,
        persistent=(semantics == "persistent"), billing=billing,
        table_cache=table_cache,
    )

    out = []
    for i, outcome in enumerate(outcomes):
        t0_i = float(starts[i])
        ledger = CostLedger()
        for rec in outcome.records:
            ledger.add("spot", f"{rec.key} bid=${rec.bid:.4f}", rec.spot_cost)
        if outcome.completed:
            storage = 0.0
            if account_storage:
                storage = checkpoint_storage_cost(
                    problem, decision, outcome.records, outcome.completion_time
                )
                if storage > 0:
                    ledger.add("storage", "checkpoint images", storage)
            result = RunResult(
                start_time=t0_i,
                cost=outcome.cost + storage,
                makespan=outcome.completion_time - t0_i,
                completed_by=outcome.completed_key,
                ondemand_hours=0.0,
                group_records=outcome.records,
                ledger=ledger,
            )
        else:
            # On-demand recovery from the best checkpoint (Formula 7).
            min_ratio = 1.0
            for gd, rec in zip(decision.groups, outcome.records):
                spec = problem.groups[gd.group_index]
                if rec.saved > 0:
                    r = (
                        spec.exec_time - rec.saved + spec.recovery_overhead
                    ) / spec.exec_time
                    min_ratio = min(min_ratio, max(0.0, min(1.0, r)))
            od_start = (
                outcome.all_dead_at
                if outcome.all_dead_at is not None
                else float(t1[i])
            )
            od_hours = min_ratio * ondemand.exec_time
            od_cost = od_hours * ondemand.fleet_rate
            ledger.add(
                "ondemand",
                f"recovery of {min_ratio:.2%} on {ondemand.itype.name}",
                od_cost,
            )
            storage = 0.0
            if account_storage:
                storage = checkpoint_storage_cost(
                    problem, decision, outcome.records, od_start + od_hours
                )
                if storage > 0:
                    ledger.add("storage", "checkpoint images", storage)
            result = RunResult(
                start_time=t0_i,
                cost=outcome.cost + od_cost + storage,
                makespan=(od_start - t0_i) + od_hours,
                completed_by="ondemand",
                ondemand_hours=od_hours,
                group_records=outcome.records,
                ledger=ledger,
            )
        out.append(
            observe_result(
                result, problem, decision, history, billing, semantics,
                account_storage,
            )
        )
    return out
