"""Vectorised single-shot trace replay over many starting points.

:func:`repro.execution.replay.replay_decision` drives one replay with
scalar trace scans (``first_at_or_below`` / ``first_exceedance`` walk a
boolean suffix per call).  Monte-Carlo evaluation replays the *same
decision* from hundreds of starting points, so here the per-(trace, bid)
next-launch / next-death segment indices are precomputed once and every
start is resolved with a ``searchsorted`` — all launches, deaths,
progress computations and the completion cut-back pass become array
operations over the whole batch.

The arithmetic mirrors the scalar replay operation-for-operation (same
IEEE ops in the same order; the price integral is evaluated with the
very same :func:`integrate_price` per run window), so the results —
including the per-group records and the cost ledger — are bit-identical
to a sequential loop of ``replay_decision`` calls.  The batch path only
implements the analytic model's *single-shot* semantics with continuous
billing and no storage accounting; :mod:`.montecarlo` dispatches here
when those hold and falls back to the scalar replay otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import obs
from ..cloud.billing import CostLedger
from ..cloud.spot import integrate_price
from ..core.ckpt_math import checkpoints_completed, total_wall
from ..core.problem import Decision, Problem
from ..errors import TraceError
from ..market.history import SpotPriceHistory
from .replay import decision_horizon, observe_result
from .results import GroupRunRecord, RunResult


@dataclass
class _GroupCtx:
    """Per-group constants plus the precomputed trace indices."""

    spec: object
    bid: float
    interval: float
    work: float
    eff_interval: float
    need_wall: float  # failure-free wall time for the remaining work
    done_wall: float
    k_done: int  # checkpoints of a completed run
    trace: object
    times: np.ndarray
    times_ext: np.ndarray  # times with +inf sentinel (index n = "never")
    below: np.ndarray  # prices <= bid per segment
    nxt_below_ext: np.ndarray  # smallest j >= i with prices[j] <= bid, else n
    nxt_above_ext: np.ndarray  # smallest j >= i with prices[j] >  bid, else n


def _next_index(mask: np.ndarray) -> np.ndarray:
    """``out[i]`` = smallest ``j >= i`` with ``mask[j]``, else ``n``;
    length ``n + 1`` so a query one past the end is the sentinel."""
    n = mask.size
    pos = np.where(mask, np.arange(n), n)
    nxt = np.minimum.accumulate(pos[::-1])[::-1]
    return np.concatenate([nxt, [n]])


def _group_ctx(spec, gd, trace) -> _GroupCtx:
    work = spec.exec_time
    eff = min(gd.interval, work)
    below = trace.prices <= gd.bid
    return _GroupCtx(
        spec=spec,
        bid=gd.bid,
        interval=gd.interval,
        work=work,
        eff_interval=eff,
        need_wall=total_wall(work, eff, spec.checkpoint_overhead),
        done_wall=total_wall(work, eff, spec.checkpoint_overhead),
        k_done=checkpoints_completed(work, work, eff),
        trace=trace,
        times=trace.times,
        times_ext=np.concatenate([trace.times, [np.inf]]),
        below=below,
        nxt_below_ext=_next_index(below),
        nxt_above_ext=_next_index(~below),
    )


def _progress_vec(
    wall: np.ndarray, exec_time: float, interval: float, overhead: float,
    done_wall: float, k_done: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`repro.core.ckpt_math.progress_after_wall` —
    identical branch structure and float operations, elementwise."""
    cycle = interval + overhead
    k_full = np.floor(wall / cycle + 1e-12)
    rem = wall - k_full * cycle
    productive = np.where(
        rem <= interval + 1e-12, k_full * interval + rem, (k_full + 1.0) * interval
    )
    productive = np.minimum(productive, exec_time)
    saved = np.minimum(k_full * interval, productive)
    done = wall >= done_wall - 1e-12
    productive = np.where(done, exec_time, productive)
    saved = np.where(done, exec_time, saved)
    n_ckpt = np.where(done, float(k_done), k_full).astype(np.int64)
    return productive, saved, n_ckpt


@dataclass
class _GroupBatch:
    """One group's replay outcome across all starts, as arrays."""

    launched: np.ndarray  # bool
    launch: np.ndarray  # launch time (garbage where not launched)
    end: np.ndarray
    terminated: np.ndarray  # bool
    completed: np.ndarray  # bool
    productive: np.ndarray
    saved: np.ndarray
    n_ckpt: np.ndarray
    cost: np.ndarray


def _run_group_batch(
    ctx: _GroupCtx, t0: np.ndarray, t1: np.ndarray
) -> _GroupBatch:
    """Array version of ``replay._run_group_in_window`` (single-shot,
    continuous billing, full work) over per-element windows ``[t0, t1)``."""
    times = ctx.times
    n = ctx.below.size
    k = np.searchsorted(times, t0, side="right") - 1
    below_k = ctx.below[k]
    launch_seg = np.where(below_k, k, ctx.nxt_below_ext[np.minimum(k + 1, n)])
    launch = np.where(below_k, t0, ctx.times_ext[launch_seg])
    launched = launch < t1  # never-launch gives +inf, also excluded here

    death_seg = ctx.nxt_above_ext[np.minimum(launch_seg + 1, n)]
    death = ctx.times_ext[death_seg]
    # Unlaunched elements carry launch = +inf; pin them to the window
    # start so the arithmetic below stays finite (their outputs are
    # overwritten wholesale at the end).
    launch = np.where(launched, launch, t0)
    horizon = np.minimum(t1, launch + ctx.need_wall)
    terminated = death < horizon
    end = np.where(terminated, death, horizon)
    wall = np.maximum(end - launch, 0.0)

    spec = ctx.spec
    productive, saved, n_ckpt = _progress_vec(
        wall, ctx.work, ctx.eff_interval, spec.checkpoint_overhead,
        ctx.done_wall, ctx.k_done,
    )
    completed = productive >= ctx.work - 1e-9
    bank = np.flatnonzero(launched & ~terminated & ~completed)
    if bank.size:
        boundary_wall = np.maximum(0.0, wall[bank] - spec.checkpoint_overhead)
        banked, _s, _n = _progress_vec(
            boundary_wall, ctx.work, ctx.eff_interval, spec.checkpoint_overhead,
            ctx.done_wall, ctx.k_done,
        )
        saved[bank] = np.maximum(saved[bank], banked)

    # Unlaunched: dead at the window boundary with nothing gained.
    end = np.where(launched, end, t1)
    terminated = np.where(launched, terminated, True)
    completed = np.where(launched, completed, False)
    productive = np.where(launched, productive, 0.0)
    saved = np.where(launched, saved, 0.0)
    n_ckpt = np.where(launched, n_ckpt, 0)

    cost = np.zeros(t0.size)
    bill_end = np.minimum(end, ctx.trace.end_time)
    for i in np.flatnonzero(launched & (end > launch)):
        cost[i] = (
            integrate_price(ctx.trace, float(launch[i]), float(bill_end[i]))
            * spec.n_instances
        )
    return _GroupBatch(
        launched=launched, launch=launch, end=end, terminated=terminated,
        completed=completed, productive=productive, saved=saved,
        n_ckpt=n_ckpt, cost=cost,
    )


def _records_at(
    ctxs: Sequence[_GroupCtx], runs: Sequence[_GroupBatch], i: int, t1_i: float
) -> tuple[GroupRunRecord, ...]:
    recs = []
    for ctx, run in zip(ctxs, runs):
        launched = bool(run.launched[i])
        recs.append(
            GroupRunRecord(
                key=ctx.spec.key,
                bid=ctx.bid,
                interval=ctx.interval,
                launched=launched,
                launch_time=float(run.launch[i]) if launched else None,
                end_time=float(run.end[i]) if launched else t1_i,
                terminated=bool(run.terminated[i]),
                completed=bool(run.completed[i]),
                productive=float(run.productive[i]),
                saved=float(run.saved[i]),
                n_checkpoints=int(run.n_ckpt[i]),
                spot_cost=float(run.cost[i]),
            )
        )
    return tuple(recs)


def replay_batch(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    starts: np.ndarray,
    horizon: Optional[float] = None,
) -> list[RunResult]:
    """Replay ``decision`` from every start in ``starts``; equivalent to
    ``[replay_decision(problem, decision, history, t, horizon=horizon)
    for t in starts]`` with default (single-shot, continuous-billing)
    settings, but with the trace scans batched across starts."""
    starts = np.asarray(starts, dtype=float)
    metrics = obs.get_metrics()
    metrics.inc("replay.batch_runs")
    metrics.inc("replay.batch_starts", starts.size)
    ondemand = problem.ondemand_options[decision.ondemand_index]
    if not decision.groups:
        out = []
        for t in starts:
            ledger = CostLedger()
            cost = ondemand.full_run_cost
            ledger.add("ondemand", f"full run on {ondemand.itype.name}", cost)
            out.append(
                observe_result(
                    RunResult(
                        start_time=float(t), cost=cost,
                        makespan=ondemand.exec_time, completed_by="ondemand",
                        ondemand_hours=ondemand.exec_time,
                        group_records=(), ledger=ledger,
                    ),
                    problem, decision, history,
                )
            )
        return out

    if horizon is None:
        horizon = decision_horizon(problem, decision)
    ctxs = []
    t1 = starts + horizon
    for gd in decision.groups:
        spec = problem.groups[gd.group_index]
        trace = history.get(spec.key)
        if starts.size and (
            starts.min() < trace.start_time or starts.max() >= trace.end_time
        ):
            bad = starts[
                (starts < trace.start_time) | (starts >= trace.end_time)
            ][0]
            raise TraceError(
                f"t0={bad} outside trace window "
                f"[{trace.start_time}, {trace.end_time})"
            )
        ctxs.append(_group_ctx(spec, gd, trace))
        t1 = np.minimum(t1, trace.end_time)
    if np.any(t1 <= starts):
        raise TraceError("no trace data at the requested start time")

    runs = [_run_group_batch(ctx, starts, t1) for ctx in ctxs]

    # Completion cut-back (replay_window's second pass): every other
    # group is clipped to the first completion instant and recomputed.
    comp_end = np.where(
        np.stack([r.completed for r in runs]),
        np.stack([r.end for r in runs]),
        np.inf,
    )
    t_done = comp_end.min(axis=0)
    winner = comp_end.argmin(axis=0)  # first index on ties, like min(tuples)
    any_comp = np.isfinite(t_done)
    rerun = np.flatnonzero(any_comp & (t_done > starts))
    if rerun.size:
        for g, ctx in enumerate(ctxs):
            # The winner completed *at* t_done — its first-pass record is
            # already clipped correctly, and recomputing against the
            # completion horizon can only degrade it at float edges, so
            # (like replay_window) only the losing groups are recomputed.
            idx = rerun[winner[rerun] != g]
            if idx.size == 0:
                continue
            sub = _run_group_batch(ctx, starts[idx], t_done[idx])
            for name in (
                "launched", "launch", "end", "terminated", "completed",
                "productive", "saved", "n_ckpt", "cost",
            ):
                getattr(runs[g], name)[idx] = getattr(sub, name)

    spot_total = np.zeros(starts.size)
    for r in runs:
        spot_total = spot_total + r.cost

    # On-demand recovery inputs for the non-completed starts (Formula 7).
    min_ratio = np.ones(starts.size)
    for ctx, r in zip(ctxs, runs):
        spec = ctx.spec
        ratio = (spec.exec_time - r.saved + spec.recovery_overhead) / spec.exec_time
        ratio = np.maximum(0.0, np.minimum(1.0, ratio))
        min_ratio = np.minimum(min_ratio, np.where(r.saved > 0, ratio, 1.0))
    all_dead = np.all(np.stack([r.terminated for r in runs]), axis=0)
    max_end = np.max(np.stack([r.end for r in runs]), axis=0)
    od_start = np.where(all_dead, max_end, t1)
    od_hours = min_ratio * ondemand.exec_time
    od_cost = od_hours * ondemand.fleet_rate

    out = []
    for i in range(starts.size):
        t0_i = float(starts[i])
        horizon_i = float(t_done[i]) if any_comp[i] else float(t1[i])
        records = _records_at(ctxs, runs, i, horizon_i)
        ledger = CostLedger()
        for rec in records:
            ledger.add("spot", f"{rec.key} bid=${rec.bid:.4f}", rec.spot_cost)
        if any_comp[i]:
            win_spec = problem.groups[decision.groups[int(winner[i])].group_index]
            result = RunResult(
                start_time=t0_i,
                cost=float(spot_total[i]),
                makespan=float(t_done[i]) - t0_i,
                completed_by=str(win_spec.key),
                ondemand_hours=0.0,
                group_records=records,
                ledger=ledger,
            )
        else:
            ledger.add(
                "ondemand",
                f"recovery of {float(min_ratio[i]):.2%} on {ondemand.itype.name}",
                float(od_cost[i]),
            )
            result = RunResult(
                start_time=t0_i,
                cost=float(spot_total[i]) + float(od_cost[i]),
                makespan=(float(od_start[i]) - t0_i) + float(od_hours[i]),
                completed_by="ondemand",
                ondemand_hours=float(od_hours[i]),
                group_records=records,
                ledger=ledger,
            )
        out.append(observe_result(result, problem, decision, history))
    return out
