"""Trace replay of one decision (Section 5.1, "Simulation").

The paper evaluates decisions by replaying the recorded spot prices:
pick a starting point, run every selected circle group against the
actual price curve, terminate groups at out-of-bid events, and fall back
to on-demand recovery from the best checkpoint if everything dies.  The
replay here implements exactly that, sharing its checkpoint-timeline
arithmetic with the analytic model (:mod:`repro.core.ckpt_math`) so any
measured model/simulation gap is genuine model error, not bookkeeping
drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from .. import obs
from ..cloud.billing import BillingPolicy, CONTINUOUS, CostLedger
from ..cloud.spot import (
    billed_spot_cost,
    first_at_or_below,
    first_exceedance,
    integrate_price,
)
from ..core.ckpt_math import progress_after_wall, total_wall
from ..core.problem import Decision, Problem
from ..errors import ConfigurationError, TraceError
from ..market.history import SpotPriceHistory
from .results import GroupRunRecord, RunResult

#: If a group has not even launched after this many multiples of its
#: failure-free wall time, the replay gives up waiting on it.
_LAUNCH_PATIENCE = 3.0

#: Spot semantics for a full replay.  ``single-shot`` (the analytic
#: model's semantics, Section 3): a group terminated by an out-of-bid
#: event stays dead, and when every group is dead the on-demand fallback
#: finishes the job from the best checkpoint.  ``persistent`` (the
#: paper's simulation remark "plus an overhead of recovery when it is
#: restarted"): the spot request persists — when the price falls back
#: under the bid the group relaunches, pays the recovery overhead, and
#: resumes from its last checkpoint.
SEMANTICS = ("single-shot", "persistent")


@dataclass(frozen=True)
class WindowOutcome:
    """Result of running a decision inside one time window."""

    records: tuple[GroupRunRecord, ...]
    cost: float
    completed: bool
    completed_key: Optional[str]
    completion_time: Optional[float]  # absolute hours
    gained_fraction: float  # application fraction banked this window
    all_dead_at: Optional[float]  # when the last group died (None if any survive)


def _run_group_in_window(
    spec,
    bid: float,
    interval: float,
    work: float,
    trace,
    t0: float,
    t1: float,
    billing: BillingPolicy = CONTINUOUS,
) -> GroupRunRecord:
    """Drive one circle group over ``[t0, t1)`` against its trace.

    ``work`` is the productive hours this group still owes (its own time
    scale).  A group alive at ``t1`` banks its full progress — Algorithm
    1 checkpoints the final state at the window boundary.
    """
    need_wall = total_wall(work, min(interval, work), spec.checkpoint_overhead)
    launch = first_at_or_below(trace, bid, t0) if t0 < trace.end_time else None
    if launch is not None and launch >= t1:
        launch = None
    if launch is None:
        return GroupRunRecord(
            key=spec.key,
            bid=bid,
            interval=interval,
            launched=False,
            launch_time=None,
            end_time=t1,
            terminated=True,
            completed=False,
            productive=0.0,
            saved=0.0,
            n_checkpoints=0,
            spot_cost=0.0,
        )
    death = first_exceedance(trace, bid, launch)
    horizon = min(t1, launch + need_wall)
    if death is not None and death <= launch:
        end, terminated = launch, True
    elif death is None or death >= horizon:
        end, terminated = horizon, False
    else:
        end, terminated = death, True
    eff_interval = min(interval, work) if work > 0 else interval
    productive, saved, n_ckpt = progress_after_wall(
        end - launch, work, eff_interval, spec.checkpoint_overhead
    ) if work > 0 else (0.0, 0.0, 0)
    completed = work <= 0 or productive >= work - 1e-9
    if not terminated and not completed:
        # Survived to the window boundary: the adaptive algorithm
        # checkpoints the final state (Algorithm 1 line 22).  That final
        # checkpoint costs one overhead of work time, so the banked
        # progress is what was reached O hours before the boundary — this
        # is what makes very small optimization windows expensive.
        boundary_wall = max(0.0, (end - launch) - spec.checkpoint_overhead)
        banked, _saved2, _n2 = progress_after_wall(
            boundary_wall, work, eff_interval, spec.checkpoint_overhead
        )
        saved = max(saved, banked)
    cost = (
        billed_spot_cost(
            trace, launch, min(end, trace.end_time), terminated, billing
        )
        * spec.n_instances
        if end > launch
        else 0.0
    )
    return GroupRunRecord(
        key=spec.key,
        bid=bid,
        interval=interval,
        launched=True,
        launch_time=launch,
        end_time=end,
        terminated=terminated,
        completed=completed,
        productive=productive,
        saved=saved,
        n_checkpoints=n_ckpt,
        spot_cost=cost,
    )


def _run_group_persistent(
    spec,
    bid: float,
    interval: float,
    work: float,
    trace,
    t0: float,
    t1: float,
    billing: BillingPolicy = CONTINUOUS,
) -> GroupRunRecord:
    """Drive one *persistent* spot request over ``[t0, t1)``.

    The request relaunches after every out-of-bid event, pays the
    recovery overhead when resuming from a checkpoint, and continues
    until the work completes or the window ends.
    """
    eff_interval = min(interval, work) if work > 0 else interval
    saved = 0.0
    total_productive = 0.0
    total_ckpts = 0
    cost = 0.0
    first_launch = None
    now = t0
    currently_dead = True
    end = t1
    completed = work <= 0

    while not completed and now < t1:
        launch = first_at_or_below(trace, bid, now) if now < trace.end_time else None
        if launch is None or launch >= t1:
            end = t1
            currently_dead = True
            break
        if first_launch is None:
            first_launch = launch
        recovery = spec.recovery_overhead if saved > 0 else 0.0
        remaining = work - saved
        need_wall = recovery + total_wall(
            remaining, min(eff_interval, remaining), spec.checkpoint_overhead
        )
        death = first_exceedance(trace, bid, launch)
        horizon = min(t1, launch + need_wall)
        if death is not None and death <= launch:
            now = _advance_past(trace, bid, launch, t1)
            continue
        if death is None or death >= horizon:
            run_end, died = horizon, False
        else:
            run_end, died = death, True
        avail = max(0.0, (run_end - launch) - recovery)
        productive, newly_saved, n_ckpt = progress_after_wall(
            avail, remaining, min(eff_interval, remaining), spec.checkpoint_overhead
        )
        cost += (
            billed_spot_cost(
                trace, launch, min(run_end, trace.end_time), died, billing
            )
            * spec.n_instances
            if run_end > launch
            else 0.0
        )
        total_productive += productive
        total_ckpts += n_ckpt
        completed = productive >= remaining - 1e-9
        if completed:
            saved = work
            end = run_end
            currently_dead = False
            break
        if died:
            saved += newly_saved
            now = run_end
            currently_dead = True
            end = run_end
        else:
            # Survived to the window boundary: bank up to a final
            # boundary checkpoint (one overhead before the boundary).
            boundary = max(0.0, avail - spec.checkpoint_overhead)
            banked, _s, _n = progress_after_wall(
                boundary, remaining, min(eff_interval, remaining), spec.checkpoint_overhead
            )
            saved += max(newly_saved, banked)
            end = run_end
            currently_dead = False
            break

    return GroupRunRecord(
        key=spec.key,
        bid=bid,
        interval=interval,
        launched=first_launch is not None,
        launch_time=first_launch,
        end_time=end,
        terminated=currently_dead,
        completed=completed,
        productive=total_productive,
        saved=min(saved, work),
        n_checkpoints=total_ckpts,
        spot_cost=cost,
    )


def _advance_past(trace, bid: float, t: float, t1: float) -> float:
    """Smallest time > ``t`` where a fresh launch attempt makes sense."""
    death = first_exceedance(trace, bid, t)
    if death is None:
        return t1
    nxt = first_at_or_below(trace, bid, death) if death < trace.end_time else None
    return t1 if nxt is None else nxt


def replay_window(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    t0: float,
    t1: float,
    fraction_done: float = 0.0,
    persistent: bool = False,
    billing: BillingPolicy = CONTINUOUS,
) -> WindowOutcome:
    """Run the decision's groups over ``[t0, t1)``.

    If a group completes, every other group is cut back to the completion
    instant (it would be terminated then) and costs are recomputed.
    ``persistent`` switches the per-group spot semantics (see
    :data:`SEMANTICS`).
    """
    if not 0.0 <= fraction_done <= 1.0:
        raise ConfigurationError(f"fraction_done must be in [0,1], got {fraction_done}")
    if t1 <= t0:
        raise ConfigurationError(f"empty window [{t0}, {t1})")
    if not decision.groups:
        return WindowOutcome((), 0.0, False, None, None, 0.0, t0)
    runner = _run_group_persistent if persistent else _run_group_in_window

    def run_all(horizon: float) -> list[GroupRunRecord]:
        records = []
        for gd in decision.groups:
            spec = problem.groups[gd.group_index]
            work = (1.0 - fraction_done) * spec.exec_time
            trace = history.get(spec.key)
            if trace.end_time < horizon:
                raise TraceError(
                    f"trace for {spec.key} ends at {trace.end_time}, "
                    f"window needs {horizon}"
                )
            records.append(
                runner(
                    spec, gd.bid, gd.interval, work, trace, t0, horizon,
                    billing=billing,
                )
            )
        return records

    records = run_all(t1)
    completions = [
        (r.end_time, i) for i, r in enumerate(records) if r.completed
    ]
    if completions:
        t_done, winner = min(completions)
        if t_done > t0:
            # The winner completed *at* t_done, so rerunning it against
            # the completion-clipped horizon can only degrade its record
            # (float-edge clipping marks it not-completed); keep the
            # first-pass record for the winner and recompute the rest.
            first_pass = records
            records = run_all(t_done)
            records[winner] = first_pass[winner]
        win_spec = problem.groups[decision.groups[winner].group_index]
        return WindowOutcome(
            records=tuple(records),
            cost=sum(r.spot_cost for r in records),
            completed=True,
            completed_key=str(win_spec.key),
            completion_time=t_done,
            gained_fraction=1.0 - fraction_done,
            all_dead_at=None,
        )

    gained = 0.0
    for gd, rec in zip(decision.groups, records):
        spec = problem.groups[gd.group_index]
        gained = max(gained, rec.saved / spec.exec_time)
    any_alive = any(not r.terminated for r in records)
    all_dead_at = None if any_alive else max(r.end_time for r in records)
    return WindowOutcome(
        records=tuple(records),
        cost=sum(r.spot_cost for r in records),
        completed=False,
        completed_key=None,
        completion_time=None,
        gained_fraction=gained,
        all_dead_at=all_dead_at,
    )


def checkpoint_write_times(
    spec, interval: float, rec: GroupRunRecord, fraction_done: float = 0.0
) -> list[float]:
    """Absolute times at which one replayed group wrote its checkpoints.

    The single source of truth for the stored-image timeline: the replay
    checkpoints every ``min(interval, work) + O`` wall hours — *not* the
    raw decision interval, which drifts from the real schedule whenever
    it exceeds the remaining work (window replays of a nearly-done run).
    Both the storage accounting and the ``checkpoint`` events of the
    audit stream (:mod:`repro.obs`) derive from this list, so they
    cannot disagree with each other or with the replay arithmetic.
    """
    if rec.launch_time is None or rec.n_checkpoints <= 0:
        return []
    work = (1.0 - fraction_done) * spec.exec_time
    eff_interval = min(interval, work) if work > 0 else interval
    cycle = eff_interval + spec.checkpoint_overhead
    return [rec.launch_time + (k + 1) * cycle for k in range(rec.n_checkpoints)]


def checkpoint_storage_cost(
    problem: Problem,
    decision: Decision,
    records: Sequence[GroupRunRecord],
    run_end: float,
    price_per_gb_month: float = 0.03,
    fraction_done: float = 0.0,
) -> float:
    """S3 storage dollars for the checkpoints of one replay.

    Each group's checkpoints land on the :func:`checkpoint_write_times`
    timeline and overwrite the previous image (the paper's scheme); the
    last image persists until the run ends.  Groups with
    ``image_bytes == 0`` are skipped — accounting is opt-in because the
    cost is, as the paper observes, three orders of magnitude below the
    compute bill.  ``fraction_done`` is the work fraction already banked
    before this replay began (window replays of a partially-done run).
    """
    from ..units import BYTES_PER_GB

    hours_per_month = 730.0
    total_gb_hours = 0.0
    for gd, rec in zip(decision.groups, records):
        spec = problem.groups[gd.group_index]
        if spec.image_bytes <= 0:
            continue
        write_times = checkpoint_write_times(spec, gd.interval, rec, fraction_done)
        if not write_times:
            continue
        gb = spec.image_bytes / BYTES_PER_GB
        for k, t_write in enumerate(write_times):
            t_next = write_times[k + 1] if k + 1 < len(write_times) else run_end
            total_gb_hours += gb * max(0.0, t_next - t_write)
    return total_gb_hours * price_per_gb_month / hours_per_month


def decision_horizon(problem: Problem, decision: Decision) -> float:
    """A wall-time budget after which the replay stops waiting on spot.

    Covers the slowest group's failure-free wall time with launch-wait
    patience; used to bound replays and to size Monte-Carlo sampling
    windows.
    """
    ondemand = problem.ondemand_options[decision.ondemand_index]
    if not decision.groups:
        return ondemand.exec_time
    walls = []
    for gd in decision.groups:
        spec = problem.groups[gd.group_index]
        eff = min(gd.interval, spec.exec_time)
        walls.append(total_wall(spec.exec_time, eff, spec.checkpoint_overhead))
    return _LAUNCH_PATIENCE * max(walls) + ondemand.exec_time


def observe_result(
    result: RunResult,
    problem: Problem,
    decision: Decision,
    history: Optional[SpotPriceHistory] = None,
    billing: BillingPolicy = CONTINUOUS,
    semantics: str = "single-shot",
    account_storage: bool = False,
) -> RunResult:
    """Emit events for and (in audit mode) verify one finished result.

    The shared exit point of the scalar and the batched replay: both
    produce bit-identical :class:`RunResult` objects, and both hand them
    through here, so the derived event streams are identical by
    construction and the audit invariants guard both paths equally.
    No-op beyond two flag checks when observability is off.
    """
    if obs.trace_active():
        obs.emit_events(obs.derive_replay_events(problem, decision, result))
    if obs.audit_enabled():
        obs.audit_run_result(
            problem,
            decision,
            result,
            history=history,
            billing=billing,
            semantics=semantics,
            account_storage=account_storage,
        )
    return result


def replay_decision(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    start_time: float,
    horizon: Optional[float] = None,
    semantics: str = "single-shot",
    account_storage: bool = False,
    billing: BillingPolicy = CONTINUOUS,
) -> RunResult:
    """Replay one full hybrid execution from ``start_time``.

    Spot groups run until one completes or all die (or the ``horizon``
    budget runs out — groups alive but unfinished then are abandoned,
    progress intact).  If no group completed, the on-demand fallback
    reruns the remaining fraction from the best checkpoint.  With
    ``semantics="persistent"``, out-of-bid groups relaunch when the price
    allows instead of staying dead (see :data:`SEMANTICS`).
    ``account_storage`` adds the (negligible) S3 checkpoint storage cost
    for groups whose spec declares ``image_bytes``.
    """
    if semantics not in SEMANTICS:
        raise ConfigurationError(
            f"unknown semantics {semantics!r}; known: {SEMANTICS}"
        )
    obs.get_metrics().inc("replay.scalar_runs")
    _observe = lambda result: observe_result(  # noqa: E731 — shared exit point
        result, problem, decision, history, billing, semantics, account_storage
    )
    ondemand = problem.ondemand_options[decision.ondemand_index]
    ledger = CostLedger()

    if not decision.groups:
        cost = ondemand.full_run_cost
        ledger.add("ondemand", f"full run on {ondemand.itype.name}", cost)
        return _observe(RunResult(
            start_time=start_time,
            cost=cost,
            makespan=ondemand.exec_time,
            completed_by="ondemand",
            ondemand_hours=ondemand.exec_time,
            group_records=(),
            ledger=ledger,
        ))

    if horizon is None:
        horizon = decision_horizon(problem, decision)
    t1 = start_time + horizon
    for gd in decision.groups:
        t1 = min(t1, history.get(problem.groups[gd.group_index].key).end_time)
    if t1 <= start_time:
        raise TraceError("no trace data at the requested start time")

    window = replay_window(
        problem,
        decision,
        history,
        start_time,
        t1,
        persistent=(semantics == "persistent"),
        billing=billing,
    )
    for rec in window.records:
        ledger.add("spot", f"{rec.key} bid=${rec.bid:.4f}", rec.spot_cost)

    if window.completed:
        storage = 0.0
        if account_storage:
            storage = checkpoint_storage_cost(
                problem, decision, window.records, window.completion_time
            )
            if storage > 0:
                ledger.add("storage", "checkpoint images", storage)
        return _observe(RunResult(
            start_time=start_time,
            cost=window.cost + storage,
            makespan=window.completion_time - start_time,
            completed_by=window.completed_key,
            ondemand_hours=0.0,
            group_records=window.records,
            ledger=ledger,
        ))

    # All groups dead or abandoned: recover on on-demand from the best
    # checkpoint (min Ratio across groups, Formula 7).
    min_ratio = 1.0
    for gd, rec in zip(decision.groups, window.records):
        spec = problem.groups[gd.group_index]
        if rec.saved > 0:
            r = (spec.exec_time - rec.saved + spec.recovery_overhead) / spec.exec_time
            min_ratio = min(min_ratio, max(0.0, min(1.0, r)))
    od_start = window.all_dead_at if window.all_dead_at is not None else t1
    od_hours = min_ratio * ondemand.exec_time
    od_cost = od_hours * ondemand.fleet_rate
    ledger.add(
        "ondemand",
        f"recovery of {min_ratio:.2%} on {ondemand.itype.name}",
        od_cost,
    )
    storage = 0.0
    if account_storage:
        storage = checkpoint_storage_cost(
            problem, decision, window.records, od_start + od_hours
        )
        if storage > 0:
            ledger.add("storage", "checkpoint images", storage)
    return _observe(RunResult(
        start_time=start_time,
        cost=window.cost + od_cost + storage,
        makespan=(od_start - start_time) + od_hours,
        completed_by="ondemand",
        ondemand_hours=od_hours,
        group_records=window.records,
        ledger=ledger,
    ))
