"""Shared array kernels for batched trace replay.

Everything the batched replay paths (:mod:`.batch_replay`) need to turn
per-sample ``while`` loops into level-by-level array iteration lives
here:

* **Per-(trace, bid) index tables** — the ``searchsorted`` scaffolding
  (segment times with a ``+inf`` sentinel, the below-bid mask, and the
  next-launch / next-death segment indices) that resolves every
  ``first_at_or_below`` / ``first_exceedance`` query in O(log n) instead
  of an O(n) suffix scan.  The planner and the Monte-Carlo evaluator
  replay the *same* (trace, bid) pairs thousands of times, so the tables
  are promoted into a shared cache alongside the planner's group-table
  caches: gated by ``config.table_cache`` semantics (callers pass
  ``cache=False`` to opt out), cleared by
  :func:`repro.core.two_level.clear_shared_caches`, and evicted
  automatically when the trace is garbage collected.

* **Vectorised checkpoint-timeline arithmetic** — elementwise versions
  of :func:`repro.core.ckpt_math.checkpoints_completed`,
  :func:`~repro.core.ckpt_math.total_wall` and
  :func:`~repro.core.ckpt_math.progress_after_wall` with the identical
  branch structure and float operations, so batched results are
  bit-identical to the scalar loop they replace.  That bit-identity is
  the hard contract of the whole kernel layer (DESIGN.md §8): same IEEE
  ops in the same order, verified by the parity tests and the
  :mod:`repro.obs` audit layer.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..core.two_level import register_cache_clearer
from ..errors import TraceError

#: Scalar reference for every public kernel (reprolint R004): each entry
#: pairs a vectorized function with the dotted path of the scalar code
#: it must be bit-identical to, and the name must be exercised by
#: tests/test_batch_parity.py.
KERNEL_ORACLES = {
    "trace_tables": "repro.cloud.spot.first_at_or_below",
    "integrate_price_fast": "repro.cloud.spot.integrate_price",
    "billed_cost_fast": "repro.cloud.spot.billed_spot_cost",
    "checkpoints_completed_arr": "repro.core.ckpt_math.checkpoints_completed",
    "total_wall_arr": "repro.core.ckpt_math.total_wall",
    "progress_after_wall_arr": "repro.core.ckpt_math.progress_after_wall",
}


# ----------------------------------------------------------------------
# Per-(trace, bid) index tables
# ----------------------------------------------------------------------

@dataclass
class TraceBidTables:
    """Precomputed launch/death scaffolding for one (trace, bid) pair."""

    times: np.ndarray  # segment start times
    times_ext: np.ndarray  # times with +inf sentinel (index n = "never")
    below: np.ndarray  # prices <= bid per segment
    nxt_below_ext: np.ndarray  # smallest j >= i with prices[j] <= bid, else n
    nxt_above_ext: np.ndarray  # smallest j >= i with prices[j] >  bid, else n

    @property
    def n_segments(self) -> int:
        return int(self.below.size)


def _next_index(mask: np.ndarray) -> np.ndarray:
    """``out[i]`` = smallest ``j >= i`` with ``mask[j]``, else ``n``;
    length ``n + 1`` so a query one past the end is the sentinel."""
    n = mask.size
    pos = np.where(mask, np.arange(n), n)
    nxt = np.minimum.accumulate(pos[::-1])[::-1]
    return np.concatenate([nxt, [n]])


def _build_tables(trace, bid: float) -> TraceBidTables:
    below = trace.prices <= bid
    return TraceBidTables(
        times=trace.times,
        times_ext=np.concatenate([trace.times, [np.inf]]),
        below=below,
        nxt_below_ext=_next_index(below),
        nxt_above_ext=_next_index(~below),
    )


# The cache is keyed by (id(trace), bid): traces are immutable value
# objects but define __eq__ without __hash__, so identity is the right
# key — and a weakref finalizer evicts the entry the moment the trace
# dies, which means there are no invalidation rules to get wrong (a new
# trace is a new identity, exactly like the planner's per-model caches).
_TABLE_CACHE: dict[tuple[int, float], TraceBidTables] = {}
_TABLE_FINALIZERS: dict[int, object] = {}

#: Disk tier cutoff: below this many segments, rebuilding the tables is
#: cheaper than one ``.npz`` round-trip, so small traces never touch the
#: artifact store (the memory tier still serves repeats).
_STORE_MIN_SEGMENTS = 4096


def _artifact_io(trace, bid: float):
    """(store, key) for this pair, or ``(None, None)`` when the disk
    tier is off (no store configured, or the trace is too small to pay
    for a round-trip)."""
    if trace.prices.size < _STORE_MIN_SEGMENTS:
        return None, None
    from ..config import DEFAULT_CONFIG
    from .artifacts import engine_fingerprint, get_store

    store = get_store(DEFAULT_CONFIG)
    if store is None:
        return None, None
    from ..core.keys import hash_key

    return store, hash_key(
        trace.content_hash(), float(bid), engine_fingerprint()
    )


def _tables_from_store(trace, bid: float) -> TraceBidTables | None:
    """Reload the (trace, bid) tables from disk; ``None`` on any miss.

    Only the bid-dependent arrays are persisted — ``times`` /
    ``times_ext`` are rebuilt from the trace itself, which is exact
    because the artifact key embeds the trace *content* hash.
    """
    store, key = _artifact_io(trace, bid)
    if store is None:
        return None
    arrays = store.load("trace_bid", key)
    if arrays is None:
        return None
    n = trace.prices.size
    below = arrays.get("below")
    nxt_below = arrays.get("nxt_below_ext")
    nxt_above = arrays.get("nxt_above_ext")
    if (
        below is None or nxt_below is None or nxt_above is None
        or below.shape != (n,) or below.dtype != np.bool_
        or nxt_below.shape != (n + 1,) or nxt_above.shape != (n + 1,)
    ):
        return None
    return TraceBidTables(
        times=trace.times,
        times_ext=np.concatenate([trace.times, [np.inf]]),
        below=below,
        nxt_below_ext=nxt_below,
        nxt_above_ext=nxt_above,
    )


def _tables_to_store(trace, bid: float, tables: TraceBidTables) -> None:
    store, key = _artifact_io(trace, bid)
    if store is not None:
        store.save("trace_bid", key, {
            "below": tables.below,
            "nxt_below_ext": tables.nxt_below_ext,
            "nxt_above_ext": tables.nxt_above_ext,
        })


def _evict_trace(trace_id: int) -> None:
    _TABLE_FINALIZERS.pop(trace_id, None)
    for key in [k for k in _TABLE_CACHE if k[0] == trace_id]:
        del _TABLE_CACHE[key]


# reprolint: disable=R004 -- cache plumbing, not a vectorized kernel
def clear_table_cache() -> None:
    """Drop every cached (trace, bid) table (tests, memory pressure)."""
    _TABLE_CACHE.clear()
    for fin in _TABLE_FINALIZERS.values():
        fin.detach()
    _TABLE_FINALIZERS.clear()


register_cache_clearer(clear_table_cache)


# reprolint: disable=R004 -- cache introspection, not a vectorized kernel
def table_cache_size() -> int:
    return len(_TABLE_CACHE)


def trace_tables(trace, bid: float, cache: bool = True) -> TraceBidTables:
    """The (trace, bid) index tables, served from the shared cache.

    Two tiers: the in-process ``_TABLE_CACHE`` above, then (for traces
    with at least ``_STORE_MIN_SEGMENTS`` segments) the on-disk
    artifact store keyed by trace content + engine fingerprint, so a
    cold process skips the build for big markets.  ``cache=False``
    recomputes from scratch (the ``config.table_cache`` opt-out);
    results are identical on every tier.
    """
    if not cache:
        return _build_tables(trace, float(bid))
    key = (id(trace), float(bid))
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = _tables_from_store(trace, float(bid))
        if tables is None:
            tables = _build_tables(trace, float(bid))
            _tables_to_store(trace, float(bid), tables)
        _TABLE_CACHE[key] = tables
        if key[0] not in _TABLE_FINALIZERS:
            _TABLE_FINALIZERS[key[0]] = weakref.finalize(
                trace, _evict_trace, key[0]
            )
    return tables


# ----------------------------------------------------------------------
# Price integration (bit-identical to cloud.spot.integrate_price)
# ----------------------------------------------------------------------

def integrate_price_fast(trace, t0: float, t1: float) -> float:
    """:func:`repro.cloud.spot.integrate_price` without the slice object.

    ``integrate_price`` builds a validated :class:`SpotPriceTrace` for
    the window and dots its prices with its segment durations; the
    construction (list conversion, monotonicity / finiteness checks)
    dominates the batched kernels' billing loops.  This computes the
    same ``np.dot`` over the same float64 values — the window's segment
    starts with ``times[0]`` replaced by ``t0`` and its ends terminated
    by ``t1`` — so the result is bitwise equal.
    """
    if t1 < t0:
        raise TraceError(f"integration bounds reversed: [{t0}, {t1}]")
    if t0 == t1:
        return 0.0
    times = trace.times
    if not (times[0] <= t0 and t1 <= trace.end_time):
        raise TraceError(
            f"slice [{t0}, {t1}) outside window "
            f"[{trace.start_time}, {trace.end_time})"
        )
    lo = int(np.searchsorted(times, t0, side="right") - 1)
    hi = int(np.searchsorted(times, t1, side="left"))
    starts = times[lo:hi].copy()
    starts[0] = t0
    ends = np.append(times[lo + 1 : hi], t1)
    return float(np.dot(trace.prices[lo:hi], ends - starts))


def billed_cost_fast(trace, launch: float, end: float, interrupted: bool, policy) -> float:
    """:func:`repro.cloud.spot.billed_spot_cost`, fast continuous path.

    Continuous billing (granularity 0) delegates to
    :func:`integrate_price_fast`; any hourly policy falls back to the
    scalar ``billed_spot_cost`` (its per-hour price lookups are already
    the exact semantics and are rare in the hot Monte-Carlo loops).
    """
    if getattr(policy, "is_continuous", False):
        return integrate_price_fast(trace, launch, end)
    from ..cloud.spot import billed_spot_cost

    return billed_spot_cost(trace, launch, end, interrupted, policy)


# ----------------------------------------------------------------------
# Vectorised checkpoint-timeline arithmetic (bit-identical to ckpt_math)
# ----------------------------------------------------------------------

def checkpoints_completed_arr(
    productive: np.ndarray, exec_time: np.ndarray, interval: np.ndarray
) -> np.ndarray:
    """Elementwise :func:`repro.core.ckpt_math.checkpoints_completed`.

    Returns float counts (exact small integers); the scalar's ``while``
    decrement loop becomes a masked decrement iterated to fixpoint,
    which performs the identical comparisons in the identical order per
    element.
    """
    k = np.floor(productive / interval + 1e-12)
    while True:
        over = (k >= 1.0) & (k * interval >= exec_time - 1e-12)
        if not over.any():
            return k
        k = np.where(over, k - 1.0, k)


def total_wall_arr(
    exec_time: np.ndarray, interval: np.ndarray, overhead: float
) -> np.ndarray:
    """Elementwise :func:`repro.core.ckpt_math.total_wall`."""
    k = checkpoints_completed_arr(exec_time, exec_time, interval)
    return exec_time + overhead * k


def progress_after_wall_arr(
    wall: np.ndarray,
    exec_time: np.ndarray,
    interval: np.ndarray,
    overhead: float,
    done_wall: np.ndarray,
    k_done: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Elementwise :func:`repro.core.ckpt_math.progress_after_wall`.

    ``exec_time`` / ``interval`` may be scalars or per-element arrays
    (the persistent kernel re-enters with per-sample remaining work);
    ``done_wall`` / ``k_done`` are the matching precomputed completion
    wall time and checkpoint count.  Identical branch structure and
    float operations to the scalar, elementwise.
    """
    cycle = interval + overhead
    k_full = np.floor(wall / cycle + 1e-12)
    rem = wall - k_full * cycle
    productive = np.where(
        rem <= interval + 1e-12, k_full * interval + rem, (k_full + 1.0) * interval
    )
    productive = np.minimum(productive, exec_time)
    saved = np.minimum(k_full * interval, productive)
    done = wall >= done_wall - 1e-12
    productive = np.where(done, exec_time, productive)
    saved = np.where(done, exec_time, saved)
    n_ckpt = np.where(done, k_done, k_full).astype(np.int64)
    return productive, saved, n_ckpt
