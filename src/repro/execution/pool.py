"""Persistent warm worker pool for every parallel consumer (DESIGN.md §12).

Before this module, each parallel entry point paid its own process-level
cold start on *every call*: ``evaluate_decision_mc(jobs=N)`` spawned a
fresh :class:`~concurrent.futures.ProcessPoolExecutor` and a fresh
shared-memory trace pool per evaluation, the backtest harness ran its
window×app×deadline grid strictly serially, and ``runner --jobs``
built one more throwaway executor.  The spawn itself is cheap only on
``fork`` platforms; under ``spawn`` every worker re-imports numpy and
the whole engine, and either way every new worker rebuilds its kernel
index tables, group tables and artifact-store handle from nothing.

:class:`WorkerPool` amortizes all of that:

* **One executor per process** — :meth:`WorkerPool.shared` lazily
  creates a single process-wide pool and every consumer (Monte-Carlo
  fan-out, parallel backtest cells, ``runner --jobs``, the perf
  benches) submits to it.  The pool grows when a caller asks for more
  workers than it has; it never shrinks (idle workers are the cache).
* **Warm workers** — an initializer runs once per worker: it pays the
  engine imports and opens the artifact store handle (whose first-open
  eviction scan would otherwise land in the first task), so the first
  real task starts disk-warm.  Per-scope tables (packed search
  sidecar, group tables, trace/bid index tables) then load lazily from
  the warm store and stay in the worker's in-memory caches for its
  whole lifetime — a worker that planned a window once serves the next
  request for it from memory.
* **Shared-memory reuse** — traces ship through the long-lived
  content-hash-keyed registry (:func:`repro.execution.shm_pool.
  shared_trace_handle`), so a history's shm segments are created once
  per process and mapped once per worker, not once per call.
* **Lifecycle** — explicitly closeable (:func:`close_shared_pool`),
  closed at interpreter exit (``atexit``), and wired through
  :func:`repro.core.two_level.register_cache_clearer` so
  ``clear_shared_caches()`` — the one switch tests use to simulate a
  cold process — drops the warm workers too.  Fork- and spawn-safe:
  the shared slot is stamped with its owner pid, so a forked child
  never reuses (or joins) its parent's executor, and all worker entry
  points are module-level functions.

Determinism is untouched by construction: the pool only changes *where*
chunks run, never what they compute — callers draw starts/streams
before chunking and gather futures in submission order, so output stays
byte-identical to the serial path (``tests/test_worker_pool.py``).
"""

from __future__ import annotations

import atexit
import os
from typing import Optional

from .. import obs
from ..core.two_level import register_cache_clearer
from ..errors import ConfigurationError

__all__ = ["WorkerPool", "close_shared_pool", "default_max_workers"]


def default_max_workers() -> int:
    """Worker count when a caller does not name one: the machine's
    cores, capped — the pool serves chunked numeric work, not I/O."""
    return max(1, min(8, os.cpu_count() or 1))


def _warm_worker() -> None:
    """Per-worker initializer: pay every cold start once, up front.

    Imports the batched replay/kernel/grid-evaluation modules (the bulk
    of a ``spawn`` worker's startup) and opens the artifact-store
    handle, which runs the store's first-open eviction pass here
    instead of inside the first submitted task.  The per-scope tables
    themselves (packed search sidecar, group tables, trace/bid index
    tables) load lazily from the warm store on first use and then live
    in this worker's in-memory caches for its whole lifetime.

    A worker that fails to warm is still a correct worker — warming is
    pure pre-payment, so any failure is swallowed and the first task
    simply pays retail.
    """
    try:
        from ..config import DEFAULT_CONFIG
        from ..core import grid_eval, two_level  # noqa: F401  (import cost)
        from . import batch_replay, kernels  # noqa: F401  (import cost)
        from .artifacts import get_store

        get_store(DEFAULT_CONFIG)
        obs.get_metrics().inc("pool.worker_warmups")
    # reprolint: disable=R006 -- warming is optional pre-payment; a cold worker is still correct
    except Exception:
        pass


class WorkerPool:
    """A lazily-spawned, explicitly-closeable process pool.

    Construct one directly for a private pool (tests use this to pin
    the ``spawn`` start method); everything in the library goes through
    :meth:`shared`.
    """

    def __init__(self, max_workers: int, mp_context=None) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._max_workers = int(max_workers)
        self._mp_context = mp_context
        self._executor = None
        self._owner_pid = os.getpid()

    # ------------------------------------------------------------------
    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def spawned(self) -> bool:
        """Whether the executor (and its workers) currently exist."""
        return self._executor is not None

    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=self._mp_context,
                initializer=_warm_worker,
            )
            obs.get_metrics().inc("pool.spawns")
        return self._executor

    def submit(self, fn, /, *args, **kwargs):
        """Submit one task; respawns the executor once if it broke.

        A worker killed by the OS (OOM, signal) marks the whole
        executor broken; the one retry turns that into a fresh pool
        instead of poisoning every later caller.
        """
        from concurrent.futures.process import BrokenProcessPool

        obs.get_metrics().inc("pool.tasks")
        try:
            return self._ensure_executor().submit(fn, *args, **kwargs)
        except BrokenProcessPool:
            obs.get_metrics().inc("pool.respawns")
            self.close(wait=False)
            return self._ensure_executor().submit(fn, *args, **kwargs)

    def run_ordered(self, fn, payloads) -> list:
        """Results of ``fn(*payload)`` per payload, in payload order.

        Submission order == gather order, so callers that pre-draw
        their randomness get byte-identical output regardless of which
        worker ran which payload.
        """
        futures = [self.submit(fn, *payload) for payload in payloads]
        return [future.result() for future in futures]

    def close(self, wait: bool = True) -> None:
        """Shut the executor down (idempotent).

        In a forked child the inherited executor belongs to the parent:
        the child only forgets its reference — joining or signalling
        the parent's workers from here would corrupt the parent's pool.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        if os.getpid() != self._owner_pid:
            return
        executor.shutdown(wait=wait, cancel_futures=True)
        obs.get_metrics().inc("pool.closes")

    # ------------------------------------------------------------------
    # The process-wide shared pool
    # ------------------------------------------------------------------
    @classmethod
    def shared(cls, min_workers: Optional[int] = None) -> "WorkerPool":
        """The process-wide pool, created on first use.

        ``min_workers`` is a floor, not an exact size: an existing pool
        with at least that many workers is reused as-is (a warm hit);
        a smaller one is closed and regrown.  ``None`` accepts any
        existing pool and defaults new ones to
        :func:`default_max_workers`.
        """
        global _SHARED_POOL, _SHARED_PID
        if min_workers is not None and min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {min_workers}"
            )
        pid = os.getpid()
        pool = _SHARED_POOL
        if pool is not None and _SHARED_PID != pid:
            # Forked child: the recorded pool is the parent's.  Forget
            # it (close() in a child is a guarded no-op) and start our
            # own lineage.
            pool = None
        if pool is not None and min_workers is not None:
            if pool.max_workers < min_workers:
                obs.get_metrics().inc("pool.grows")
                pool.close()
                pool = None
        if pool is None:
            pool = cls(
                default_max_workers() if min_workers is None else min_workers
            )
            _SHARED_POOL = pool
            _SHARED_PID = pid
        else:
            obs.get_metrics().inc("pool.warm_hits")
        return pool


# The process-wide pool slot.  ``_SHARED_PID`` stamps the owner so a
# forked child never adopts (or closes) its parent's executor.
_SHARED_POOL: Optional[WorkerPool] = None
_SHARED_PID: Optional[int] = None


def close_shared_pool() -> None:
    """Close the shared pool (if any); the next use respawns it.

    Safe to call from atexit, ``clear_shared_caches()`` and tests alike
    — closing an absent pool is a no-op, and a forked child closing the
    slot only drops its inherited reference.
    """
    global _SHARED_POOL, _SHARED_PID
    pool, _SHARED_POOL, _SHARED_PID = _SHARED_POOL, None, None
    if pool is not None:
        pool.close()


def _close_at_exit() -> None:
    """Interpreter-exit teardown: workers first, then shm segments.

    The order matters: the executor is joined before the shared-memory
    registry unlinks its blocks, so no worker dies mid-task with its
    mappings yanked.
    """
    close_shared_pool()
    from .shm_pool import close_trace_pools

    close_trace_pools()


atexit.register(_close_at_exit)

# A warm pool is a shared cache of provisioned processes: the single
# "drop every shared cache" switch must drop it too, or tests that
# simulate a cold process would keep warm workers.
register_cache_clearer(close_shared_pool)
