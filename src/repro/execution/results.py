"""Result containers for replayed and Monte-Carlo-evaluated executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..cloud.billing import CostLedger
from ..errors import ConfigurationError
from ..market.history import MarketKey


@dataclass(frozen=True)
class GroupRunRecord:
    """What one circle group did during a replay.

    ``productive`` is the productive work achieved (hours on the group's
    own time scale); ``saved`` is the checkpointed part of it that
    survives the group's death.
    """

    key: MarketKey
    bid: float
    interval: float
    launched: bool
    launch_time: Optional[float]
    end_time: float
    terminated: bool  # True = out-of-bid event; False = ran to horizon/completion
    completed: bool
    productive: float
    saved: float
    n_checkpoints: int
    spot_cost: float

    @property
    def wall_hours(self) -> float:
        return 0.0 if self.launch_time is None else self.end_time - self.launch_time


@dataclass
class RunResult:
    """Outcome of replaying one decision from one starting point."""

    start_time: float
    cost: float
    makespan: float  # hours from start to application completion
    completed_by: Optional[str]  # market key string, "ondemand", or None
    ondemand_hours: float
    group_records: Sequence[GroupRunRecord] = field(default_factory=tuple)
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def completed(self) -> bool:
        return self.completed_by is not None

    def met_deadline(self, deadline: float) -> bool:
        return self.completed and self.makespan <= deadline + 1e-9


@dataclass(frozen=True)
class MonteCarloSummary:
    """Statistics over many replays from random starting points."""

    n_samples: int
    mean_cost: float
    std_cost: float
    mean_time: float
    std_time: float
    p95_cost: float
    p95_time: float
    deadline_miss_rate: float
    spot_completion_rate: float  # finished on a circle group
    ondemand_fallback_rate: float  # finished on the on-demand recovery

    @classmethod
    def from_results(
        cls, results: Sequence[RunResult], deadline: Optional[float]
    ) -> "MonteCarloSummary":
        if not results:
            # Without this, numpy would hand back NaN means and
            # np.percentile would crash with an opaque IndexError.
            raise ConfigurationError(
                "cannot summarise an empty result list; draw at least one "
                "Monte-Carlo sample"
            )
        costs = np.array([r.cost for r in results])
        times = np.array([r.makespan for r in results])
        n = len(results)
        misses = (
            float(np.mean([not r.met_deadline(deadline) for r in results]))
            if deadline is not None
            else 0.0
        )
        spot_done = float(
            np.mean([r.completed_by not in (None, "ondemand") for r in results])
        )
        od_done = float(np.mean([r.completed_by == "ondemand" for r in results]))
        return cls(
            n_samples=n,
            mean_cost=float(costs.mean()),
            std_cost=float(costs.std()),
            mean_time=float(times.mean()),
            std_time=float(times.std()),
            p95_cost=float(np.percentile(costs, 95)),
            p95_time=float(np.percentile(times, 95)),
            deadline_miss_rate=misses,
            spot_completion_rate=spot_done,
            ondemand_fallback_rate=od_done,
        )
