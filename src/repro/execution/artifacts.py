"""On-disk artifact store for planner and kernel tables (DESIGN.md §10).

The per-(trace, bid) launch/death index tables built by
:mod:`.kernels`, and the per-group bid/interval/outcome tables and
survival grids built by :mod:`repro.core.two_level`, are pure functions
of trace *content* plus a handful of scalar parameters.  PR 1/3 made
them shareable across optimizer instances — but only within one
process: the first plan of a fresh process rebuilt everything.  This
module is the disk tier under those in-memory caches, mirroring the
two-tier design of the reprolint cache (:mod:`repro.analysis.cache`):

* **Keying** — every artifact key is a SHA-256 over (a) the content
  hash of each participating trace, (b) every scalar parameter that
  enters the computation (floats canonicalised via ``float.hex()`` so
  the key is exact, never formatted), and (c) the **engine
  fingerprint**: a hash of the source files that produce artifact
  contents plus the numpy/python versions.  Editing any kernel or
  planner module, or changing numpy, silently invalidates every
  artifact — there are no version-skew rules to get wrong.
* **Format** — one ``.npz`` per artifact (versioned directory layout,
  ``v1/<kind>/<aa>/<key>.npz``), written atomically: serialize to a
  temp file in the same directory, then ``os.replace``.  Readers never
  observe a half-written file.
* **Fail-open** — a missing, truncated, corrupted or permission-denied
  artifact is a cache miss, never an error: the caller rebuilds from
  scratch and results are bit-identical either way (the store persists
  the exact float64 arrays the build produced; ``.npz`` round-trips
  them losslessly).  Deleting the store directory mid-run only changes
  timing.

Hit/miss/write/error counts land in the :mod:`repro.obs` metrics
registry (``cache.artifact_*``), so ``--metrics`` output shows whether
a cold process actually hit warm disk.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .. import obs
from ..core.keys import hash_key
from ..core.two_level import register_cache_clearer
from ..errors import ConfigurationError

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "clear_store_handles",
    "default_artifact_dir",
    "engine_fingerprint",
    "get_store",
    "hash_key",
    "resolve_max_bytes",
]

#: Bump when the artifact layout or array schema changes; old versions
#: simply stop being read (their directory is ignored, not migrated).
ARTIFACT_VERSION = 1

#: Environment override for the store location; an empty value disables
#: the store entirely (useful to pin hermetic test runs).
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Environment override for the size cap (bytes); takes precedence over
#: ``config.artifact_max_bytes``.  Empty means "no limit".
ARTIFACT_MAX_BYTES_ENV = "REPRO_ARTIFACT_MAX_BYTES"

#: Writes between periodic in-process eviction passes (when a size cap
#: is configured).  A full directory scan per write would dominate the
#: save cost; once per batch keeps the store near its cap without
#: showing up in profiles.
_EVICT_EVERY_WRITES = 64

_FINGERPRINT_MEMO: Dict[str, str] = {}
_STORE_MEMO: Dict[str, "ArtifactStore"] = {}

#: Source directories (relative to the ``repro`` package) whose code
#: produces artifact contents.  ``analysis``/``obs``/CLI edits must not
#: invalidate numeric artifacts, so they are deliberately absent.
_ENGINE_SOURCES = ("core", "market", "cloud", "execution")


def engine_fingerprint() -> str:
    """Hash of the numeric engine's own sources + numpy/python versions.

    Memoised for the process: the sources cannot change under a running
    interpreter in any way that matters to already-imported code.
    """
    if "fp" not in _FINGERPRINT_MEMO:
        import sys

        pkg = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        h.update(f"py{sys.version_info[0]}.{sys.version_info[1]}".encode())
        h.update(f"np{np.__version__}".encode())
        for sub in _ENGINE_SOURCES:
            root = pkg / sub
            if not root.is_dir():
                continue
            for p in sorted(root.rglob("*.py")):
                if "__pycache__" in p.parts:
                    continue
                try:
                    data = p.read_bytes()
                except OSError:
                    # A source vanishing between the rglob and the read
                    # (editable install being rebuilt) must not crash
                    # planning: the resulting fingerprint simply differs,
                    # which costs a recompute, never correctness.
                    continue
                h.update(p.relative_to(pkg).as_posix().encode())
                h.update(b"\x00")
                h.update(data)
        _FINGERPRINT_MEMO["fp"] = h.hexdigest()
    return _FINGERPRINT_MEMO["fp"]


def default_artifact_dir() -> Optional[Path]:
    """Resolve the store root: env override, else the user cache dir.

    Returns ``None`` when the env var is set but empty (explicit
    opt-out).
    """
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env is not None:
        return Path(env) if env else None
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-sompi" / "artifacts"


def resolve_max_bytes(config=None) -> Optional[int]:
    """The effective store size cap, or ``None`` for unlimited.

    The ``REPRO_ARTIFACT_MAX_BYTES`` environment variable wins over
    ``config.artifact_max_bytes``; an empty value means "no limit"
    (mirroring the dir override's empty-means-disabled convention).
    """
    env = os.environ.get(ARTIFACT_MAX_BYTES_ENV)
    if env is not None:
        if not env.strip():
            return None
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{ARTIFACT_MAX_BYTES_ENV} must be an integer byte count, "
                f"got {env!r}"
            ) from None
        return value if value > 0 else None
    return getattr(config, "artifact_max_bytes", None)


class ArtifactStore:
    """A directory of content-addressed ``.npz`` artifacts.

    ``max_bytes`` (set by :func:`get_store` from the config/environment)
    arms the LRU eviction policy: hits touch the artifact's mtime, and
    :meth:`evict` drops the least-recently-used files until the store
    fits.  Eviction runs when a store handle is first opened and every
    ``_EVICT_EVERY_WRITES`` saves; it only ever changes what is *cached*
    — a planned result is bit-identical whether its tables were evicted
    or not.
    """

    def __init__(self, root: Path, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root) / f"v{ARTIFACT_VERSION}"
        self.max_bytes = max_bytes
        self._writes_since_evict = 0

    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> Path:
        """Sharded path for one artifact (two-level fanout by key)."""
        return self.root / kind / key[:2] / f"{key}.npz"

    def load(self, kind: str, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The artifact's arrays, or ``None`` on any miss or damage.

        Fail-open end to end: a missing file is a counted miss, a
        truncated/corrupt/unreadable one is a counted error whose file
        is dropped so the rebuild repairs the store — the caller only
        ever sees ``None``.
        """
        path = self.path_for(kind, key)
        metrics = obs.get_metrics()
        try:
            with np.load(path, allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except FileNotFoundError:
            metrics.inc(f"cache.artifact_misses.{kind}")
            return None
        # reprolint: disable=R006 -- the store's fail-open contract: any damage is a counted miss
        except Exception:
            # Truncated/corrupted/unreadable: fail open, count it, and
            # drop the bad file so the rebuild below repairs the store.
            metrics.inc(f"cache.artifact_errors.{kind}")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        # Touch the file so "recently used" means recently *read*, not
        # just recently written — the LRU eviction sorts by mtime.
        try:
            os.utime(path)
        except OSError:
            pass
        metrics.inc(f"cache.artifact_hits.{kind}")
        return arrays

    def save(
        self, kind: str, key: str, arrays: Mapping[str, np.ndarray]
    ) -> bool:
        """Atomically persist ``arrays``; False (not an error) on failure.

        A read-only or full filesystem degrades the store to always-cold
        exactly like the reprolint cache — planning results are computed
        either way.
        """
        path = self.path_for(kind, key)
        metrics = obs.get_metrics()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            buf = io.BytesIO()
            np.savez(buf, **dict(arrays))
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(buf.getvalue())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            metrics.inc(f"cache.artifact_write_errors.{kind}")
            return False
        metrics.inc(f"cache.artifact_writes.{kind}")
        if self.max_bytes is not None:
            self._writes_since_evict += 1
            if self._writes_since_evict >= _EVICT_EVERY_WRITES:
                self._writes_since_evict = 0
                self.evict(max_bytes=self.max_bytes)
        return True

    # ------------------------------------------------------------------
    # Inspection and eviction (``repro artifacts`` CLI verb)
    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[Path, os.stat_result]]:
        """Every artifact file with its stat; fail-open per file."""
        if not self.root.is_dir():
            return []
        entries = []
        for path in self.root.rglob("*.npz"):
            try:
                entries.append((path, path.stat()))
            except OSError:
                continue
        return entries

    def stats(self) -> dict:
        """``{"files", "bytes", "by_kind": {kind: {"files", "bytes"}}}``."""
        by_kind: Dict[str, dict] = {}
        total_files = 0
        total_bytes = 0
        for path, st in self._entries():
            rel = path.relative_to(self.root).parts
            kind = rel[0] if len(rel) > 1 else "(unsorted)"
            entry = by_kind.setdefault(kind, {"files": 0, "bytes": 0})
            entry["files"] += 1
            entry["bytes"] += st.st_size
            total_files += 1
            total_bytes += st.st_size
        return {"files": total_files, "bytes": total_bytes, "by_kind": by_kind}

    def evict(
        self,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Drop LRU artifacts until the store fits; ``(files, bytes)``.

        ``max_bytes`` defaults to the configured cap (environment over
        config); with neither a size nor an age bound the call is a
        no-op.  Age is measured against ``now`` (epoch seconds; defaults
        to the wall clock) minus each file's last-touch mtime.  Every
        unlink is fail-open: a file another process already removed or
        holds open just stops counting.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes if self.max_bytes else resolve_max_bytes()
        if max_bytes is None and max_age_days is None:
            return 0, 0
        # Oldest-touched first; path as tie-break so the order (and
        # therefore what a capped store keeps) is deterministic.
        entries = sorted(
            self._entries(), key=lambda e: (e[1].st_mtime, str(e[0]))
        )
        removed = 0
        freed = 0
        if max_age_days is not None:
            if now is None:
                import time

                # Store hygiene only: which cache files survive never
                # affects planned results (fail-open contract above).
                # reprolint: disable=R001 -- eviction age check is cache hygiene, not simulation state
                now = time.time()
            cutoff = now - max_age_days * 86400.0
            fresh = []
            for path, st in entries:
                if st.st_mtime < cutoff:
                    if self._unlink_counted(path):
                        removed += 1
                        freed += st.st_size
                else:
                    fresh.append((path, st))
            entries = fresh
        if max_bytes is not None:
            total = sum(st.st_size for _path, st in entries)
            for path, st in entries:
                if total <= max_bytes:
                    break
                if self._unlink_counted(path):
                    total -= st.st_size
                    removed += 1
                    freed += st.st_size
        if removed:
            obs.get_metrics().inc("cache.artifact_evictions", removed)
        return removed, freed

    def clear(self) -> Tuple[int, int]:
        """Remove every artifact; ``(files, bytes)`` actually removed."""
        removed = 0
        freed = 0
        for path, st in self._entries():
            if self._unlink_counted(path):
                removed += 1
                freed += st.st_size
        # Prune now-empty shard directories, best-effort.
        if self.root.is_dir():
            for path in sorted(
                self.root.rglob("*"), key=lambda p: len(p.parts), reverse=True
            ):
                if path.is_dir():
                    try:
                        path.rmdir()
                    except OSError:
                        pass
        return removed, freed

    @staticmethod
    def _unlink_counted(path: Path) -> bool:
        try:
            path.unlink()
        except OSError:
            return False
        return True


def get_store(config) -> Optional[ArtifactStore]:
    """The store for this config, or ``None`` when disabled.

    Enabled iff ``config.table_cache`` *and* ``config.artifact_cache``
    (artifacts are the disk tier of the table caches: no memory tier,
    no disk tier) and a root directory resolves.  Store handles are
    memoised per resolved path; :func:`clear_store_handles` (wired into
    ``clear_shared_caches``) drops the handles — never the disk files —
    so a "cold process" simulation still hits warm disk.
    """
    if not (
        getattr(config, "table_cache", False)
        and getattr(config, "artifact_cache", False)
    ):
        return None
    root = (
        Path(config.artifact_dir)
        if getattr(config, "artifact_dir", None)
        else default_artifact_dir()
    )
    if root is None:
        return None
    key = str(root)
    store = _STORE_MEMO.get(key)
    if store is None:
        store = _STORE_MEMO[key] = ArtifactStore(
            root, max_bytes=resolve_max_bytes(config)
        )
        # Apply the size policy once per opened handle (so a store left
        # over the cap by an older process shrinks on next use), then
        # periodically as writes accumulate (see ``save``).
        if store.max_bytes is not None:
            store.evict(max_bytes=store.max_bytes)
    return store


# reprolint: disable=R002 -- registered right here with the shared clearer
def clear_store_handles() -> None:
    """Drop memoised store handles and the engine fingerprint.

    Disk artifacts stay untouched.  Clearing the fingerprint memo only
    costs a re-hash on the next lookup — sources cannot change under a
    running interpreter in any way that matters to imported code, so
    the recomputed value is identical.
    """
    _STORE_MEMO.clear()
    _FINGERPRINT_MEMO.clear()


register_cache_clearer(clear_store_handles)
