"""Hybrid execution: replay, Monte-Carlo evaluation, adaptive algorithm.

This package *executes* decisions against spot-price traces, with the
hybrid semantics of Section 3.1.1:

* every selected circle group runs a replica with independent
  checkpointing;
* the first group to finish completes the application and terminates the
  others;
* if all groups die, the checkpoint closest to completion seeds an
  on-demand recovery run.

:mod:`~repro.execution.replay` walks one decision through the actual
trace (the paper's "replaying the trace from the spot market"
methodology, Section 5.1); :mod:`~repro.execution.montecarlo` repeats
replays from random starting points to estimate expected cost and time;
:mod:`~repro.execution.adaptive` implements Algorithm 1 (windowed
re-optimization with refreshed failure models).
"""

from .results import GroupRunRecord, RunResult, MonteCarloSummary
from .replay import replay_decision, replay_window, WindowOutcome
from .montecarlo import evaluate_decision_mc
from .adaptive import AdaptiveExecutor, AdaptiveResult, WindowRecord

__all__ = [
    "GroupRunRecord",
    "RunResult",
    "MonteCarloSummary",
    "replay_decision",
    "replay_window",
    "WindowOutcome",
    "evaluate_decision_mc",
    "AdaptiveExecutor",
    "AdaptiveResult",
    "WindowRecord",
]
