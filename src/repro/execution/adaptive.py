"""Algorithm 1 — adaptive windowed re-optimization (Section 4.3).

Every ``T_m`` hours the executor refreshes the failure-rate functions
with the just-observed window of spot prices, re-optimizes the decision
for the *remaining* work under the *remaining* deadline, and runs one
more window.  Progress is carried across windows through the best
checkpoint (the application state is checkpointed at every window
boundary, Algorithm 1 line 22).  When the remaining deadline can no
longer absorb another spot window plus the on-demand recovery, the
executor falls back to on-demand for the rest — the deadline guard of
Algorithm 1 lines 6-9.

``refresh_models=False`` gives the paper's w/o-MT ablation: the initial
failure models and decision are kept for the whole run, so drifting spot
distributions go unnoticed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Optional, Sequence

from ..config import DEFAULT_CONFIG, SompiConfig
from ..core.ondemand_select import select_ondemand
from ..core.optimizer import SompiOptimizer, build_failure_models
from ..core.problem import OnDemandOption, Problem
from ..errors import ConfigurationError, InfeasibleError
from ..market.history import SpotPriceHistory
from .replay import replay_window

_MAX_WINDOWS = 10_000
_MIN_WORK_FRACTION = 1e-9


@dataclass(frozen=True)
class WindowRecord:
    """One optimization window's outcome."""

    index: int
    t0: float
    t1: float
    fraction_before: float
    fraction_after: float
    cost: float
    used_groups: tuple[str, ...]
    completed: bool


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive execution."""

    cost: float
    makespan: float
    completed: bool
    fallback_used: bool
    windows: tuple[WindowRecord, ...]
    deadline: float

    @property
    def met_deadline(self) -> bool:
        return self.completed and self.makespan <= self.deadline + 1e-9


def _scaled_problem(problem: Problem, fraction_left: float, deadline: float) -> Problem:
    """The remaining-work sub-problem for one window."""
    groups = tuple(
        dc_replace(g, exec_time=g.exec_time * fraction_left) for g in problem.groups
    )
    options = tuple(
        OnDemandOption(o.itype, o.n_instances, o.exec_time * fraction_left)
        for o in problem.ondemand_options
    )
    return Problem(groups=groups, ondemand_options=options, deadline=deadline)


class AdaptiveExecutor:
    """Runs one application to completion with Algorithm 1."""

    def __init__(
        self,
        problem: Problem,
        history: SpotPriceHistory,
        config: SompiConfig = DEFAULT_CONFIG,
        training_hours: float = 72.0,
        refresh_models: bool = True,
        semantics: str = "single-shot",
    ) -> None:
        if training_hours <= 0:
            raise ConfigurationError("training_hours must be > 0")
        if semantics not in ("single-shot", "persistent"):
            raise ConfigurationError(f"unknown semantics {semantics!r}")
        self.problem = problem
        self.history = history
        self.config = config
        self.training_hours = training_hours
        self.refresh_models = refresh_models
        self.semantics = semantics
        self._frozen_models = None

    # ------------------------------------------------------------------
    def _models_at(self, now: float):
        """Failure models learned from the trailing training window."""
        if not self.refresh_models and self._frozen_models is not None:
            return self._frozen_models
        t0 = now - self.training_hours
        windowed = SpotPriceHistory()
        for spec in self.problem.groups:
            trace = self.history.get(spec.key)
            lo = max(trace.start_time, t0)
            windowed.add(spec.key, trace.slice(lo, now))
        models = build_failure_models(
            self.problem, windowed, step_hours=self.config.time_step_hours
        )
        if not self.refresh_models:
            self._frozen_models = models
        return models

    def run(self, start_time: float) -> AdaptiveResult:
        problem = self.problem
        deadline_abs = start_time + problem.deadline
        done = 0.0
        now = start_time
        cost = 0.0
        windows: list[WindowRecord] = []
        frozen_decision = None

        for index in range(_MAX_WINDOWS):
            left = 1.0 - done
            if left <= _MIN_WORK_FRACTION:
                return self._finish(cost, now - start_time, True, False, windows)
            remaining_deadline = deadline_abs - now

            # Deadline guard (Algorithm 1 lines 6-9): keep enough time to
            # run the rest on the fastest feasible on-demand type.
            try:
                _, od = select_ondemand(
                    [
                        OnDemandOption(o.itype, o.n_instances, o.exec_time * left)
                        for o in problem.ondemand_options
                    ],
                    max(remaining_deadline, 1e-9),
                    self.config.slack,
                )
            except InfeasibleError:
                od = min(
                    (
                        OnDemandOption(o.itype, o.n_instances, o.exec_time * left)
                        for o in problem.ondemand_options
                    ),
                    key=lambda o: o.exec_time,
                )
            # Time still available for spot execution before we must hand
            # the remaining work to on-demand to make the deadline.
            spot_time_left = remaining_deadline - od.exec_time
            if spot_time_left < min(self.config.window_hours, 1.0):
                cost += od.full_run_cost
                makespan = (now - start_time) + od.exec_time
                return self._finish(cost, makespan, True, True, windows)

            window_len = min(self.config.window_hours, spot_time_left)
            t1 = now + window_len
            sub = _scaled_problem(problem, left, remaining_deadline)

            if self.refresh_models or frozen_decision is None:
                models = self._models_at(now)
                plan = SompiOptimizer(sub, models, self.config).plan()
                decision = plan.decision
                if not self.refresh_models:
                    frozen_decision = decision
            else:
                decision = frozen_decision

            if not decision.groups:
                # Optimizer says on-demand is the cheapest way to finish.
                od_opt = sub.ondemand_options[decision.ondemand_index]
                cost += od_opt.full_run_cost
                makespan = (now - start_time) + od_opt.exec_time
                return self._finish(cost, makespan, True, True, windows)

            outcome = replay_window(
                sub,
                decision,
                self.history,
                now,
                t1,
                persistent=(self.semantics == "persistent"),
            )
            cost += outcome.cost
            used = tuple(
                str(sub.groups[g.group_index].key) for g in decision.groups
            )
            if outcome.completed:
                makespan = outcome.completion_time - start_time
                windows.append(
                    WindowRecord(index, now, t1, done, 1.0, outcome.cost, used, True)
                )
                return self._finish(cost, makespan, True, False, windows)

            new_done = done + outcome.gained_fraction * left
            windows.append(
                WindowRecord(index, now, t1, done, new_done, outcome.cost, used, False)
            )
            done = new_done
            now = t1

        raise ConfigurationError(
            f"adaptive execution did not converge within {_MAX_WINDOWS} windows"
        )

    def _finish(
        self,
        cost: float,
        makespan: float,
        completed: bool,
        fallback: bool,
        windows: Sequence[WindowRecord],
    ) -> AdaptiveResult:
        return AdaptiveResult(
            cost=cost,
            makespan=makespan,
            completed=completed,
            fallback_used=fallback,
            windows=tuple(windows),
            deadline=self.problem.deadline,
        )
