"""Algorithm 1 — adaptive windowed re-optimization (Section 4.3).

Every ``T_m`` hours the executor refreshes the failure-rate functions
with the just-observed window of spot prices, re-optimizes the decision
for the *remaining* work under the *remaining* deadline, and runs one
more window.  Progress is carried across windows through the best
checkpoint (the application state is checkpointed at every window
boundary, Algorithm 1 line 22).  When the remaining deadline can no
longer absorb another spot window plus the on-demand recovery, the
executor falls back to on-demand for the rest — the deadline guard of
Algorithm 1 lines 6-9.

``refresh_models=False`` gives the paper's w/o-MT ablation: the initial
failure models and decision are kept for the whole run, so drifting spot
distributions go unnoticed.

:meth:`AdaptiveExecutor.run_many` evaluates many starting points in
lockstep: each round plans every still-running sample's next window
(scalar, cache-amortised through the shared planner caches), groups the
samples by the decision they chose, and replays each group's windows as
*one* call into the batched kernels of :mod:`.batch_replay` — threading
the per-sample :class:`~repro.cloud.billing.CostLedger` exactly as the
scalar loop would.  Results are bit-identical to running each sample
through a fresh executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional, Sequence

import numpy as np

from .. import obs
from ..cloud.billing import BillingPolicy, CONTINUOUS, CostLedger
from ..config import DEFAULT_CONFIG, SompiConfig
from ..core.ondemand_select import select_ondemand
from ..core.optimizer import SompiOptimizer, build_failure_models
from ..core.problem import OnDemandOption, Problem
from ..errors import ConfigurationError, InfeasibleError
from ..market.history import SpotPriceHistory
from .replay import checkpoint_storage_cost

_MAX_WINDOWS = 10_000
_MIN_WORK_FRACTION = 1e-9


@dataclass(frozen=True)
class WindowRecord:
    """One optimization window's outcome."""

    index: int
    t0: float
    t1: float
    fraction_before: float
    fraction_after: float
    cost: float
    used_groups: tuple[str, ...]
    completed: bool


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive execution.

    ``ledger`` itemises every dollar of ``cost``: one ``spot`` line per
    group per window, the ``ondemand`` fallback line if the deadline
    guard fired, and ``storage`` lines when checkpoint-image accounting
    is on.  ``cost == ledger.total()`` is an audited invariant.
    """

    cost: float
    makespan: float
    completed: bool
    fallback_used: bool
    windows: tuple[WindowRecord, ...]
    deadline: float
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def met_deadline(self) -> bool:
        return self.completed and self.makespan <= self.deadline + 1e-9


def _scaled_problem(problem: Problem, fraction_left: float, deadline: float) -> Problem:
    """The remaining-work sub-problem for one window."""
    groups = tuple(
        dc_replace(g, exec_time=g.exec_time * fraction_left) for g in problem.groups
    )
    options = tuple(
        OnDemandOption(o.itype, o.n_instances, o.exec_time * fraction_left)
        for o in problem.ondemand_options
    )
    return Problem(groups=groups, ondemand_options=options, deadline=deadline)


@dataclass
class _RunState:
    """One sample's mutable execution state inside a batched run.

    Each state is the exact local state of one scalar ``run()`` loop —
    fresh-executor semantics per sample, including per-sample frozen
    models/decision for the w/o-MT ablation.  ``share_frozen`` (set for
    single-sample :meth:`AdaptiveExecutor.run` calls) additionally syncs
    the frozen models with the executor, preserving the historical
    behaviour of repeated ``run()`` calls on one executor.
    """

    start: float
    deadline_abs: float
    now: float
    share_frozen: bool
    done: float = 0.0
    cost: float = 0.0
    index: int = 0
    ledger: CostLedger = field(default_factory=CostLedger)
    windows: list = field(default_factory=list)
    frozen_models: object = None
    frozen_decision: object = None
    result: Optional[AdaptiveResult] = None
    events: list = field(default_factory=list)  # buffered "window" emits


@dataclass
class _PendingWindow:
    """A planned window awaiting its (batched) replay."""

    state: _RunState
    sub: Problem
    decision: object
    t1: float
    left: float


class AdaptiveExecutor:
    """Runs one application to completion with Algorithm 1."""

    def __init__(
        self,
        problem: Problem,
        history: SpotPriceHistory,
        config: SompiConfig = DEFAULT_CONFIG,
        training_hours: float = 72.0,
        refresh_models: bool = True,
        semantics: str = "single-shot",
        billing: BillingPolicy = CONTINUOUS,
        account_storage: bool = False,
    ) -> None:
        if training_hours <= 0:
            raise ConfigurationError("training_hours must be > 0")
        if semantics not in ("single-shot", "persistent"):
            raise ConfigurationError(f"unknown semantics {semantics!r}")
        self.problem = problem
        self.history = history
        self.config = config
        self.training_hours = training_hours
        self.refresh_models = refresh_models
        self.semantics = semantics
        self.billing = billing
        self.account_storage = account_storage
        self._frozen_models = None

    # ------------------------------------------------------------------
    def _models_for(self, st: _RunState):
        """Failure models learned from the trailing training window."""
        if not self.refresh_models:
            if st.frozen_models is not None:
                return st.frozen_models
            if st.share_frozen and self._frozen_models is not None:
                st.frozen_models = self._frozen_models
                return st.frozen_models
        t0 = st.now - self.training_hours
        windowed = SpotPriceHistory()
        for spec in self.problem.groups:
            trace = self.history.get(spec.key)
            lo = max(trace.start_time, t0)
            windowed.add(spec.key, trace.slice(lo, st.now))
        models = build_failure_models(
            self.problem, windowed, step_hours=self.config.time_step_hours
        )
        if not self.refresh_models:
            st.frozen_models = models
            if st.share_frozen:
                self._frozen_models = models
        return models

    def run(self, start_time: float) -> AdaptiveResult:
        return self._run_batch([float(start_time)], share_frozen=True)[0]

    def run_many(self, start_times: Sequence[float]) -> list[AdaptiveResult]:
        """Run every starting point; equivalent to a fresh executor's
        ``run()`` per start (bit-identical results in input order), with
        each adaptation step's window replays batched through
        :func:`repro.execution.batch_replay.replay_window_batch`.
        """
        return self._run_batch([float(t) for t in start_times], share_frozen=False)

    def _run_batch(
        self, start_times: list[float], share_frozen: bool
    ) -> list[AdaptiveResult]:
        from .batch_replay import replay_window_batch

        metrics = obs.get_metrics()
        states = []
        for t in start_times:
            metrics.inc("adaptive.runs")
            states.append(
                _RunState(
                    start=t,
                    deadline_abs=t + self.problem.deadline,
                    now=t,
                    share_frozen=share_frozen,
                )
            )
        persistent = self.semantics == "persistent"
        while True:
            # Phase 1 — plan: advance every live sample to its next
            # window's decision (or its finish).  Planning is per-sample
            # but cache-amortised; replay is where the batch pays off.
            pending = []
            for st in states:
                if st.result is None:
                    job = self._begin_window(st)
                    if job is not None:
                        pending.append(job)
            if not pending:
                break
            # Phase 2 — replay: samples that chose the same decision are
            # evaluated as one kernel call over per-sample windows/work.
            by_decision: dict = {}
            for job in pending:
                sig = tuple(
                    (gd.group_index, gd.bid, gd.interval)
                    for gd in job.decision.groups
                )
                by_decision.setdefault(sig, []).append(job)
            for jobs in by_decision.values():
                t0 = np.array([j.state.now for j in jobs])
                t1 = np.array([j.t1 for j in jobs])
                works = np.array(
                    [
                        [j.sub.groups[gd.group_index].exec_time for j in jobs]
                        for gd in jobs[0].decision.groups
                    ]
                )
                outcomes = replay_window_batch(
                    self.problem, jobs[0].decision, self.history, t0, t1,
                    works=works, persistent=persistent, billing=self.billing,
                    table_cache=self.config.table_cache,
                )
                # Phase 3 — account: thread each outcome through its
                # sample's ledger/windows exactly as the scalar loop.
                for job, outcome in zip(jobs, outcomes):
                    self._apply_window(job, outcome)
        # Flush the buffered "window" events in input order — the order
        # a scalar loop over the starts would have emitted them.
        for st in states:
            for time_, data in st.events:
                obs.emit("window", time_, **data)
        return [st.result for st in states]

    def _begin_window(self, st: _RunState) -> Optional[_PendingWindow]:
        """One window's planning phase; finishes ``st`` or returns the
        pending replay job.  Mirrors Algorithm 1 lines 1-21."""
        if st.index >= _MAX_WINDOWS:
            raise ConfigurationError(
                f"adaptive execution did not converge within {_MAX_WINDOWS} windows"
            )
        problem = self.problem
        left = 1.0 - st.done
        if left <= _MIN_WORK_FRACTION:
            self._finish_state(
                st, makespan=st.now - st.start, completed=True, fallback=False
            )
            return None
        remaining_deadline = st.deadline_abs - st.now

        # Deadline guard (Algorithm 1 lines 6-9): keep enough time to
        # run the rest on the fastest feasible on-demand type.
        try:
            _, od = select_ondemand(
                [
                    OnDemandOption(o.itype, o.n_instances, o.exec_time * left)
                    for o in problem.ondemand_options
                ],
                max(remaining_deadline, 1e-9),
                self.config.slack,
            )
        except InfeasibleError:
            od = min(
                (
                    OnDemandOption(o.itype, o.n_instances, o.exec_time * left)
                    for o in problem.ondemand_options
                ),
                key=lambda o: o.exec_time,
            )
        # Time still available for spot execution before we must hand
        # the remaining work to on-demand to make the deadline.
        spot_time_left = remaining_deadline - od.exec_time
        if spot_time_left < min(self.config.window_hours, 1.0):
            st.cost += od.full_run_cost
            st.ledger.add(
                "ondemand",
                f"deadline fallback of {left:.2%} on {od.itype.name}",
                od.full_run_cost,
            )
            self._finish_state(
                st, makespan=(st.now - st.start) + od.exec_time,
                completed=True, fallback=True,
            )
            return None

        window_len = min(self.config.window_hours, spot_time_left)
        t1 = st.now + window_len
        sub = _scaled_problem(problem, left, remaining_deadline)

        if self.refresh_models or st.frozen_decision is None:
            models = self._models_for(st)
            plan = SompiOptimizer(sub, models, self.config).plan()
            decision = plan.decision
            if not self.refresh_models:
                st.frozen_decision = decision
        else:
            decision = st.frozen_decision

        if not decision.groups:
            # Optimizer says on-demand is the cheapest way to finish.
            od_opt = sub.ondemand_options[decision.ondemand_index]
            st.cost += od_opt.full_run_cost
            st.ledger.add(
                "ondemand",
                f"planned finish of {left:.2%} on {od_opt.itype.name}",
                od_opt.full_run_cost,
            )
            self._finish_state(
                st, makespan=(st.now - st.start) + od_opt.exec_time,
                completed=True, fallback=True,
            )
            return None
        return _PendingWindow(state=st, sub=sub, decision=decision, t1=t1, left=left)

    def _apply_window(self, job: _PendingWindow, outcome) -> None:
        """One window's accounting phase; mirrors Algorithm 1 lines 22-27."""
        st = job.state
        sub, decision, t1, left = job.sub, job.decision, job.t1, job.left
        index = st.index
        st.cost += outcome.cost
        for rec in outcome.records:
            st.ledger.add(
                "spot",
                f"window {index}: {rec.key} bid=${rec.bid:.4f}",
                rec.spot_cost,
            )
        if self.account_storage:
            run_end = outcome.completion_time if outcome.completed else t1
            storage = checkpoint_storage_cost(
                sub, decision, outcome.records, run_end
            )
            if storage > 0:
                st.cost += storage
                st.ledger.add(
                    "storage", f"window {index}: checkpoint images", storage
                )
        used = tuple(
            str(sub.groups[g.group_index].key) for g in decision.groups
        )
        st.events.append(
            (
                st.now,
                dict(
                    index=index, t1=t1, cost=outcome.cost,
                    gained=outcome.gained_fraction * left,
                    completed=outcome.completed,
                ),
            )
        )
        if outcome.completed:
            st.windows.append(
                WindowRecord(
                    index, st.now, t1, st.done, 1.0, outcome.cost, used, True
                )
            )
            self._finish_state(
                st, makespan=outcome.completion_time - st.start,
                completed=True, fallback=False,
            )
            return
        new_done = st.done + outcome.gained_fraction * left
        st.windows.append(
            WindowRecord(
                index, st.now, t1, st.done, new_done, outcome.cost, used, False
            )
        )
        st.done = new_done
        st.now = t1
        st.index += 1

    def _finish_state(
        self, st: _RunState, makespan: float, completed: bool, fallback: bool
    ) -> None:
        st.result = self._finish(
            st.cost, makespan, completed, fallback, st.windows, st.ledger
        )

    def _finish(
        self,
        cost: float,
        makespan: float,
        completed: bool,
        fallback: bool,
        windows: Sequence[WindowRecord],
        ledger: CostLedger,
    ) -> AdaptiveResult:
        obs.get_metrics().inc("adaptive.windows", len(windows))
        result = AdaptiveResult(
            cost=cost,
            makespan=makespan,
            completed=completed,
            fallback_used=fallback,
            windows=tuple(windows),
            deadline=self.problem.deadline,
            ledger=ledger,
        )
        if self.config.audit or obs.audit_enabled():
            obs.audit_adaptive_result(result)
        return result
