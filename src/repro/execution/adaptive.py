"""Algorithm 1 — adaptive windowed re-optimization (Section 4.3).

Every ``T_m`` hours the executor refreshes the failure-rate functions
with the just-observed window of spot prices, re-optimizes the decision
for the *remaining* work under the *remaining* deadline, and runs one
more window.  Progress is carried across windows through the best
checkpoint (the application state is checkpointed at every window
boundary, Algorithm 1 line 22).  When the remaining deadline can no
longer absorb another spot window plus the on-demand recovery, the
executor falls back to on-demand for the rest — the deadline guard of
Algorithm 1 lines 6-9.

``refresh_models=False`` gives the paper's w/o-MT ablation: the initial
failure models and decision are kept for the whole run, so drifting spot
distributions go unnoticed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional, Sequence

from .. import obs
from ..cloud.billing import BillingPolicy, CONTINUOUS, CostLedger
from ..config import DEFAULT_CONFIG, SompiConfig
from ..core.ondemand_select import select_ondemand
from ..core.optimizer import SompiOptimizer, build_failure_models
from ..core.problem import OnDemandOption, Problem
from ..errors import ConfigurationError, InfeasibleError
from ..market.history import SpotPriceHistory
from .replay import checkpoint_storage_cost, replay_window

_MAX_WINDOWS = 10_000
_MIN_WORK_FRACTION = 1e-9


@dataclass(frozen=True)
class WindowRecord:
    """One optimization window's outcome."""

    index: int
    t0: float
    t1: float
    fraction_before: float
    fraction_after: float
    cost: float
    used_groups: tuple[str, ...]
    completed: bool


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive execution.

    ``ledger`` itemises every dollar of ``cost``: one ``spot`` line per
    group per window, the ``ondemand`` fallback line if the deadline
    guard fired, and ``storage`` lines when checkpoint-image accounting
    is on.  ``cost == ledger.total()`` is an audited invariant.
    """

    cost: float
    makespan: float
    completed: bool
    fallback_used: bool
    windows: tuple[WindowRecord, ...]
    deadline: float
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def met_deadline(self) -> bool:
        return self.completed and self.makespan <= self.deadline + 1e-9


def _scaled_problem(problem: Problem, fraction_left: float, deadline: float) -> Problem:
    """The remaining-work sub-problem for one window."""
    groups = tuple(
        dc_replace(g, exec_time=g.exec_time * fraction_left) for g in problem.groups
    )
    options = tuple(
        OnDemandOption(o.itype, o.n_instances, o.exec_time * fraction_left)
        for o in problem.ondemand_options
    )
    return Problem(groups=groups, ondemand_options=options, deadline=deadline)


class AdaptiveExecutor:
    """Runs one application to completion with Algorithm 1."""

    def __init__(
        self,
        problem: Problem,
        history: SpotPriceHistory,
        config: SompiConfig = DEFAULT_CONFIG,
        training_hours: float = 72.0,
        refresh_models: bool = True,
        semantics: str = "single-shot",
        billing: BillingPolicy = CONTINUOUS,
        account_storage: bool = False,
    ) -> None:
        if training_hours <= 0:
            raise ConfigurationError("training_hours must be > 0")
        if semantics not in ("single-shot", "persistent"):
            raise ConfigurationError(f"unknown semantics {semantics!r}")
        self.problem = problem
        self.history = history
        self.config = config
        self.training_hours = training_hours
        self.refresh_models = refresh_models
        self.semantics = semantics
        self.billing = billing
        self.account_storage = account_storage
        self._frozen_models = None

    # ------------------------------------------------------------------
    def _models_at(self, now: float):
        """Failure models learned from the trailing training window."""
        if not self.refresh_models and self._frozen_models is not None:
            return self._frozen_models
        t0 = now - self.training_hours
        windowed = SpotPriceHistory()
        for spec in self.problem.groups:
            trace = self.history.get(spec.key)
            lo = max(trace.start_time, t0)
            windowed.add(spec.key, trace.slice(lo, now))
        models = build_failure_models(
            self.problem, windowed, step_hours=self.config.time_step_hours
        )
        if not self.refresh_models:
            self._frozen_models = models
        return models

    def run(self, start_time: float) -> AdaptiveResult:
        problem = self.problem
        deadline_abs = start_time + problem.deadline
        done = 0.0
        now = start_time
        cost = 0.0
        ledger = CostLedger()
        windows: list[WindowRecord] = []
        frozen_decision = None
        obs.get_metrics().inc("adaptive.runs")

        for index in range(_MAX_WINDOWS):
            left = 1.0 - done
            if left <= _MIN_WORK_FRACTION:
                return self._finish(
                    cost, now - start_time, True, False, windows, ledger
                )
            remaining_deadline = deadline_abs - now

            # Deadline guard (Algorithm 1 lines 6-9): keep enough time to
            # run the rest on the fastest feasible on-demand type.
            try:
                _, od = select_ondemand(
                    [
                        OnDemandOption(o.itype, o.n_instances, o.exec_time * left)
                        for o in problem.ondemand_options
                    ],
                    max(remaining_deadline, 1e-9),
                    self.config.slack,
                )
            except InfeasibleError:
                od = min(
                    (
                        OnDemandOption(o.itype, o.n_instances, o.exec_time * left)
                        for o in problem.ondemand_options
                    ),
                    key=lambda o: o.exec_time,
                )
            # Time still available for spot execution before we must hand
            # the remaining work to on-demand to make the deadline.
            spot_time_left = remaining_deadline - od.exec_time
            if spot_time_left < min(self.config.window_hours, 1.0):
                cost += od.full_run_cost
                ledger.add(
                    "ondemand",
                    f"deadline fallback of {left:.2%} on {od.itype.name}",
                    od.full_run_cost,
                )
                makespan = (now - start_time) + od.exec_time
                return self._finish(cost, makespan, True, True, windows, ledger)

            window_len = min(self.config.window_hours, spot_time_left)
            t1 = now + window_len
            sub = _scaled_problem(problem, left, remaining_deadline)

            if self.refresh_models or frozen_decision is None:
                models = self._models_at(now)
                plan = SompiOptimizer(sub, models, self.config).plan()
                decision = plan.decision
                if not self.refresh_models:
                    frozen_decision = decision
            else:
                decision = frozen_decision

            if not decision.groups:
                # Optimizer says on-demand is the cheapest way to finish.
                od_opt = sub.ondemand_options[decision.ondemand_index]
                cost += od_opt.full_run_cost
                ledger.add(
                    "ondemand",
                    f"planned finish of {left:.2%} on {od_opt.itype.name}",
                    od_opt.full_run_cost,
                )
                makespan = (now - start_time) + od_opt.exec_time
                return self._finish(cost, makespan, True, True, windows, ledger)

            outcome = replay_window(
                sub,
                decision,
                self.history,
                now,
                t1,
                persistent=(self.semantics == "persistent"),
                billing=self.billing,
            )
            cost += outcome.cost
            for rec in outcome.records:
                ledger.add(
                    "spot",
                    f"window {index}: {rec.key} bid=${rec.bid:.4f}",
                    rec.spot_cost,
                )
            if self.account_storage:
                run_end = (
                    outcome.completion_time if outcome.completed else t1
                )
                storage = checkpoint_storage_cost(
                    sub, decision, outcome.records, run_end
                )
                if storage > 0:
                    cost += storage
                    ledger.add(
                        "storage", f"window {index}: checkpoint images", storage
                    )
            used = tuple(
                str(sub.groups[g.group_index].key) for g in decision.groups
            )
            obs.emit(
                "window", now, index=index, t1=t1, cost=outcome.cost,
                gained=outcome.gained_fraction * left,
                completed=outcome.completed,
            )
            if outcome.completed:
                makespan = outcome.completion_time - start_time
                windows.append(
                    WindowRecord(index, now, t1, done, 1.0, outcome.cost, used, True)
                )
                return self._finish(cost, makespan, True, False, windows, ledger)

            new_done = done + outcome.gained_fraction * left
            windows.append(
                WindowRecord(index, now, t1, done, new_done, outcome.cost, used, False)
            )
            done = new_done
            now = t1

        raise ConfigurationError(
            f"adaptive execution did not converge within {_MAX_WINDOWS} windows"
        )

    def _finish(
        self,
        cost: float,
        makespan: float,
        completed: bool,
        fallback: bool,
        windows: Sequence[WindowRecord],
        ledger: CostLedger,
    ) -> AdaptiveResult:
        obs.get_metrics().inc("adaptive.windows", len(windows))
        result = AdaptiveResult(
            cost=cost,
            makespan=makespan,
            completed=completed,
            fallback_used=fallback,
            windows=tuple(windows),
            deadline=self.problem.deadline,
            ledger=ledger,
        )
        if self.config.audit or obs.audit_enabled():
            obs.audit_adaptive_result(result)
        return result
