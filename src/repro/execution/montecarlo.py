"""Monte-Carlo evaluation of a decision by repeated trace replay.

The paper: "We randomly choose a start point in the trace and compare
our bid price with the spot price along the time ... We repeat the
simulation [many] times and calculate the expected cost."  Replays are
independent given the starting points, which are drawn uniformly from
the part of the history that leaves room for the replay horizon.

Execution strategy: every spot-using replay — single-shot *and*
persistent, either billing policy, with or without storage accounting —
is batched through :mod:`.batch_replay` (bit-identical to the scalar
loop, see that module); only pure on-demand decisions take the trivial
scalar path.  Both accept ``jobs`` to fan the pre-drawn starting points
out over worker processes — the starts are drawn *before* chunking and
the chunk results are concatenated in order, so the output is
byte-identical to a serial run regardless of ``jobs``.

The fan-out goes through the persistent shared :class:`~.pool.
WorkerPool` (DESIGN.md §12): the executor is spawned once per process
and reused by every evaluation, and traces ship through the long-lived
content-hash-keyed shm registry (:func:`~.shm_pool.shared_trace_handle`)
so the same history never rebuilds its shared blocks call after call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from ..cloud.billing import BillingPolicy, CONTINUOUS
from ..core.problem import Decision, Problem
from ..errors import ConfigurationError, TraceError
from ..market.history import SpotPriceHistory
from .batch_replay import replay_batch
from .replay import decision_horizon, replay_decision
from .results import MonteCarloSummary, RunResult
from .shm_pool import SharedHistoryHandle, attach_history, shared_trace_handle


def sample_start_times(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    n_samples: int,
    rng: np.random.Generator,
    horizon: Optional[float] = None,
    t_min: Optional[float] = None,
) -> np.ndarray:
    """Uniform starting points leaving ``horizon`` hours of trace.

    ``t_min`` restricts sampling to start at/after that time — used to
    keep evaluation replays out of the model's training window.

    A pure on-demand decision consumes no trace during its replay, but
    its starting points still honour ``t_min`` and the trace window of
    the problem's candidate markets (when the history has them), so its
    timestamps are drawn from the same evaluation period as the hybrid
    replays it is compared against.  With no trace data at all, every
    start is pinned to ``t_min`` (or 0).
    """
    if horizon is None:
        horizon = decision_horizon(problem, decision)
    lo, hi = None, None
    keys = [problem.groups[g.group_index].key for g in decision.groups]
    need_trace = bool(keys)
    if not keys:
        # Pure on-demand: fall back to the problem's candidate markets
        # so the window (and t_min) still shape the sampled starts.
        keys = [spec.key for spec in problem.groups if spec.key in history]
    if not keys:
        base = 0.0 if t_min is None else float(t_min)
        return np.full(n_samples, base)
    for key in keys:
        trace = history.get(key)
        lo = trace.start_time if lo is None else max(lo, trace.start_time)
        hi = trace.end_time if hi is None else min(hi, trace.end_time)
    if t_min is not None:
        lo = max(lo, t_min)
    # An on-demand run needs no trace data after its start, so the
    # horizon margin only applies when spot groups will actually replay.
    latest = hi - horizon if need_trace else hi
    if latest <= lo:
        raise TraceError(
            f"history too short for Monte-Carlo: window [{lo}, {hi}) cannot "
            f"fit a {horizon:.3g} h replay"
        )
    return rng.uniform(lo, latest, size=n_samples)


def _replay_chunk(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    starts: np.ndarray,
    horizon: Optional[float],
    semantics: str,
    billing: BillingPolicy = CONTINUOUS,
    account_storage: bool = False,
) -> list[RunResult]:
    """Replay one chunk of starting points (module-level so worker
    processes can import it)."""
    if decision.groups:
        return replay_batch(
            problem, decision, history, starts, horizon=horizon,
            semantics=semantics, billing=billing,
            account_storage=account_storage,
        )
    return [
        replay_decision(
            problem, decision, history, float(t), horizon=horizon,
            semantics=semantics, billing=billing,
            account_storage=account_storage,
        )
        for t in starts
    ]


def _replay_chunk_shm(
    problem: Problem,
    decision: Decision,
    handle: SharedHistoryHandle,
    starts: np.ndarray,
    horizon: Optional[float],
    semantics: str,
    billing: BillingPolicy = CONTINUOUS,
    account_storage: bool = False,
) -> list[RunResult]:
    """Worker entry point for the shared-memory path: attach the pooled
    traces (once per worker — the handle is tiny, the attach is cached)
    and replay exactly like :func:`_replay_chunk`."""
    return _replay_chunk(
        problem, decision, attach_history(handle), starts, horizon,
        semantics, billing, account_storage,
    )


def resolve_jobs(jobs: Optional[int], n_starts: int) -> int:
    """Worker-process count the replay fan-out will actually use.

    The chunking decision used to be an inline conjunction that silently
    serialised ``jobs=0`` and spawned more workers than chunks; this is
    the single authority both callers and tests consult.  ``None`` means
    serial (1); ``jobs < 1`` is a configuration error; otherwise the
    count is capped by the number of starts (one start cannot be split,
    and a worker without a chunk is pure startup cost).
    """
    if jobs is None:
        return 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if n_starts <= 1:
        return 1
    return min(jobs, n_starts)


def _replay_starts(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    starts: np.ndarray,
    horizon: Optional[float],
    semantics: str,
    jobs: Optional[int],
    billing: BillingPolicy = CONTINUOUS,
    account_storage: bool = False,
) -> list[RunResult]:
    """Replay every start, fanning chunks out to worker processes.

    The shared-memory shipping is fail-open twice over: a platform
    that cannot provide shared memory falls back to pickling the
    history into every chunk, and a worker whose attach fails mid-run
    (the registry's segment vanished under it) surfaces its OSError at
    the gather, which re-runs every chunk through the pickling path.
    Results are byte-identical on every path (same arrays, same replay
    code) and each degradation is a counted metric, never an error.
    """
    n_jobs = resolve_jobs(jobs, int(starts.size))
    if n_jobs > 1:
        from .pool import WorkerPool

        chunks = np.array_split(starts, n_jobs)
        # Ship the traces through the long-lived shared-memory registry
        # instead of re-pickling the history into every chunk (or
        # rebuilding the blocks per call).
        handle: Optional[SharedHistoryHandle] = None
        try:
            handle = shared_trace_handle(history)
        # reprolint: disable=R006 -- fail-open: no shared memory means the pickling path, counted
        except Exception:
            obs.get_metrics().inc("mc.shm_pool_unavailable")
            handle = None
        pool = WorkerPool.shared(n_jobs)
        if handle is not None:
            try:
                futures = [
                    pool.submit(
                        _replay_chunk_shm, problem, decision, handle,
                        chunk, horizon, semantics, billing,
                        account_storage,
                    )
                    for chunk in chunks
                ]
                results: list[RunResult] = []
                for future in futures:  # submission order == start order
                    results.extend(future.result())
                return results
            except OSError:
                # A worker lost the segment between the parent's probe
                # and its own attach; the replay itself is stateless,
                # so recompute through the pickling path.
                obs.get_metrics().inc("mc.shm_attach_failed")
        futures = [
            pool.submit(
                _replay_chunk, problem, decision, history, chunk,
                horizon, semantics, billing, account_storage,
            )
            for chunk in chunks
        ]
        results = []
        for future in futures:  # submission order == start order
            results.extend(future.result())
        return results
    return _replay_chunk(
        problem, decision, history, starts, horizon, semantics, billing,
        account_storage,
    )


def evaluate_decision_mc(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    n_samples: int,
    rng: np.random.Generator,
    deadline: Optional[float] = None,
    horizon: Optional[float] = None,
    t_min: Optional[float] = None,
    semantics: str = "single-shot",
    jobs: Optional[int] = None,
    billing: BillingPolicy = CONTINUOUS,
    account_storage: bool = False,
) -> MonteCarloSummary:
    """Expected cost/time of ``decision`` over random starting points.

    ``jobs > 1`` replays chunks of starts in worker processes; the
    summary is byte-identical to the serial run for the same ``rng``.
    ``billing`` / ``account_storage`` select the billing policy and the
    checkpoint-storage accounting of every replay.
    """
    deadline = problem.deadline if deadline is None else deadline
    metrics = obs.get_metrics()
    metrics.inc("mc.evaluations")
    metrics.inc("mc.samples", n_samples)
    starts = sample_start_times(
        problem, decision, history, n_samples, rng, horizon, t_min
    )
    with metrics.timer("mc.replay"):
        results = _replay_starts(
            problem, decision, history, starts, horizon, semantics, jobs,
            billing, account_storage,
        )
    return MonteCarloSummary.from_results(results, deadline)


def replay_many(
    problem: Problem,
    decision: Decision,
    history: SpotPriceHistory,
    n_samples: int,
    rng: np.random.Generator,
    horizon: Optional[float] = None,
    t_min: Optional[float] = None,
    semantics: str = "single-shot",
    jobs: Optional[int] = None,
    billing: BillingPolicy = CONTINUOUS,
    account_storage: bool = False,
) -> list[RunResult]:
    """Raw replay results (for distribution plots and variance studies)."""
    starts = sample_start_times(
        problem, decision, history, n_samples, rng, horizon, t_min
    )
    return _replay_starts(
        problem, decision, history, starts, horizon, semantics, jobs,
        billing, account_storage,
    )
