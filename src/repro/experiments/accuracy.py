"""Section 5.4.1 — accuracy of the failure-rate function and of the model.

**Failure-rate accuracy** — train the failure model on three days of a
4-day window, re-estimate it on the held-out fourth day, and measure the
relative difference ``|A - A'| / A`` of the cumulative failure
probabilities across bids and horizons.  The paper reports ~90% of
differences below 3% and 98% below 5%.

**Model accuracy** — compare the Formula-1 expected cost against the
Monte-Carlo replay mean for a battery of decisions.  The paper reports
20% of relative differences below 5%, 40% between 5 and 10%, and a
worst case of 15%.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import obs
from ..core.windows import sample_window_starts
from ..errors import ConfigurationError
from ..market.failure import FailureModel
from ..market.history import MarketKey
from ..market.stats import relative_difference
from ..units import HOURS_PER_DAY
from .common import ExperimentResult
from .env import ExperimentEnv, LOOSE_DEADLINE_FACTOR, TIGHT_DEADLINE_FACTOR


def run_failure_rate(
    env: ExperimentEnv,
    markets: Sequence[MarketKey] = (
        MarketKey("m1.medium", "us-east-1a"),
        MarketKey("m1.small", "us-east-1c"),
        MarketKey("cc2.8xlarge", "us-east-1a"),
    ),
    n_windows: int = 10,
    horizons: Sequence[int] = (6, 12, 24),
    train_days: float = 10.0,
    test_days: float = 4.0,
    min_probability: float = 0.05,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ACC-FAIL",
        title=(
            f"Failure-rate function: {train_days:g}-day-train vs "
            f"{test_days:g}-day-test estimates"
        ),
        columns=("quantity", "value"),
    )
    rng = env.rng.fresh("acc:windows")
    diffs = []
    skipped = []
    span = (train_days + test_days) * HOURS_PER_DAY
    for key in markets:
        trace = env.history.get(key)
        # The naive ``rng.uniform(start, end - span)`` this replaces got
        # an *inverted* range on traces shorter than the span and
        # silently sampled start times outside the trace; the checked
        # helper raises instead, and a too-short market is skipped with
        # a visible note rather than polluting the statistics.
        try:
            starts = sample_window_starts(trace, span, n_windows, rng)
        except ConfigurationError:
            skipped.append(key)
            obs.get_metrics().inc("accuracy.skipped_markets")
            continue
        for t0 in starts:
            t0 = float(t0)
            split = t0 + train_days * HOURS_PER_DAY
            train_window = trace.slice(t0, split)
            train = FailureModel(train_window)
            test = FailureModel(trace.slice(split, t0 + span))
            # Bids at the training price distribution's quantiles: the
            # region the distribution actually discriminates (failures
            # there are driven by the recurring daily cycle, which is the
            # learnable part of the process).
            bids = [train_window.quantile(q) for q in (0.3, 0.5, 0.7, 0.85, 0.95)]
            for bid in bids:
                for horizon in horizons:
                    a = float(test.failure_pmf(float(bid), horizon)[:-1].sum())
                    a_hat = float(train.failure_pmf(float(bid), horizon)[:-1].sum())
                    # Only probabilities a scheduler would act on: cells
                    # with near-zero mass are dominated by sampling noise.
                    if a > min_probability:
                        diffs.append(relative_difference(a, a_hat))
    if skipped:
        result.notes.append(
            f"skipped {len(skipped)} market(s) shorter than the "
            f"{train_days:g}+{test_days:g} day window: "
            + ", ".join(str(k) for k in skipped)
        )
    if len(skipped) == len(markets):
        raise ConfigurationError(
            f"every market's trace is shorter than the "
            f"{train_days:g}+{test_days:g} day sampling window; "
            f"shorten the windows or provide longer traces"
        )
    diffs = np.array(diffs)
    result.add_row("samples", int(diffs.size))
    result.add_row("median relative difference", float(np.median(diffs)))
    result.add_row("fraction < 5%", float(np.mean(diffs < 0.05)))
    result.add_row("fraction < 10%", float(np.mean(diffs < 0.10)))
    result.add_row("fraction < 25%", float(np.mean(diffs < 0.25)))
    result.data["diffs"] = diffs
    result.notes.append(
        "paper (real traces, denser data): 90% < 3%, 98% < 5%; the synthetic "
        "market's day-to-day sampling noise widens the spread"
    )
    return result


def run_model(
    env: ExperimentEnv,
    apps: Sequence[str] = ("BT", "FT", "BTIO"),
    n_samples: int = 400,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ACC-MODEL",
        title="Formula-1 expected cost vs Monte-Carlo replay",
        columns=("app", "deadline", "model $", "replay $", "rel diff"),
    )
    diffs = []
    for name in apps:
        for dl_name, factor in (
            ("loose", LOOSE_DEADLINE_FACTOR),
            ("tight", TIGHT_DEADLINE_FACTOR),
        ):
            problem = env.problem(name, factor)
            plan = env.sompi_plan(problem)
            mc = env.mc(problem, plan.decision, n_samples, f"acc:{name}:{dl_name}")
            diff = relative_difference(mc.mean_cost, plan.expectation.cost)
            diffs.append(diff)
            result.add_row(
                name, dl_name, plan.expectation.cost, mc.mean_cost, diff
            )
    diffs = np.array(diffs)
    result.data["diffs"] = diffs
    result.notes.append(
        f"fraction < 5%: {np.mean(diffs < 0.05):.2f}, "
        f"5-10%: {np.mean((diffs >= 0.05) & (diffs < 0.10)):.2f}, "
        f"max: {diffs.max():.2f} (paper max: 0.15)"
    )
    return result


def run(env: ExperimentEnv) -> list[ExperimentResult]:
    return [run_failure_rate(env), run_model(env)]
