"""Table 2 — normalised execution time, Marathe-Opt vs SOMPI.

The paper shows both approaches complete well within loose deadlines
(normalised times around 1.04-1.40x Baseline Time) and right at tight
deadlines (~1.05x), i.e. SOMPI's savings are not bought with slower
runs.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, baseline_decisions, mc_by_method
from .env import (
    ExperimentEnv,
    LOOSE_DEADLINE_FACTOR,
    TIGHT_DEADLINE_FACTOR,
)

DEFAULT_APPS = ("BT", "SP", "LU", "FT", "IS", "BTIO")


def run(
    env: ExperimentEnv,
    apps: Sequence[str] = DEFAULT_APPS,
    n_samples: int = 150,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="TAB2",
        title="Normalised execution time (x Baseline Time)",
        columns=("deadline", "method", *apps),
    )
    data = {}
    for dl_name, factor in (
        ("loose", LOOSE_DEADLINE_FACTOR),
        ("tight", TIGHT_DEADLINE_FACTOR),
    ):
        rows = {"Marathe-Opt": [], "SOMPI": []}
        for name in apps:
            app = env.app(name)
            baseline_time = env.baseline_time(app)
            problem = env.problem(app, factor)
            decisions = baseline_decisions(env, problem, ("Marathe-Opt",))
            decisions["SOMPI"] = env.sompi_plan(problem).decision
            summaries = mc_by_method(
                env, problem, decisions, n_samples, f"tab2:{name}:{dl_name}"
            )
            for method in rows:
                rows[method].append(summaries[method].mean_time / baseline_time)
        for method, values in rows.items():
            result.add_row(dl_name, method, *values)
            data[f"{dl_name}:{method}"] = values
    result.data["normalized_time"] = data
    result.notes.append(
        "both methods stay within the deadline factor in expectation "
        "(loose <= 1.5, tight ~ 1.05)"
    )
    return result
