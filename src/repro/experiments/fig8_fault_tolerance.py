"""Figure 8 — individual fault-tolerance mechanisms.

Compares All-Unable (no replication, no checkpoints), w/o-RP
(checkpoints only), w/o-CK (replication only), w/o-MT (no adaptive
update maintenance) and full SOMPI.  Paper shape: each single mechanism
buys little over All-Unable; combining them buys >25%; dropping update
maintenance costs ~15% and inflates variance.

Fault tolerance only has value where failures are likely: the paper's
real 2014 traces spike in *every* zone, whereas our canonical presets
include a near-failure-free zone that lets even All-Unable hide.  This
experiment therefore runs on a *risky* market — every (type, zone)
market's spike rate is boosted so an out-of-bid event is expected within
a job's lifetime — which recreates the regime the paper measured.

The w/o-MT comparison additionally needs a *drifting* market (stale
models are harmless under stationarity): the spike intensity jumps right
after the training prefix, and the adaptive executor runs with and
without model refresh.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Optional

import numpy as np

from ..baselines.ablations import ablation_plan
from ..execution.adaptive import AdaptiveExecutor
from ..market.generator import RegimeSwitchingGenerator
from ..market.history import SpotPriceHistory
from ..market.presets import market_params
from ..sim.rng import derive_seed
from .common import ExperimentResult, mc_by_method
from .env import (
    ExperimentEnv,
    LOOSE_DEADLINE_FACTOR,
    TIGHT_DEADLINE_FACTOR,
)

STATIC_VARIANTS = ("all-unable", "wo-rp", "wo-ck", "sompi")
LABELS = {
    "all-unable": "All-Unable",
    "wo-rp": "w/o-RP",
    "wo-ck": "w/o-CK",
    "sompi": "SOMPI",
}


def _boosted_params(key, spike_rate_floor: float, spike_duration: float):
    params = market_params(key.instance_type, key.zone)
    return dc_replace(
        params,
        spike_rate=max(params.spike_rate, spike_rate_floor),
        # Long spikes are what make reliability expensive: a multi-hour
        # excursion means a never-reclaimed (high-bid) instance pays spike
        # prices for a meaningful fraction of the run, so the optimizer is
        # pushed toward low bids and genuine out-of-bid risk — the regime
        # of the paper's Figure 1 region "B".
        spike_duration_mean=spike_duration,
    )


def risky_env(
    env: ExperimentEnv,
    spike_rate_floor: float = 0.03,
    spike_duration: float = 4.0,
) -> ExperimentEnv:
    """A clone of ``env`` whose every market fails regularly."""
    history = SpotPriceHistory()
    for key, trace in env.history.items():
        params = _boosted_params(key, spike_rate_floor, spike_duration)
        rng = np.random.default_rng(derive_seed(env.seed, f"fig8risky:{key}"))
        history.add(
            key,
            RegimeSwitchingGenerator(params, rng).generate(
                trace.duration, start_time=trace.start_time
            ),
        )
    return ExperimentEnv(
        history=history,
        train_end=env.train_end,
        seed=env.seed,
        config=env.config,
        instance_types=env.instance_types,
        zones=env.zones,
    )


def drifting_history(
    env: ExperimentEnv,
    drift_at: float | None = None,
    inflate_keys=None,
    inflation: float = 2.5,
    relief: float = 0.8,
) -> SpotPriceHistory:
    """A history whose price *distribution* shifts at ``drift_at`` hours.

    Demand migrates: the markets in ``inflate_keys`` (by default the
    cheap m1-family markets a pre-shift plan will have picked, with bids
    just above their old calm price) become several times more expensive,
    while every other market relaxes.  A frozen w/o-MT decision keeps its
    stale bids — now often below the new calm band, so its instances
    stall or die — while the refreshing executor re-learns and migrates.

    For the ablation to bite, runs must *start before* ``drift_at`` (so
    both variants train on pre-shift data) and live past it.
    """
    if drift_at is None:
        drift_at = env.train_end
    out = SpotPriceHistory()
    for key, trace in env.history.items():
        prefix = trace.slice(trace.start_time, drift_at)
        params = market_params(key.instance_type, key.zone)
        if inflate_keys is None:
            inflate = key.instance_type in ("m1.small", "m1.medium")
        else:
            inflate = key in inflate_keys
        factor = inflation if inflate else relief
        shifted = dc_replace(params, base_price=params.base_price * factor)
        rng = np.random.default_rng(
            derive_seed(env.seed, f"fig8drift:{key}:{drift_at:.3f}")
        )
        suffix = RegimeSwitchingGenerator(shifted, rng).generate(
            trace.end_time - drift_at, start_time=drift_at
        )
        out.add(key, prefix.concat(suffix))
    return out


def run(
    env: ExperimentEnv,
    app_name: str = "BT",
    n_samples: int = 150,
    n_adaptive_starts: int = 12,
    risky: Optional[ExperimentEnv] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="FIG8",
        title="Individual fault-tolerance mechanisms (normalised cost)",
        columns=("deadline", "method", "norm cost", "norm std"),
    )
    risky = risky or risky_env(env)
    app = risky.app(app_name)
    baseline_cost = risky.baseline_cost(app)
    raw = {}

    for dl_name, factor in (
        ("loose", LOOSE_DEADLINE_FACTOR),
        ("tight", TIGHT_DEADLINE_FACTOR),
    ):
        problem = risky.problem(app, factor)
        models = risky.failure_models(problem)
        decisions = {}
        for variant in STATIC_VARIANTS:
            plan = ablation_plan(variant, problem, models, risky.config)
            decisions[LABELS[variant]] = plan.decision
        summaries = mc_by_method(
            risky, problem, decisions, n_samples, f"fig8:{dl_name}"
        )
        for variant in STATIC_VARIANTS:
            label = LABELS[variant]
            s = summaries[label]
            raw[f"{dl_name}:{label}"] = s.mean_cost / baseline_cost
            result.add_row(
                dl_name, label, s.mean_cost / baseline_cost, s.std_cost / baseline_cost
            )

    # w/o-MT vs adaptive SOMPI: the price distribution shifts 2 hours
    # into each run, so both variants plan from pre-shift data and only
    # the refreshing executor notices the change.  Training is one
    # optimization window, per Algorithm 1 ("update the spot price trace
    # with the spot price history from the previous window").
    problem = env.problem(env.app(app_name), LOOSE_DEADLINE_FACTOR)
    rng = env.rng.fresh("fig8:starts")
    horizon = problem.deadline * 2.0
    hi = min(t.end_time for _k, t in env.history.items()) - horizon
    starts = rng.uniform(
        env.train_end, max(env.train_end + 1.0, hi), n_adaptive_starts
    )
    baseline_plain = env.baseline_cost(env.app(app_name))
    # The drift turns hostile exactly on the markets the pre-shift plan
    # chose — the scenario where stale knowledge is maximally wrong.
    from ..core.optimizer import SompiOptimizer, build_failure_models

    drifts = []
    for t0 in starts:
        windowed = SpotPriceHistory()
        for key, trace in env.history.items():
            lo = max(trace.start_time, float(t0) - env.config.window_hours)
            windowed.add(key, trace.slice(lo, float(t0)))
        models0 = build_failure_models(problem, windowed)
        plan0 = SompiOptimizer(problem, models0, env.config).plan()
        keys0 = {
            problem.groups[g.group_index].key for g in plan0.decision.groups
        }
        drifts.append(
            drifting_history(env, drift_at=float(t0) + 2.0, inflate_keys=keys0)
        )
    for label, refresh in (("w/o-MT", False), ("SOMPI-adaptive", True)):
        costs = []
        for t0, drift in zip(starts, drifts):
            ex = AdaptiveExecutor(
                problem,
                drift,
                env.config,
                training_hours=env.config.window_hours,
                refresh_models=refresh,
            )
            costs.append(ex.run(float(t0)).cost)
        costs = np.array(costs)
        raw[f"drift:{label}"] = float(costs.mean() / baseline_plain)
        result.add_row(
            "loose(drift)",
            label,
            float(costs.mean() / baseline_plain),
            float(costs.std() / baseline_plain),
        )

    result.data["normalized"] = raw
    for single in ("All-Unable", "w/o-RP", "w/o-CK"):
        saving = 1 - raw["loose:SOMPI"] / raw[f"loose:{single}"]
        result.notes.append(
            f"SOMPI saves {100 * saving:.0f}% vs {single} under the loose "
            "deadline (paper: >25% vs each single mechanism)"
        )
    result.notes.append(
        "deviation: with our single-shot hybrid semantics, checkpointing "
        "alone (w/o-RP) captures most of SOMPI's gain; the paper's gap vs "
        "w/o-RP relies on its richer replication value under real traces"
    )
    result.notes.append(
        f"dropping update maintenance changes cost by "
        f"{100 * (raw['drift:w/o-MT'] / max(raw['drift:SOMPI-adaptive'], 1e-9) - 1):+.0f}% "
        "on the drifting market (paper: +15%)"
    )
    return result
