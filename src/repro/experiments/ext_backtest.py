"""EXT-BT — time-travel backtest with holdout windows (extension).

The accuracy experiment (Section 5.4.1) spot-checks the model at a
point; this extension evaluates it the way replay-simulation systems
score forecasters: rolling plan/holdout windows over the history, the
planner deciding from each plan window alone, and holdout replays
scoring the decision on prices the planner never saw.  Three tables
come out of one run:

* **EXT-BT-WIN** — per-(window, app, deadline) realized vs predicted
  cost, time and deadline-miss rate over the holdout window.
* **EXT-BT-CAL** — calibration deciles: plan-model out-of-bid failure
  probabilities vs the realized holdout failure frequencies.
* **EXT-BT-TRG** — the re-plan trigger log (windows where realized
  outcomes drifted far enough from the prediction that an adaptive
  system should re-plan).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..backtest import BacktestReport, build_manifest, run_backtest
from ..units import HOURS_PER_DAY
from .common import ExperimentResult
from .env import ExperimentEnv, LOOSE_DEADLINE_FACTOR, TIGHT_DEADLINE_FACTOR


def report_tables(report: BacktestReport) -> list[ExperimentResult]:
    """The three result tables for one backtest report.

    Shared by the experiment runner and the ``backtest`` CLI verb so
    both emit byte-identical rows for the same report.
    """
    manifest = report.manifest
    win = ExperimentResult(
        experiment_id="EXT-BT-WIN",
        title=(
            f"Backtest: realized vs predicted over "
            f"{len(manifest.windows)} holdout window(s)"
        ),
        columns=(
            "window",
            "app",
            "deadline",
            "pred $",
            "real $",
            "pred miss",
            "real miss",
            "spot done",
        ),
    )
    for r in report.results:
        win.add_row(
            r.window.index,
            r.app,
            r.deadline_name,
            r.predicted_cost,
            r.realized_cost,
            r.predicted_miss,
            r.realized_miss,
            r.spot_completion_rate,
        )
    win.data["results"] = report.results
    win.notes.append(
        f"plan {manifest.plan_hours / HOURS_PER_DAY:g} d / holdout "
        f"{manifest.holdout_hours / HOURS_PER_DAY:g} d, "
        f"{manifest.n_samples} replays per cell; planner saw only the "
        f"plan window of each partition"
    )

    cal = ExperimentResult(
        experiment_id="EXT-BT-CAL",
        title="Backtest calibration: predicted failure prob vs realized",
        columns=("decile", "points", "replays", "predicted", "realized"),
    )
    for b in report.calibration_bins():
        cal.add_row(
            f"[{b['bin_lo']:.1f},{b['bin_hi']:.1f})",
            b["n_points"],
            b["n_replays"],
            b["predicted"],
            b["realized"],
        )
    cal.data["points"] = report.calibration_points()
    cal.notes.append(
        "perfect calibration puts realized == predicted in every decile; "
        "empty deciles report zeros"
    )

    trg = ExperimentResult(
        experiment_id="EXT-BT-TRG",
        title="Backtest re-plan triggers (realized drifted off prediction)",
        columns=("window", "app", "deadline", "trigger", "predicted", "realized"),
    )
    for row in report.trigger_rows():
        trg.add_row(
            row["window"],
            row["app"],
            row["deadline"],
            row["trigger"],
            row["predicted"],
            row["realized"],
        )
    trg.notes.append(
        "cost-overrun: realized mean cost > 1.25x prediction; "
        "miss-overrun: realized miss rate > predicted + 0.10"
    )
    return [win, cal, trg]


def run(
    env: ExperimentEnv,
    n_windows: int = 3,
    train_days: float = 14.0,
    test_days: float = 7.0,
    apps: Sequence[str] = ("BT",),
    deadline_factors: Optional[Sequence[Tuple[str, float]]] = None,
    n_samples: int = 150,
) -> list[ExperimentResult]:
    if deadline_factors is None:
        deadline_factors = (
            ("loose", LOOSE_DEADLINE_FACTOR),
            ("tight", TIGHT_DEADLINE_FACTOR),
        )
    manifest = build_manifest(
        env,
        n_windows=n_windows,
        plan_hours=train_days * HOURS_PER_DAY,
        holdout_hours=test_days * HOURS_PER_DAY,
        apps=apps,
        deadline_factors=deadline_factors,
        n_samples=n_samples,
    )
    report = run_backtest(env, manifest)
    tables = report_tables(report)
    for table in tables:
        table.data["manifest"] = manifest.to_dict()
    return tables
