"""Section 5.2 — parameter study: Slack, kappa, T_m.

* **Slack** — the fraction of the deadline reserved for checkpoint and
  recovery overhead when picking the on-demand fallback.  The paper
  finds cost improving up to ~20% slack and flat beyond, with execution
  time rising mildly; 20% becomes the default.
* **kappa** — circle groups actually used.  The paper finds diminishing
  cost returns past kappa=4 while the optimization overhead explodes;
  we report expected cost, bid-combinations evaluated, and wall time.
* **T_m** — the adaptive window.  Too small re-checkpoints and
  re-optimizes constantly; too large reacts slowly to drifting prices.
  We run the adaptive executor on the drifting market of Figure 8.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..cloud.zones import Zone
from ..execution.adaptive import AdaptiveExecutor
from .common import ExperimentResult
from .env import ExperimentEnv
from .fig8_fault_tolerance import drifting_history

SLACKS = (0.05, 0.10, 0.20, 0.30, 0.40)
KAPPAS = (1, 2, 3, 4, 5)
WINDOWS = (4.0, 8.0, 15.0, 24.0, 40.0)


def run_slack(
    env: ExperimentEnv,
    app_name: str = "BT",
    deadline_factor: float = 1.3,
    slacks: Sequence[float] = SLACKS,
    n_samples: int = 150,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="PARAM-SLACK",
        title=f"Slack sweep ({app_name}, deadline {deadline_factor:.2f}x)",
        columns=("slack", "norm cost", "norm time", "miss rate"),
    )
    app = env.app(app_name)
    baseline_cost = env.baseline_cost(app)
    baseline_time = env.baseline_time(app)
    problem = env.problem(app, deadline_factor)
    for slack in slacks:
        plan = env.sompi_plan(problem, env.config.with_(slack=slack))
        mc = env.mc(problem, plan.decision, n_samples, f"slack:{slack}")
        result.add_row(
            slack,
            mc.mean_cost / baseline_cost,
            mc.mean_time / baseline_time,
            mc.deadline_miss_rate,
        )
    result.data["slacks"] = list(slacks)
    result.data["costs"] = [row[1] for row in result.rows]
    return result


def run_kappa(
    env: ExperimentEnv,
    app_name: str = "BT",
    deadline_factor: float = 1.5,
    kappas: Sequence[int] = KAPPAS,
) -> ExperimentResult:
    """kappa sweep on a reduced candidate set (2 types x 3 zones) of the
    *risky* market — replication only has value where failures are likely
    (see Figure 8) — so the exhaustive traversal stays measurable at
    every kappa while the cost curve actually moves."""
    from .fig8_fault_tolerance import risky_env

    reduced = risky_env(
        ExperimentEnv.paper_default(
            seed=env.seed,
            config=env.config.with_(bid_levels=5),
            instance_types=("m1.medium", "cc2.8xlarge"),
            zones=tuple(Zone(z.name) for z in env.zones),
        )
    )
    result = ExperimentResult(
        experiment_id="PARAM-KAPPA",
        title=f"kappa sweep ({app_name}, K={2 * len(env.zones)} risky groups)",
        columns=(
            "kappa",
            "expected cost",
            "mc p95 cost",
            "combos evaluated",
            "wall s",
        ),
    )
    problem = reduced.problem(app_name, deadline_factor)
    for kappa in kappas:
        t0 = time.perf_counter()
        plan = reduced.sompi_plan(problem, reduced.config.with_(kappa=kappa))
        wall = time.perf_counter() - t0
        mc = reduced.mc(problem, plan.decision, 120, f"kappa:{kappa}")
        result.add_row(
            kappa, plan.expectation.cost, mc.p95_cost, plan.combos_evaluated, wall
        )
    costs = [row[1] for row in result.rows]
    combos = [row[3] for row in result.rows]
    result.data["kappas"] = list(kappas)
    result.data["costs"] = costs
    result.data["combos"] = combos
    result.notes.append(
        f"cost improves {100 * (1 - costs[-1] / costs[0]):.1f}% from kappa=1 "
        f"to {kappas[-1]}, while evaluated combinations grow "
        f"{combos[-1] / combos[0]:.0f}x"
    )
    result.notes.append(
        "deviation: with cheap coordinated checkpoints the expectation "
        "model finds single-group execution optimal, so the cost knee sits "
        "at kappa=1-2 rather than the paper's 4; the overhead-growth axis "
        "of the paper's conclusion is reproduced as-is"
    )
    return result


def run_window(
    env: ExperimentEnv,
    app_name: str = "BT",
    deadline_factor: float = 2.0,
    windows: Sequence[float] = WINDOWS,
    n_starts: int = 10,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="PARAM-TM",
        title=f"Optimization window T_m sweep ({app_name}, drifting market)",
        columns=("T_m hours", "norm cost", "norm std", "mean windows"),
    )
    drift = drifting_history(env)
    app = env.app(app_name)
    baseline_cost = env.baseline_cost(app)
    problem = env.problem(app, deadline_factor)
    rng = env.rng.fresh("param:tm")
    hi = min(t.end_time for _k, t in drift.items()) - 2.0 * problem.deadline
    starts = rng.uniform(env.train_end, max(env.train_end + 1.0, hi), n_starts)
    for tm in windows:
        cfg = env.config.with_(window_hours=tm)
        # One executor, all starts: each adaptation step's window replays
        # are batched; bit-identical to a fresh executor per start.
        results = AdaptiveExecutor(problem, drift, cfg).run_many(
            [float(t0) for t0 in starts]
        )
        costs = [res.cost for res in results]
        n_windows = [len(res.windows) for res in results]
        costs = np.array(costs)
        result.add_row(
            tm,
            float(costs.mean() / baseline_cost),
            float(costs.std() / baseline_cost),
            float(np.mean(n_windows)),
        )
    result.data["windows"] = list(windows)
    result.data["costs"] = [row[1] for row in result.rows]
    return result


def run(env: ExperimentEnv, **kwargs) -> list[ExperimentResult]:
    """All three sweeps."""
    return [run_slack(env), run_kappa(env), run_window(env)]
