"""Figure 1 — spot-price variation in time and space.

The paper plots three days of m1.medium and m1.large prices in
us-east-1a and us-east-1b and reads off three observations: (a) huge
temporal swings (<$0.1 to ~$10), (b) long flat stretches next to violent
bursts, (c) the same type behaving completely differently across zones.
This experiment reproduces the summary statistics behind those
observations from the synthetic market.
"""

from __future__ import annotations

from ..market.history import MarketKey
from ..market.presets import build_history
from ..market.stats import TraceSummary
from ..units import days_to_hours
from .common import ExperimentResult
from .env import ExperimentEnv

TYPES = ("m1.medium", "m1.large")
ZONES_SHOWN = ("us-east-1a", "us-east-1b")


def run(env: ExperimentEnv, days: float = 3.0) -> ExperimentResult:
    history = build_history(
        duration_hours=days_to_hours(days),
        seed=env.seed,
        instance_types=TYPES,
        zones=[z for z in env.zones if z.name in ZONES_SHOWN],
    )
    result = ExperimentResult(
        experiment_id="FIG1",
        title=f"Spot price variation over {days:g} days",
        columns=(
            "market",
            "min $/h",
            "max $/h",
            "mean $/h",
            "cv",
            "changes",
            "spike time %",
        ),
    )
    series = {}
    for tname in TYPES:
        for zname in ZONES_SHOWN:
            key = MarketKey(tname, zname)
            trace = history.get(key)
            summary = TraceSummary.of(trace, spike_threshold=4 * trace.mean_price())
            result.add_row(
                str(key),
                summary.min_price,
                summary.max_price,
                summary.mean_price,
                summary.coefficient_of_variation,
                summary.n_changes,
                100.0 * summary.spike_fraction,
            )
            series[str(key)] = trace.resample(0.25)
            result.data[str(key)] = summary
    result.data["series"] = series

    spiky = result.data["m1.medium@us-east-1a"]
    calm = result.data["m1.medium@us-east-1b"]
    result.notes.append(
        "temporal variation: m1.medium@us-east-1a spans "
        f"{spiky.min_price:.3f}-{spiky.max_price:.2f} $/h"
    )
    result.notes.append(
        "spatial variation: same type in us-east-1b stays within "
        f"{calm.min_price:.3f}-{calm.max_price:.3f} $/h"
    )
    return result
