"""Section 4.2.2 — optimization-space reduction.

The paper's worked example: 100 candidate bids and 10 candidate
checkpoint intervals per group, 4 circle groups.

* naive joint search: ``(100 * 10)^4 = 10^12`` evaluations,
* after dimension reduction (``F = phi(P)``): ``100^4 = 10^8``,
* after the logarithmic bid search: ``(log2 100)^4 ~ 2400``.

This experiment recomputes the counts, then *measures* the practical
claim on a real two-group instance: the logarithmic candidate set finds
a solution of (near-)equal quality to a dense uniform bid grid while
evaluating orders of magnitude fewer combinations.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..core.bid_search import log_bid_candidates, uniform_bid_candidates
from ..core.cost_model import GroupOutcome, evaluate
from ..core.interval import optimal_interval
from ..core.ondemand_select import select_ondemand_relaxed
from .common import ExperimentResult
from .env import ExperimentEnv, LOOSE_DEADLINE_FACTOR


def analytic_counts(
    n_bids: int = 100, n_intervals: int = 10, kappa: int = 4
) -> dict[str, float]:
    log_bids = math.ceil(math.log2(n_bids))
    return {
        "naive": float((n_bids * n_intervals) ** kappa),
        "dimension_reduced": float(n_bids**kappa),
        "log_search": float(log_bids**kappa),
    }


def run(env: ExperimentEnv, app_name: str = "BT") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="RED",
        title="Optimization-space reduction (Section 4.2.2)",
        columns=("method", "evaluations", "best cost $", "wall s"),
    )
    counts = analytic_counts()
    result.notes.append(
        "paper example (100 bids x 10 intervals, 4 groups): "
        f"naive {counts['naive']:.0e} -> phi(P) {counts['dimension_reduced']:.0e} "
        f"-> log search {counts['log_search']:.0f}"
    )
    result.data["analytic"] = counts

    # Measured comparison on a 2-group instance of the real problem.
    problem = env.problem(app_name, LOOSE_DEADLINE_FACTOR)
    models = env.failure_models(problem)
    _, ondemand = select_ondemand_relaxed(
        problem.ondemand_options, problem.deadline, env.config.slack
    )
    # Two deadline-feasible groups, cheapest per hour first (a group whose
    # failure-free time already exceeds the deadline can never win).
    feasible = [
        i
        for i in range(problem.n_groups)
        if problem.groups[i].exec_time <= problem.deadline * 0.95
    ]
    indices = sorted(
        feasible, key=lambda i: problem.groups[i].itype.ondemand_price
    )[:2]

    def search(candidate_fn) -> tuple[float, int, float]:
        t0 = time.perf_counter()
        per_group = []
        for i in indices:
            spec = problem.groups[i]
            fm = models[spec.key]
            bids = candidate_fn(fm)
            outcomes = []
            for bid in bids:
                interval = optimal_interval(spec, float(bid), fm, ondemand)
                outcomes.append(GroupOutcome.build(spec, float(bid), interval, fm))
            per_group.append(outcomes)
        best = np.inf
        evals = 0
        for oa in per_group[0]:
            for ob in per_group[1]:
                exp = evaluate([oa, ob], ondemand)
                evals += 1
                if exp.meets_deadline(problem.deadline):
                    best = min(best, exp.cost)
        return best, evals, time.perf_counter() - t0

    log_best, log_evals, log_wall = search(
        lambda fm: log_bid_candidates(
            fm.max_price(), env.config.bid_levels, floor_price=fm.min_price()
        )
    )
    uni_best, uni_evals, uni_wall = search(
        lambda fm: uniform_bid_candidates(fm.max_price(), 100)
    )
    result.add_row("uniform grid (100 bids)", uni_evals, uni_best, uni_wall)
    result.add_row(
        f"log search (levels={env.config.bid_levels})", log_evals, log_best, log_wall
    )
    result.data["measured"] = {
        "log": (log_best, log_evals),
        "uniform": (uni_best, uni_evals),
    }
    quality = log_best / uni_best if uni_best > 0 else float("nan")
    result.notes.append(
        f"log search evaluates {uni_evals / log_evals:.0f}x fewer combinations "
        f"at {100 * (quality - 1):.1f}% cost penalty"
    )
    return result
