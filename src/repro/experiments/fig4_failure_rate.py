"""Figure 4 — failure-rate function and expected spot price vs bid.

The paper plots, for m1.small and c3.xlarge in us-east-1a, how the
failure probability ``f(P, t)`` falls and the expected paid price
``S(P)`` rises as the bid increases — both steep near the calm price
band and flat elsewhere, which is what justifies the logarithmic bid
search.
"""

from __future__ import annotations

import numpy as np

from ..core.bid_search import log_bid_candidates
from ..market.failure import FailureModel
from ..market.history import MarketKey
from .common import ExperimentResult
from .env import ExperimentEnv

MARKETS = (
    MarketKey("m1.small", "us-east-1a"),
    MarketKey("c3.xlarge", "us-east-1a"),
)


def run(
    env: ExperimentEnv, horizon_steps: int = 12, levels: int = 8
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="FIG4",
        title="Failure rate f(P, t<=horizon) and expected price S(P) vs bid",
        columns=(
            "market",
            "bid $/h",
            "launch prob",
            f"P(fail<{horizon_steps}h)",
            "S(P) $/h",
            "mttf h",
        ),
    )
    curves = {}
    training = env.training_history()
    for key in MARKETS:
        fm = FailureModel(training.get(key), step_hours=env.config.time_step_hours)
        bids = log_bid_candidates(fm.max_price(), levels, floor_price=fm.min_price())
        fail_probs, exp_prices = [], []
        for bid in bids:
            pmf = fm.failure_pmf(float(bid), horizon_steps)
            p_fail = float(pmf[:-1].sum())
            s = fm.expected_price(float(bid))
            fail_probs.append(p_fail)
            exp_prices.append(s)
            result.add_row(
                str(key),
                float(bid),
                fm.launch_probability(float(bid)),
                p_fail,
                s,
                min(fm.mttf_hours(float(bid)), 1e6),
            )
        curves[str(key)] = {
            "bids": bids,
            "fail": np.array(fail_probs),
            "price": np.array(exp_prices),
        }
    result.data["curves"] = curves
    result.notes.append(
        "f decreases and S increases with the bid; both move fastest near "
        "the calm price band (the basis of the logarithmic search)"
    )
    return result
