"""EXT-SEM — single-shot vs persistent spot semantics (extension).

The analytic cost model treats a reclaimed circle group as gone for good
(the hybrid falls back to on-demand); real spot *requests* persist and
relaunch when the price allows.  This experiment replays the same SOMPI
decisions under both semantics and measures what the modelling choice is
worth: persistent requests finish more work on cheap spot (lower cost)
at the price of waiting out the expensive periods (longer makespans and
more deadline misses).
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult
from .env import (
    ExperimentEnv,
    LOOSE_DEADLINE_FACTOR,
    TIGHT_DEADLINE_FACTOR,
)


def run(
    env: ExperimentEnv,
    apps: Sequence[str] = ("BT", "FT"),
    n_samples: int = 150,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="EXT-SEM",
        title="Spot semantics: single-shot (model) vs persistent requests",
        columns=(
            "app",
            "deadline",
            "semantics",
            "norm cost",
            "norm time",
            "miss rate",
        ),
    )
    rows = {}
    for name in apps:
        app = env.app(name)
        baseline_cost = env.baseline_cost(app)
        baseline_time = env.baseline_time(app)
        for dl_name, factor in (
            ("loose", LOOSE_DEADLINE_FACTOR),
            ("tight", TIGHT_DEADLINE_FACTOR),
        ):
            problem = env.problem(app, factor)
            plan = env.sompi_plan(problem)
            for semantics in ("single-shot", "persistent"):
                mc = env.mc(
                    problem,
                    plan.decision,
                    n_samples,
                    f"sem:{name}:{dl_name}:{semantics}",
                    semantics=semantics,
                )
                rows[f"{name}:{dl_name}:{semantics}"] = {
                    "cost": mc.mean_cost / baseline_cost,
                    "time": mc.mean_time / baseline_time,
                    "miss": mc.deadline_miss_rate,
                }
                result.add_row(
                    name,
                    dl_name,
                    semantics,
                    mc.mean_cost / baseline_cost,
                    mc.mean_time / baseline_time,
                    mc.deadline_miss_rate,
                )
    result.data["rows"] = rows
    return result
