"""Run every reproduced experiment and print the paper's tables.

Usage::

    python -m repro.experiments.runner                 # everything
    python -m repro.experiments.runner --quick         # reduced sampling
    python -m repro.experiments.runner --only fig5 tab2
    python -m repro.experiments.runner --seed 11
    python -m repro.experiments.runner --jobs 4        # experiments in parallel

``--jobs N`` runs whole experiments in worker processes.  Each worker
rebuilds the experiment environment from the seed, and every random
stream is derived statelessly from (seed, stream name), so the printed
tables are byte-identical to a serial run — only the ordering of the
work changes, never the numbers.

``--audit`` turns on :mod:`repro.obs` audit mode for the whole sweep:
every replay and adaptive result is reconciled against its cost ledger
(``cost == ledger.total()`` to 1e-9) and the run aborts on the first
violation.  ``--metrics PATH`` writes the observability counters and
timers as a JSON sidecar (never into the results JSON) and prints the
human-readable metrics block; with ``--jobs`` the workers' registries
are merged into the parent's before reporting.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Iterable, List

from .. import obs

from . import (
    accuracy,
    ext_backtest,
    ext_correlation,
    ext_semantics,
    fig1_price_variation,
    fig2_price_histogram,
    fig4_failure_rate,
    fig5_cost_comparison,
    fig6_heuristics,
    fig7_deadline_sweep,
    fig8_fault_tolerance,
    param_study,
    reduction,
    table2_exec_time,
)
from .common import ExperimentResult
from .env import ExperimentEnv


def _all_experiments(env: ExperimentEnv, n_samples: int) -> dict:
    return {
        "fig1": lambda: [fig1_price_variation.run(env)],
        "fig2": lambda: [fig2_price_histogram.run(env)],
        "fig4": lambda: [fig4_failure_rate.run(env)],
        "fig5": lambda: [fig5_cost_comparison.run(env, n_samples=n_samples)],
        "tab2": lambda: [table2_exec_time.run(env, n_samples=n_samples)],
        "fig6": lambda: [fig6_heuristics.run(env, n_samples=n_samples)],
        "fig7": lambda: [fig7_deadline_sweep.run(env)],
        "fig8": lambda: [fig8_fault_tolerance.run(env, n_samples=n_samples)],
        "params": lambda: param_study.run(env),
        "accuracy": lambda: accuracy.run(env),
        "reduction": lambda: [reduction.run(env)],
        # Extensions beyond the paper (see EXPERIMENTS.md).
        "ext-sem": lambda: [ext_semantics.run(env, n_samples=n_samples)],
        "ext-corr": lambda: [ext_correlation.run(env, n_samples=n_samples)],
        "ext-backtest": lambda: ext_backtest.run(env, n_samples=n_samples),
    }


def _run_one(name: str, seed: int, n_samples: int, audit: bool = False) -> tuple:
    """Run one experiment in a fresh environment (worker entry point).

    Every experiment draws randomness only through stateless
    ``rng.fresh(stream)`` derivations from the seed, so a rebuilt
    environment produces exactly the tables the shared one would.

    Returns ``(results, wall_seconds, metrics_snapshot)``.  The worker's
    metrics registry is reset first so the snapshot covers exactly this
    experiment even when the pool reuses the process.
    """
    if audit:
        obs.set_audit(True)
    obs.reset_metrics()
    env = ExperimentEnv.paper_default(seed=seed)
    t0 = time.perf_counter()
    results = _all_experiments(env, n_samples)[name]()
    wall = time.perf_counter() - t0
    return results, wall, obs.get_metrics().snapshot()


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--samples", type=int, default=150, help="Monte-Carlo replays per point"
    )
    parser.add_argument(
        "--quick", action="store_true", help="40 replays per point (smoke run)"
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiment ids (fig1 fig2 fig4 fig5 tab2 fig6 fig7 "
        "fig8 params accuracy reduction ext-sem ext-corr ext-backtest)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write all result rows to a JSON file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run experiments in N worker processes (same output as serial)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="assert cost-ledger conservation on every result (repro.obs)",
    )
    parser.add_argument(
        "--metrics",
        type=str,
        default=None,
        metavar="PATH",
        help="write observability counters/timers to a JSON sidecar",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.audit:
        # Both switches: set_audit covers this process, the environment
        # variable covers worker processes however they are started.
        os.environ["REPRO_AUDIT"] = "1"
        obs.set_audit(True)

    n_samples = 40 if args.quick else args.samples
    env = ExperimentEnv.paper_default(seed=args.seed)
    experiments = _all_experiments(env, n_samples)
    selected = args.only or list(experiments)
    unknown = [name for name in selected if name not in experiments]
    if unknown:
        parser.error(f"unknown experiments {unknown}; known: {list(experiments)}")

    all_results: List[ExperimentResult] = []

    def emit(name: str, results: List[ExperimentResult], wall: float) -> None:
        for res in results:
            print(res.format_table())
            print()
            all_results.append(res)
        print(f"[{name} completed in {wall:.1f}s]")
        print()

    if args.jobs is not None and args.jobs > 1 and len(selected) > 1:
        from ..execution.pool import WorkerPool

        # The persistent shared pool, not a throwaway executor: warm
        # workers carry their table caches from experiment to experiment
        # (and from any earlier parallel work in this process).
        pool = WorkerPool.shared(min(args.jobs, len(selected)))
        futures = {
            name: pool.submit(_run_one, name, args.seed, n_samples, args.audit)
            for name in selected
        }
        # Gather in selection order for a stable, serial-identical log.
        for name in selected:
            results, wall, snap = futures[name].result()
            obs.get_metrics().merge_snapshot(snap)
            emit(name, results, wall)
    else:
        for name in selected:
            t0 = time.perf_counter()
            results = experiments[name]()
            emit(name, results, time.perf_counter() - t0)
    if args.json:
        _write_json(all_results, args.seed, n_samples, args.json)
        print(f"wrote JSON results to {args.json}")
    print(f"ran {len(all_results)} experiment tables with seed={args.seed}")
    if args.audit:
        print("audit: every result reconciled against its cost ledger")
    if args.metrics or args.audit:
        print()
        print(obs.get_metrics().format_block())
    if args.metrics:
        _write_metrics(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    return 0


def _write_metrics(path: str) -> None:
    """Dump the merged metrics registry as a JSON sidecar.

    Kept out of the results JSON on purpose: wall-clock timers vary run
    to run, and ``experiments_results.json`` must stay bit-identical
    for the same seed and sampling parameters.
    """
    import json

    with open(path, "w") as fh:
        json.dump(obs.get_metrics().snapshot(), fh, indent=1)


def _write_json(
    results: List[ExperimentResult], seed: int, n_samples: int, path: str
) -> None:
    """Dump every table's rows (not the raw data payloads) as JSON."""
    import json

    doc = {
        "format": "repro.experiment-results.v1",
        "seed": seed,
        "n_samples": n_samples,
        "tables": [
            {
                "experiment_id": res.experiment_id,
                "title": res.title,
                "columns": list(res.columns),
                "rows": [list(row) for row in res.rows],
                "notes": list(res.notes),
            }
            for res in results
        ],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, default=str)


if __name__ == "__main__":
    sys.exit(main())
