"""Reproduction of every table and figure in the paper's evaluation.

One module per artifact (see DESIGN.md section 4 for the index):

========  ==========================================================
module    paper artifact
========  ==========================================================
fig1      Figure 1 — spot-price temporal/spatial variation
fig2      Figure 2 — stable daily price distributions
fig4      Figure 4 — failure-rate function and expected spot price
fig5      Figure 5 — cost vs On-demand / Marathe / Marathe-Opt
table2    Table 2 — normalised execution times
fig6      Figure 6 — cost vs Spot-Inf / Spot-Avg heuristics
fig7      Figure 7 — cost as the deadline loosens (BT, FT, BTIO)
fig8      Figure 8 — individual fault-tolerance mechanisms
params    Section 5.2 — Slack / kappa / T_m parameter study
accuracy  Section 5.4.1 — failure-rate & cost-model accuracy
reduction Section 4.2.2 — optimization-space reduction counts
========  ==========================================================

Each module exposes a ``run(env, ...)`` returning a typed result with a
``format_table()`` method; ``runner.main()`` executes everything and
prints the rows the paper reports.
"""

from .env import ExperimentEnv

__all__ = ["ExperimentEnv"]
