"""Figure 2 — the daily spot-price distribution is stable.

Four consecutive days of m1.medium/us-east-1a prices, histogrammed: the
paper's justification for learning the failure-rate function from recent
history.  We report the histograms and all pairwise day-over-day
total-variation distances (0 = identical distributions).
"""

from __future__ import annotations

import numpy as np

from ..market.history import MarketKey
from ..market.stats import daily_slices, distribution_stability, time_weighted_histogram
from .common import ExperimentResult
from .env import ExperimentEnv

MARKET = MarketKey("m1.medium", "us-east-1a")


def run(env: ExperimentEnv, n_days: int = 4, n_bins: int = 12) -> ExperimentResult:
    trace = env.history.get(MARKET)
    days = daily_slices(trace, n_days)
    lo = min(d.min_price() for d in days)
    # Bin the calm band (where the mass is); spikes land in the top bin
    # via clipping, exactly like the paper's truncated histogram axis.
    hi = max(d.quantile(0.995) for d in days) * 1.25 + 1e-9
    edges = np.linspace(lo, hi, n_bins + 1)
    hists = [time_weighted_histogram(d, edges) for d in days]
    tv = distribution_stability(trace, n_days, n_bins=n_bins)

    result = ExperimentResult(
        experiment_id="FIG2",
        title=f"Daily price histograms, {MARKET} ({n_days} days)",
        columns=("day", *[f"bin{j}" for j in range(n_bins)]),
    )
    for i, hist in enumerate(hists):
        result.add_row(f"day {i + 1}", *[float(h) for h in hist])
    off_diag = tv[np.triu_indices(n_days, 1)]
    result.notes.append(
        f"pairwise total-variation distances: max {off_diag.max():.3f}, "
        f"mean {off_diag.mean():.3f} (small = stable distribution)"
    )
    result.data["histograms"] = hists
    result.data["bin_edges"] = edges
    result.data["tv_matrix"] = tv
    return result
