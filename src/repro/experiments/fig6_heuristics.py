"""Figure 6 — SOMPI vs naive spot heuristics.

Per application category (computation / communication / IO), the
average normalised cost of On-demand, Spot-Inf, Spot-Avg and SOMPI under
both deadlines, plus the run-to-run standard deviation.  Paper shape:
both naive spot heuristics already beat On-demand; SOMPI beats both; and
Spot-Inf's cost *variance* dwarfs SOMPI's (it eats every price spike).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..apps.base import WorkloadCategory
from .common import ExperimentResult, baseline_decisions, mc_by_method
from .env import (
    ExperimentEnv,
    LOOSE_DEADLINE_FACTOR,
    TIGHT_DEADLINE_FACTOR,
)

METHODS = ("On-demand", "Spot-Inf", "Spot-Avg")
CATEGORY_APPS = {
    "Computation": ("BT", "SP", "LU"),
    "Communication": ("FT", "IS"),
    "IO": ("BTIO",),
}


def run(env: ExperimentEnv, n_samples: int = 150) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="FIG6",
        title="Normalised cost vs naive spot heuristics (category averages)",
        columns=("category", "deadline", *METHODS, "SOMPI", "std(Spot-Inf)", "std(SOMPI)"),
    )
    raw: Dict[str, Dict[str, float]] = {}
    for category, apps in CATEGORY_APPS.items():
        for dl_name, factor in (
            ("loose", LOOSE_DEADLINE_FACTOR),
            ("tight", TIGHT_DEADLINE_FACTOR),
        ):
            norm = {m: 0.0 for m in (*METHODS, "SOMPI")}
            std_inf = std_sompi = 0.0
            for name in apps:
                app = env.app(name)
                baseline_cost = env.baseline_cost(app)
                problem = env.problem(app, factor)
                decisions = baseline_decisions(env, problem, METHODS)
                decisions["SOMPI"] = env.sompi_plan(problem).decision
                summaries = mc_by_method(
                    env, problem, decisions, n_samples, f"fig6:{name}:{dl_name}"
                )
                for m in norm:
                    norm[m] += summaries[m].mean_cost / baseline_cost / len(apps)
                std_inf += summaries["Spot-Inf"].std_cost / baseline_cost / len(apps)
                std_sompi += summaries["SOMPI"].std_cost / baseline_cost / len(apps)
            raw[f"{category}:{dl_name}"] = dict(norm)
            result.add_row(
                category,
                dl_name,
                *[norm[m] for m in METHODS],
                norm["SOMPI"],
                std_inf,
                std_sompi,
            )
    result.data["normalized"] = raw
    cells = list(raw.values())
    for other in ("Spot-Inf", "Spot-Avg"):
        saving = sum(1.0 - c["SOMPI"] / c[other] for c in cells) / len(cells)
        result.notes.append(f"SOMPI saves {100 * saving:.0f}% on average vs {other}")
    return result
