"""The canonical experiment environment.

Binds together everything one paper experiment needs: the synthetic
multi-market spot history, the application models, the per-instance-type
execution-time and checkpoint estimates, problem construction with
paper-style deadlines (tight = 1.05x Baseline Time, loose = 1.5x), and
evaluation helpers (cost-model expectations and Monte-Carlo replay).

The history is split into a *training* prefix — the only part failure
models may learn from — and an *evaluation* suffix where Monte-Carlo
replays start, mirroring the paper's method of deciding from recent
history and then living through the future.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..apps import MPIApplication, make_app
from ..cloud.instance_types import PAPER_TYPES, get_instance_type, instances_needed
from ..cloud.s3 import S3Store
from ..cloud.zones import DEFAULT_ZONES, Zone
from ..config import DEFAULT_CONFIG, SompiConfig
from ..core.optimizer import SompiOptimizer, SompiPlan, build_failure_models
from ..core.problem import CircleGroupSpec, OnDemandOption, Problem, Decision
from ..core.cost_model import Expectation, GroupOutcome, evaluate
from ..errors import ConfigurationError
from ..execution.montecarlo import evaluate_decision_mc
from ..execution.results import MonteCarloSummary
from ..market.failure import FailureModel
from ..market.history import MarketKey, SpotPriceHistory
from ..market.presets import build_history
from ..mpi.timing import estimate_checkpoint, estimate_execution_hours
from ..sim.rng import RngRegistry

#: Paper deadline settings relative to Baseline Time (Section 5.1).
TIGHT_DEADLINE_FACTOR = 1.05
LOOSE_DEADLINE_FACTOR = 1.50


@dataclass
class ExperimentEnv:
    """Shared fixture for all experiments."""

    history: SpotPriceHistory
    train_end: float  # failure models learn from [0, train_end)
    seed: int
    config: SompiConfig = DEFAULT_CONFIG
    instance_types: Sequence[str] = PAPER_TYPES
    zones: Sequence[Zone] = DEFAULT_ZONES
    storage: S3Store = field(default_factory=S3Store)

    def __post_init__(self) -> None:
        self.rng = RngRegistry(self.seed)
        self._model_cache: dict[tuple, Mapping[MarketKey, FailureModel]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def paper_default(
        cls,
        seed: int = 7,
        history_days: float = 35.0,
        train_days: float = 14.0,
        config: Optional[SompiConfig] = None,
        instance_types: Sequence[str] = PAPER_TYPES,
        zones: Sequence[Zone] = DEFAULT_ZONES,
    ) -> "ExperimentEnv":
        """The configuration every experiment starts from.

        35 days of synthetic history per (type, zone); the first 14 days
        train the failure models, Monte-Carlo replays start in the rest.
        ``kappa`` defaults to 3 (rather than the paper's 4) to keep the
        exhaustive subset search snappy over 12 candidate groups; the
        parameter study sweeps kappa explicitly.
        """
        if train_days >= history_days:
            raise ConfigurationError("train_days must be < history_days")
        history = build_history(
            duration_hours=history_days * 24.0,
            seed=seed,
            instance_types=instance_types,
            zones=zones,
        )
        return cls(
            history=history,
            train_end=train_days * 24.0,
            seed=seed,
            config=config or DEFAULT_CONFIG.with_(kappa=3),
            instance_types=instance_types,
            zones=zones,
        )

    # ------------------------------------------------------------------
    # Application-derived quantities
    # ------------------------------------------------------------------
    def app(self, name: str, **kwargs) -> MPIApplication:
        return make_app(name, **kwargs)

    def exec_time(self, app: MPIApplication, type_name: str) -> float:
        """``T`` of the extended workload on a fleet of ``type_name``."""
        return estimate_execution_hours(app.profile(), get_instance_type(type_name))

    def baseline_time(self, app: MPIApplication) -> float:
        """Baseline Time: the fastest on-demand execution (Section 5.1)."""
        return min(self.exec_time(app, t) for t in self.instance_types)

    def baseline_cost(self, app: MPIApplication) -> float:
        """Baseline Cost: the bill of the best-performance on-demand run."""
        best_t, best_time = None, np.inf
        for t in self.instance_types:
            T = self.exec_time(app, t)
            if T < best_time:
                best_t, best_time = t, T
        itype = get_instance_type(best_t)
        m = instances_needed(itype, app.n_processes)
        return best_time * itype.ondemand_price * m

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def problem(
        self,
        app: MPIApplication | str,
        deadline_factor: float = LOOSE_DEADLINE_FACTOR,
        deadline_hours: Optional[float] = None,
    ) -> Problem:
        """Build the optimization problem for one application.

        ``deadline_factor`` multiplies Baseline Time (tight = 1.05,
        loose = 1.5); ``deadline_hours`` overrides it outright.
        """
        if isinstance(app, str):
            app = self.app(app)
        profile = app.profile()
        groups = []
        options = []
        for tname in self.instance_types:
            itype = get_instance_type(tname)
            T = estimate_execution_hours(profile, itype)
            ckpt = estimate_checkpoint(profile, itype, self.storage)
            m = instances_needed(itype, app.n_processes)
            options.append(OnDemandOption(itype, m, T))
            for zone in self.zones:
                key = MarketKey(tname, zone.name)
                if key not in self.history:
                    continue
                groups.append(
                    CircleGroupSpec(
                        key=key,
                        itype=itype,
                        n_instances=m,
                        exec_time=T,
                        checkpoint_overhead=ckpt.checkpoint_hours,
                        recovery_overhead=ckpt.recovery_hours,
                        image_bytes=ckpt.image_bytes,
                    )
                )
        if deadline_hours is None:
            deadline_hours = deadline_factor * min(o.exec_time for o in options)
        return Problem(
            groups=tuple(groups),
            ondemand_options=tuple(options),
            deadline=deadline_hours,
        )

    # ------------------------------------------------------------------
    # Models, plans, evaluation
    # ------------------------------------------------------------------
    def training_history(self) -> SpotPriceHistory:
        """The history prefix failure models are allowed to see."""
        windowed = SpotPriceHistory()
        for key, trace in self.history.items():
            windowed.add(key, trace.slice(trace.start_time, self.train_end))
        return windowed

    def failure_models(
        self, problem: Problem, step_hours: Optional[float] = None
    ) -> Mapping[MarketKey, FailureModel]:
        step = step_hours or self.config.time_step_hours
        cache_key = (tuple(g.key for g in problem.groups), step)
        models = self._model_cache.get(cache_key)
        if models is None:
            models = build_failure_models(
                problem, self.training_history(), step_hours=step
            )
            self._model_cache[cache_key] = models
        return models

    def sompi_plan(
        self, problem: Problem, config: Optional[SompiConfig] = None
    ) -> SompiPlan:
        config = config or self.config
        models = self.failure_models(problem, config.time_step_hours)
        return SompiOptimizer(problem, models, config).plan()

    def expectation(self, problem: Problem, decision: Decision) -> Expectation:
        """Cost-model expectation of an arbitrary decision (baselines)."""
        models = self.failure_models(problem)
        ondemand = problem.ondemand_options[decision.ondemand_index]
        if not decision.groups:
            from ..core.optimizer import _ondemand_only_expectation

            return _ondemand_only_expectation(ondemand)
        outcomes = [
            GroupOutcome.build(
                problem.groups[gd.group_index],
                gd.bid,
                gd.interval,
                models[problem.groups[gd.group_index].key],
                self.config.time_step_hours,
            )
            for gd in decision.groups
        ]
        return evaluate(outcomes, ondemand)

    def mc(
        self,
        problem: Problem,
        decision: Decision,
        n_samples: int = 300,
        stream: str = "mc",
        semantics: str = "single-shot",
    ) -> MonteCarloSummary:
        """Monte-Carlo replay over the evaluation part of the history."""
        return evaluate_decision_mc(
            problem,
            decision,
            self.history,
            n_samples,
            self.rng.fresh(stream),
            t_min=self.train_end,
            semantics=semantics,
        )
