"""Shared machinery for experiment modules.

Every experiment returns an :class:`ExperimentResult`: a titled table
(the rows the paper reports) plus free-form notes and a ``data`` payload
with the raw numbers, so benchmarks can assert on shapes without
re-parsing formatted text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..baselines import (
    marathe_decision,
    marathe_opt_decision,
    ondemand_decision,
    spot_avg_decision,
    spot_inf_decision,
)
from ..core.problem import Decision, Problem
from ..execution.results import MonteCarloSummary
from .env import ExperimentEnv


@dataclass
class ExperimentResult:
    """A reproduced table/figure."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} values, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(values)

    def format_table(self) -> str:
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        table = [list(map(fmt, self.columns))] + [
            list(map(fmt, row)) for row in self.rows
        ]
        widths = [max(len(r[c]) for r in table) for c in range(len(self.columns))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for i, row in enumerate(table):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


#: The strategies compared in Figures 5 and 6, by label.
def baseline_decisions(
    env: ExperimentEnv, problem: Problem, which: Sequence[str]
) -> Dict[str, Decision]:
    """Build the requested baseline decisions for one problem."""
    models = env.failure_models(problem)
    builders = {
        "On-demand": lambda: ondemand_decision(problem),
        "Spot-Inf": lambda: spot_inf_decision(problem, models),
        "Spot-Avg": lambda: spot_avg_decision(problem, models),
        "Marathe": lambda: marathe_decision(problem, models),
        "Marathe-Opt": lambda: marathe_opt_decision(problem, models),
    }
    return {name: builders[name]() for name in which}


def mc_by_method(
    env: ExperimentEnv,
    problem: Problem,
    decisions: Dict[str, Decision],
    n_samples: int,
    stream_prefix: str,
) -> Dict[str, MonteCarloSummary]:
    """Monte-Carlo-evaluate several strategies on the same problem."""
    return {
        name: env.mc(problem, decision, n_samples, f"{stream_prefix}:{name}")
        for name, decision in decisions.items()
    }
