"""EXT-CORR — replication value vs cross-market correlation (extension).

The paper's replication math assumes independent markets (joint failure
probability = product of marginals).  This experiment stresses that
assumption: region-wide demand surges hit every market with probability
``rho``, and the replicated w/o-CK plan is compared against the
single-group w/o-RP plan by Monte-Carlo replay.

Measured shape (which refines the naive expectation that correlation
kills replication): surges floor each market's price at a multiple of
*its own* base, so replicas of **different instance types with different
bids** are not comonotone even under rho = 1 — diversity, not just
spatial independence, is what the replicated plan buys.  As rho rises
the single-group plan collapses to the on-demand fallback while the
replicated plan keeps completing on spot; the optimizer's freedom to
mix types (SOMPI's first advantage over Marathe, Section 5.3.1) is
precisely what survives correlated markets.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines.ablations import ablation_plan
from ..core.optimizer import build_failure_models
from ..market.correlated import build_correlated_history
from ..market.history import SpotPriceHistory
from .common import ExperimentResult
from .env import ExperimentEnv, LOOSE_DEADLINE_FACTOR

CORRELATIONS = (0.0, 0.5, 1.0)


def _env_with_history(env: ExperimentEnv, history: SpotPriceHistory) -> ExperimentEnv:
    return ExperimentEnv(
        history=history,
        train_end=env.train_end,
        seed=env.seed,
        config=env.config,
        instance_types=env.instance_types,
        zones=env.zones,
    )


def run(
    env: ExperimentEnv,
    app_name: str = "BT",
    correlations: Sequence[float] = CORRELATIONS,
    n_samples: int = 150,
    surge_rate_per_hour: float = 0.03,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="EXT-CORR",
        title="Replication value vs cross-market correlation",
        columns=(
            "rho",
            "single cost",
            "replicated cost",
            "single spot-done",
            "replicated spot-done",
        ),
    )
    duration = max(t.end_time for _k, t in env.history.items())
    rows = {}
    for rho in correlations:
        history = build_correlated_history(
            duration_hours=duration,
            seed=env.seed,
            correlation=rho,
            instance_types=env.instance_types,
            zones=env.zones,
            surge_rate_per_hour=surge_rate_per_hour,
        )
        cenv = _env_with_history(env, history)
        app = cenv.app(app_name)
        problem = cenv.problem(app, LOOSE_DEADLINE_FACTOR)
        models = build_failure_models(problem, cenv.training_history())
        single = ablation_plan("wo-rp", problem, models, cenv.config)
        replicated = ablation_plan("wo-ck", problem, models, cenv.config)
        mc_single = cenv.mc(
            problem, single.decision, n_samples, f"corr:{rho}:single"
        )
        mc_repl = cenv.mc(
            problem, replicated.decision, n_samples, f"corr:{rho}:repl"
        )
        baseline = cenv.baseline_cost(app)
        rows[rho] = {
            "single": mc_single.mean_cost / baseline,
            "replicated": mc_repl.mean_cost / baseline,
            "single_done": mc_single.spot_completion_rate,
            "replicated_done": mc_repl.spot_completion_rate,
        }
        result.add_row(
            rho,
            rows[rho]["single"],
            rows[rho]["replicated"],
            rows[rho]["single_done"],
            rows[rho]["replicated_done"],
        )
    result.data["rows"] = rows
    lo, hi = rows[correlations[0]], rows[correlations[-1]]
    result.notes.append(
        "single-group cost degrades "
        f"{hi['single'] / max(lo['single'], 1e-9):.1f}x from rho="
        f"{correlations[0]:g} to rho={correlations[-1]:g}, while the "
        f"type-diverse replicated plan degrades only "
        f"{hi['replicated'] / max(lo['replicated'], 1e-9):.1f}x and keeps "
        f"completing on spot ({hi['replicated_done']:.0%} vs "
        f"{hi['single_done']:.0%})"
    )
    return result
