"""Figure 5 — monetary cost vs the state of the art.

For every application (BT/SP/LU compute, FT/IS communication, BTIO IO,
plus LAMMPS at 32 and 128 processes) and both deadlines (tight = 1.05x
Baseline Time, loose = 1.5x), evaluate On-demand, Marathe, Marathe-Opt
and SOMPI by Monte-Carlo trace replay and report costs normalised to
Baseline Cost (the best-performance on-demand run).

Paper shape to reproduce: SOMPI cheapest everywhere; Marathe-Opt beats
Marathe under loose deadlines on compute kernels but ties it under tight
ones; Marathe costs *more* than Baseline on BTIO.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .common import ExperimentResult, baseline_decisions, mc_by_method
from .env import (
    ExperimentEnv,
    LOOSE_DEADLINE_FACTOR,
    TIGHT_DEADLINE_FACTOR,
)

METHODS = ("On-demand", "Marathe", "Marathe-Opt")
DEFAULT_APPS = ("BT", "SP", "LU", "FT", "IS", "BTIO")


def _app_instances(env: ExperimentEnv, apps: Sequence[str], lammps_procs):
    out = []
    for name in apps:
        out.append((name, env.app(name)))
    for p in lammps_procs:
        out.append((f"LAMMPS-p{p}", env.app("LAMMPS", n_processes=p)))
    return out


def run(
    env: ExperimentEnv,
    apps: Sequence[str] = DEFAULT_APPS,
    lammps_procs: Sequence[int] = (32, 128),
    n_samples: int = 150,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="FIG5",
        title="Normalised monetary cost vs state of the art",
        columns=("app", "deadline", *METHODS, "SOMPI"),
    )
    raw: Dict[str, Dict[str, float]] = {}
    for label, app in _app_instances(env, apps, lammps_procs):
        baseline_cost = env.baseline_cost(app)
        for dl_name, factor in (
            ("loose", LOOSE_DEADLINE_FACTOR),
            ("tight", TIGHT_DEADLINE_FACTOR),
        ):
            problem = env.problem(app, factor)
            decisions = baseline_decisions(env, problem, METHODS)
            plan = env.sompi_plan(problem)
            decisions["SOMPI"] = plan.decision
            summaries = mc_by_method(
                env, problem, decisions, n_samples, f"fig5:{label}:{dl_name}"
            )
            norm = {
                name: s.mean_cost / baseline_cost for name, s in summaries.items()
            }
            raw[f"{label}:{dl_name}"] = norm
            result.add_row(
                label, dl_name, *[norm[m] for m in METHODS], norm["SOMPI"]
            )
    result.data["normalized"] = raw

    # Average savings across all (app, deadline) cells, as the paper reports.
    cells = list(raw.values())
    for other in ("On-demand", "Marathe", "Marathe-Opt"):
        saving = sum(1.0 - c["SOMPI"] / c[other] for c in cells) / len(cells)
        result.notes.append(
            f"SOMPI saves {100 * saving:.0f}% on average vs {other} "
            f"(paper: 70%/48%/20%)"
        )
    return result
