"""Figure 7 — monetary cost as the deadline loosens (BT, FT, BTIO).

The paper sweeps the deadline above Baseline Time and plots SOMPI's
cost: a descending staircase whose steps are the points where a cheaper
(slower) instance type becomes feasible — cc2.8xlarge, then c3.xlarge,
m1.medium, m1.small for BT; essentially flat beyond +10% for FT (the
fastest type is also the cheapest); a step to m1.small for BTIO.

Our calibrated per-type time ratios are wider than the paper's real-EC2
measurements, so the sweep extends to 3.5x Baseline Time to show every
switch point; the *shape* (monotone descent + type-switch steps) is the
reproduced object.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .common import ExperimentResult
from .env import ExperimentEnv

DEFAULT_APPS = ("BT", "FT", "BTIO")
DEFAULT_FACTORS = (1.05, 1.2, 1.4, 1.6, 1.8, 2.0, 2.4, 2.8, 3.2, 3.6)


def run(
    env: ExperimentEnv,
    apps: Sequence[str] = DEFAULT_APPS,
    factors: Sequence[float] = DEFAULT_FACTORS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="FIG7",
        title="SOMPI expected cost vs deadline (normalised to Baseline Cost)",
        columns=("app", "deadline x", "norm cost", "spot types used"),
    )
    curves: Dict[str, Dict[str, List]] = {}
    for name in apps:
        app = env.app(name)
        baseline_cost = env.baseline_cost(app)
        costs, types_used = [], []
        for factor in factors:
            problem = env.problem(app, factor)
            plan = env.sompi_plan(problem)
            norm = plan.expectation.cost / baseline_cost
            used = sorted(
                {
                    problem.groups[g.group_index].itype.name
                    for g in plan.decision.groups
                }
            )
            costs.append(norm)
            types_used.append(used)
            result.add_row(name, factor, norm, "+".join(used) or "(on-demand)")
        curves[name] = {
            "factors": list(factors),
            "cost": costs,
            "types": types_used,
        }
    result.data["curves"] = curves

    for name in apps:
        c = np.array(curves[name]["cost"])
        switches = [
            f"{curves[name]['factors'][i]:.2f}x"
            for i in range(1, len(c))
            if curves[name]["types"][i] != curves[name]["types"][i - 1]
        ]
        result.notes.append(
            f"{name}: cost falls {100 * (1 - c.min() / c[0]):.0f}% from the "
            f"tightest deadline; type switches at {switches or 'none'}"
        )
    return result
