"""Discrete-event simulation engine.

A small, dependency-free discrete-event kernel in the style of SimPy:

* :class:`~repro.sim.engine.Engine` — a heap-ordered event loop.
* :class:`~repro.sim.process.Process` — generator-coroutine processes that
  ``yield`` timeouts and events.
* :mod:`~repro.sim.rng` — named, reproducibly-seeded random streams.

The MPI runtime (:mod:`repro.mpi`) and the hybrid spot/on-demand executor
(:mod:`repro.exec`) are both built on this kernel.
"""

from .engine import Engine, Event, Timeout
from .process import Process, ProcessExit
from .rng import RngRegistry, derive_seed

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "ProcessExit",
    "RngRegistry",
    "derive_seed",
]
