"""Generator-coroutine processes on top of :class:`~repro.sim.engine.Engine`.

A *process* is a Python generator that yields:

* :class:`~repro.sim.engine.Timeout` — sleep for a duration,
* :class:`~repro.sim.engine.Event` — park until the event fires (the
  event's value is sent back into the generator),
* another :class:`Process` — park until that process finishes (its return
  value is sent back).

When the generator returns, the process's ``done`` event fires with the
return value, so processes compose like futures.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import SimulationError
from .engine import Engine, Event, Timeout


class ProcessExit(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, reason: Any = None) -> None:
        super().__init__(reason)
        self.reason = reason


class Process:
    """A running simulated process."""

    def __init__(self, engine: Engine, gen: Generator[Any, Any, Any], name: str = "") -> None:
        self.engine = engine
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done: Event = engine.event(f"{self.name}.done")
        self._interrupted: Optional[ProcessExit] = None
        self._alive = True
        self._pending_timeout = None  # Handle of an in-flight sleep
        engine.call_soon(self._step, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, reason: Any = None) -> None:
        """Deliver :class:`ProcessExit` into the process at the current time.

        Interrupting a finished process is a no-op, which makes fan-out
        cancellation ("first replica to finish kills the rest") simple.
        """
        if not self._alive:
            return
        self._interrupted = ProcessExit(reason)
        # Wake the process immediately; whatever it was waiting on is
        # abandoned.  A pending sleep is cancelled outright so the stale
        # wakeup cannot stretch the simulation clock.
        if self._pending_timeout is not None:
            self._pending_timeout.cancel()
            self._pending_timeout = None
        self.engine.call_soon(self._step, None)

    def _step(self, send_value: Any) -> None:
        if not self._alive:
            return
        try:
            if self._interrupted is not None:
                exc, self._interrupted = self._interrupted, None
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.done.succeed(stop.value)
            return
        except ProcessExit as exc:
            # Process chose not to handle the interrupt: it dies, and its
            # done event carries the interrupt reason.
            self._alive = False
            self.done.succeed(exc.reason)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            def wake() -> None:
                self._pending_timeout = None
                self._step(None)

            self._pending_timeout = self.engine.schedule(yielded.delay, wake)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self._resume_if_alive)
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(self._resume_if_alive)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _resume_if_alive(self, value: Any) -> None:
        # An interrupt may have raced with the wakeup; the interrupt wins
        # and this wakeup is dropped (the generator already moved on).
        if self._alive and self._interrupted is None:
            self._step(value)
