"""Named, reproducibly-seeded random streams.

Simulations in this library never touch the global NumPy RNG.  Every
stochastic component asks a :class:`RngRegistry` for a *named* stream;
streams are derived deterministically from a root seed and the name, so

* the same experiment with the same seed replays bit-for-bit,
* adding a new stochastic component does not perturb existing streams
  (unlike sequential draws from one generator), and
* parallel replicas ("circle groups") get independent streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses BLAKE2b over the pair so that nearby root seeds produce unrelated
    child seeds (important when sweeping seed = 0, 1, 2, ...).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` (not cached).

        Use when a component must be re-runnable from its initial state,
        e.g. each Monte-Carlo replication.
        """
        return np.random.default_rng(derive_seed(self.root_seed, name))

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry rooted at a derived seed."""
        return RngRegistry(derive_seed(self.root_seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={sorted(self._streams)})"
