"""Heap-based discrete-event engine.

The engine maintains a priority queue of ``(time, sequence, callback)``
entries.  Time is a ``float`` in whatever unit the caller chooses (the MPI
runtime uses seconds, the cloud executor uses hours); the engine itself is
unit-agnostic.  The ``sequence`` counter makes scheduling stable: events
scheduled earlier at the same timestamp fire first, which keeps
simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..errors import SimulationError


@dataclass
class Event:
    """A one-shot event that callbacks can wait on.

    An event starts *pending*; :meth:`succeed` fires it with an optional
    value and wakes every registered waiter.  Re-firing a fired event is an
    error — that invariably indicates a logic bug in the model.
    """

    engine: "Engine"
    name: str = ""
    _fired: bool = field(default=False, repr=False)
    _value: Any = field(default=None, repr=False)
    _waiters: list[Callable[[Any], None]] = field(default_factory=list, repr=False)

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} read before it fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the event, delivering ``value`` to all waiters."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.engine.call_soon(waiter, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; runs immediately if already fired."""
        if self._fired:
            self.engine.call_soon(callback, self._value)
        else:
            self._waiters.append(callback)


class Timeout:
    """Sentinel yielded by processes to sleep for ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Handle:
    """Cancellation handle for a scheduled callback.

    Cancelled entries are dropped by the event loop *without* advancing
    the clock, so an interrupted process's stale wakeup cannot stretch
    the simulation's final time.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """The discrete-event loop.

    Usage::

        eng = Engine()
        eng.schedule(5.0, lambda: print("at t=5"))
        eng.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Handle, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Handle:
        """Run ``callback`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = Handle()
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), handle, callback)
        )
        return handle

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Handle:
        """Run ``callback`` at absolute time ``when`` (>= now)."""
        return self.schedule(when - self._now, callback)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Handle:
        """Run ``callback(*args)`` at the current time, after pending events."""
        return self.schedule(0.0, lambda: callback(*args))

    def event(self, name: str = "") -> Event:
        """Create a fresh :class:`Event` bound to this engine."""
        return Event(self, name=name)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulation time would exceed this value (the clock is
            left at ``until``).  ``None`` runs until the queue is empty.
        max_events:
            Safety valve against runaway simulations.

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        try:
            while self._queue:
                when, _seq, handle, callback = self._queue[0]
                if handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and when > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if when < self._now:  # pragma: no cover - guarded by schedule()
                    raise SimulationError("time went backwards")
                self._now = when
                callback()
                self.events_processed += 1
                if self.events_processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a livelock"
                    )
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if queue is empty."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self._now:.6g}, pending={len(self._queue)})"
