"""SOMPI — monetary cost optimization for MPI applications on spot clouds.

A full reproduction of Gong, He & Zhou, *"Monetary Cost Optimizations
for MPI-Based HPC Applications on Amazon Clouds: Checkpoints and
Replicated Execution"* (SC '15), as a self-contained Python library:

* :mod:`repro.core` — the SOMPI optimizer (cost model, two-level
  optimization, adaptive Algorithm 1 support types).
* :mod:`repro.market` — spot-price traces, a calibrated synthetic
  generator, failure-rate models.
* :mod:`repro.cloud` — the EC2-like substrate (catalog, zones, spot
  lifecycle, billing, S3-like checkpoint store).
* :mod:`repro.mpi` + :mod:`repro.apps` — a discrete-event MPI runtime
  and the NPB/LAMMPS workload models that feed the profiler.
* :mod:`repro.execution` — trace replay, Monte-Carlo evaluation and the
  adaptive executor.
* :mod:`repro.baselines` — On-demand, Spot-Inf/Spot-Avg, Marathe(-Opt)
  and the fault-tolerance ablations.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.experiments.env import ExperimentEnv
    env = ExperimentEnv.paper_default(seed=7)
    problem = env.problem("BT", deadline_factor=1.5)
    plan = env.sompi_plan(problem)
    print(plan.describe())
"""

from .config import DEFAULT_CONFIG, SompiConfig
from .core import (
    CircleGroupSpec,
    Decision,
    GroupDecision,
    OnDemandOption,
    Problem,
    SompiOptimizer,
    SompiPlan,
)
from .errors import (
    CheckpointError,
    ConfigurationError,
    InfeasibleError,
    MPIRuntimeError,
    ReproError,
    SimulationError,
    TraceError,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SompiConfig",
    "CircleGroupSpec",
    "Decision",
    "GroupDecision",
    "OnDemandOption",
    "Problem",
    "SompiOptimizer",
    "SompiPlan",
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "InfeasibleError",
    "SimulationError",
    "MPIRuntimeError",
    "CheckpointError",
    "__version__",
]
