"""Global defaults shared across the library.

The values here mirror the defaults reported in the paper's evaluation
(Section 5): ``slack = 20%``, ``kappa = 4`` circle groups selected, and an
adaptive optimization window of ``T_m = 15`` hours.  They are collected in
one frozen dataclass so experiments can state their configuration
explicitly and tests can construct perturbed variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .units import check_fraction, check_positive


@dataclass(frozen=True)
class SompiConfig:
    """Tunable knobs of the SOMPI optimizer.

    Attributes
    ----------
    slack:
        Fraction of the deadline reserved for checkpoint/recovery overhead
        when selecting the fallback on-demand instance type (Section 4.1).
        The paper's parameter study selects 20%.
    kappa:
        Number of circle groups actually used out of the ``K`` candidates
        (Section 4.4).  The paper selects 4.
    window_hours:
        Adaptive optimization window ``T_m`` (Section 4.3).  The paper
        selects 15 hours.
    bid_levels:
        ``L`` in the logarithmic bid search: candidate bids are
        ``H * 2**(j - L)`` for ``j = 0..L`` (plus 0 = "do not use group").
    time_step_hours:
        Discretisation step of failure times ``t_i`` (the paper floors to
        integers; we allow finer grids).
    subset_strategy:
        ``"exhaustive"`` traverses all C(K, kappa) subsets as in the paper;
        ``"greedy"`` grows the subset one group at a time (extension).
    interval_refine:
        Whether to refine Young's closed-form checkpoint interval with a
        local numeric scan.
    checkpointing:
        Ablation switch (the paper's w/o-CK and All-Unable variants,
        Section 5.4.2): when False, every group's checkpoint interval is
        pinned to its execution time, i.e. no checkpoints are taken.
    max_miss_probability:
        Extension: an optional *chance constraint* — a candidate plan
        must additionally satisfy ``P(Time > Deadline) <= this`` under
        the model's joint outcome distribution (the paper only bounds
        the expectation).  ``None`` disables it.
    table_cache:
        Share the per-(market, spec, config) bid/interval/outcome tables
        and subset score vectors across :class:`TwoLevelOptimizer`
        instances (see DESIGN.md "Performance").  The caches are exact —
        keyed by every input that enters the computation — so disabling
        this only trades speed for memory; results are unchanged.
    artifact_cache:
        Persist those tables (and the kernels' per-(trace, bid) index
        tables) to the on-disk artifact store
        (:mod:`repro.execution.artifacts`), so a *cold process* warms
        from disk instead of rebuilding.  Artifacts are keyed by trace
        content hash + engine fingerprint and loads are fail-open, so
        results are bit-identical with the store on, off, deleted or
        corrupted.  Requires ``table_cache``; ignored without it.
    artifact_dir:
        Root directory of the artifact store.  ``None`` (default)
        resolves via the ``REPRO_ARTIFACT_DIR`` environment variable,
        falling back to the user cache directory.
    artifact_max_bytes:
        Size cap of the artifact store in bytes.  When set (or when the
        ``REPRO_ARTIFACT_MAX_BYTES`` environment variable, which wins,
        is set), least-recently-used artifacts are evicted until the
        store fits — on store open and periodically as writes
        accumulate.  ``None`` (default) means the store only grows;
        ``repro artifacts --evict`` / ``--clear`` manage it manually.
        Eviction only changes what is cached, never any result.
    grid_eval:
        Evaluate each subset's (bid x interval) candidate grid with the
        one-shot vectorized evaluator (:mod:`repro.core.grid_eval`)
        instead of the scalar per-combo loop.  The two paths are
        bit-identical by construction (the grid evaluator is a
        KERNEL_ORACLES kernel with exact-parity tests against the
        scalar oracle); this flag exists for A/B benchmarking and as a
        fallback switch.
    audit:
        Assert the :mod:`repro.obs` conservation invariants on every
        result an executor built with this config produces (DESIGN.md
        §7): ``cost == ledger.total()`` to 1e-9, ledger categories
        reconciled with group records and the billing policy, monotone
        banked progress across adaptive windows.  Violations raise
        :class:`~repro.errors.AuditError`.  Off by default — audit-off
        outputs are bit-identical to a build without the layer.  The
        ``REPRO_AUDIT=1`` environment variable (``make audit``) enables
        auditing process-wide regardless of this flag.
    """

    slack: float = 0.20
    kappa: int = 4
    window_hours: float = 15.0
    bid_levels: int = 7
    time_step_hours: float = 1.0
    subset_strategy: str = "exhaustive"
    interval_refine: bool = True
    checkpointing: bool = True
    max_miss_probability: float | None = None
    table_cache: bool = True
    artifact_cache: bool = True
    artifact_dir: str | None = None
    artifact_max_bytes: int | None = None
    grid_eval: bool = True
    audit: bool = False

    def __post_init__(self) -> None:
        check_fraction("slack", self.slack)
        if self.kappa < 1:
            raise ValueError(f"kappa must be >= 1, got {self.kappa}")
        check_positive("window_hours", self.window_hours)
        if self.bid_levels < 1:
            raise ValueError(f"bid_levels must be >= 1, got {self.bid_levels}")
        check_positive("time_step_hours", self.time_step_hours)
        if self.subset_strategy not in ("exhaustive", "greedy"):
            raise ValueError(
                "subset_strategy must be 'exhaustive' or 'greedy', "
                f"got {self.subset_strategy!r}"
            )
        if self.max_miss_probability is not None:
            check_fraction("max_miss_probability", self.max_miss_probability)
        if self.artifact_max_bytes is not None and self.artifact_max_bytes < 1:
            raise ValueError(
                f"artifact_max_bytes must be >= 1 or None, "
                f"got {self.artifact_max_bytes}"
            )

    def with_(self, **kwargs: Any) -> "SompiConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = SompiConfig()
"""Library-wide default configuration (paper defaults)."""
