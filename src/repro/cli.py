"""Command-line interface.

Subcommands::

    python -m repro.cli plan     --app BT --deadline-factor 1.5
    python -m repro.cli replay   --app BT --deadline-factor 1.5 --samples 300
    python -m repro.cli markets  --days 7
    python -m repro.cli export-history --out history.json
    python -m repro.cli backtest --windows 3 --train-days 14 --test-days 7
    python -m repro.cli artifacts [--clear | --evict | --warm]
    python -m repro.cli experiments --only fig5 tab2   (alias of the runner)

``plan`` prints the SOMPI decision for a workload; ``replay``
additionally Monte-Carlo-evaluates it against the traces; ``markets``
summarises the synthetic spot markets; ``export-history`` writes the
generated history to a JSON file (the same format ``--history`` loads,
so real AWS dumps converted via :mod:`repro.market.io` can be swapped
in); ``backtest`` runs the plan/holdout time-travel harness
(:mod:`repro.backtest`) and writes a manifest plus per-window
realized-vs-predicted and calibration tables; ``artifacts`` inspects,
evicts from, clears, or pre-warms the on-disk artifact store.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Optional

from .apps import PAPER_APPS
from .config import DEFAULT_CONFIG
from .experiments.env import ExperimentEnv
from .market.history import SpotPriceHistory
from .market.io import load_history, save_history
from .market.stats import TraceSummary


def _build_env(args: argparse.Namespace) -> ExperimentEnv:
    config = DEFAULT_CONFIG.with_(kappa=args.kappa)
    env = ExperimentEnv.paper_default(seed=args.seed, config=config)
    if getattr(args, "history", None):
        loaded = load_history(args.history)
        # keep only markets the catalog knows, so problems stay valid
        filtered = SpotPriceHistory()
        for key, trace in loaded.items():
            filtered.add(key, trace)
        env.history = filtered
    return env


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--kappa", type=int, default=3)
    parser.add_argument(
        "--history", type=str, default=None, help="JSON history file to use"
    )


def cmd_plan(args: argparse.Namespace) -> int:
    env = _build_env(args)
    app = env.app(args.app, n_processes=args.processes)
    problem = env.problem(app, deadline_factor=args.deadline_factor)
    plan = env.sompi_plan(problem)
    if args.json:
        import json

        print(json.dumps(plan.to_dict(), indent=1))
        return 0
    print(f"workload: {app.profile().name}")
    print(
        f"baseline: {env.baseline_time(app):.2f} h / "
        f"${env.baseline_cost(app):.2f}; deadline {problem.deadline:.2f} h"
    )
    print(plan.describe())
    print(
        f"(searched {plan.combos_evaluated} bid combinations; "
        f"used spot: {plan.used_spot})"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    env = _build_env(args)
    app = env.app(args.app, n_processes=args.processes)
    problem = env.problem(app, deadline_factor=args.deadline_factor)
    plan = env.sompi_plan(problem)
    print(plan.describe())
    mc = env.mc(
        problem,
        plan.decision,
        n_samples=args.samples,
        stream="cli",
        semantics=args.semantics,
    )
    print(
        f"\n{args.samples} replays ({args.semantics}): "
        f"cost ${mc.mean_cost:.2f} +- {mc.std_cost:.2f} "
        f"(p95 ${mc.p95_cost:.2f}), time {mc.mean_time:.2f} h, "
        f"deadline misses {mc.deadline_miss_rate:.1%}, "
        f"finished on spot {mc.spot_completion_rate:.1%}"
    )
    return 0


def cmd_markets(args: argparse.Namespace) -> int:
    env = _build_env(args)
    print(f"{'market':>26}  {'min':>8}  {'max':>8}  {'mean':>8}  {'cv':>6}")
    for key, trace in env.history.items():
        window = trace.slice(
            trace.start_time, min(trace.end_time, trace.start_time + args.days * 24)
        )
        s = TraceSummary.of(window, spike_threshold=4 * window.mean_price())
        print(
            f"{str(key):>26}  {s.min_price:8.4f}  {s.max_price:8.3f}  "
            f"{s.mean_price:8.4f}  {s.coefficient_of_variation:6.2f}"
        )
    return 0


def cmd_export_history(args: argparse.Namespace) -> int:
    env = _build_env(args)
    save_history(env.history, args.out)
    print(f"wrote {len(env.history)} markets to {args.out}")
    return 0


def cmd_backtest(args: argparse.Namespace) -> int:
    from .backtest import BacktestManifest, build_manifest, run_backtest
    from .experiments.env import LOOSE_DEADLINE_FACTOR, TIGHT_DEADLINE_FACTOR
    from .experiments.ext_backtest import report_tables
    from .experiments.runner import _write_json
    from .units import HOURS_PER_DAY

    env = _build_env(args)
    if args.quick:
        n_windows, train_days, test_days = 2, 10.0, 5.0
        n_samples = 40
        apps = ["BT"]
        deadline_factors = [("loose", LOOSE_DEADLINE_FACTOR)]
    else:
        n_windows, train_days, test_days = (
            args.windows, args.train_days, args.test_days
        )
        n_samples = args.samples
        apps = args.apps
        deadline_factors = [
            ("loose", LOOSE_DEADLINE_FACTOR),
            ("tight", TIGHT_DEADLINE_FACTOR),
        ]
    if args.from_manifest:
        manifest = BacktestManifest.load(args.from_manifest)
        print(f"loaded manifest from {args.from_manifest}")
    else:
        manifest = build_manifest(
            env,
            n_windows=n_windows,
            plan_hours=train_days * HOURS_PER_DAY,
            holdout_hours=test_days * HOURS_PER_DAY,
            apps=apps,
            deadline_factors=deadline_factors,
            n_samples=n_samples,
        )
    report = run_backtest(env, manifest, jobs=args.jobs)
    manifest.save(args.manifest)
    tables = report_tables(report)
    for table in tables:
        print(table.format_table())
        print()
    _write_json(tables, env.seed, manifest.n_samples, args.out)
    print(f"wrote manifest to {args.manifest}")
    print(f"wrote JSON results to {args.out}")
    return 0


def _warm_artifacts(args: argparse.Namespace, root: Path) -> None:
    """Pre-populate the store: plan every requested (app, deadline) cell.

    Planning writes every disk artifact a later run would want — packed
    search sidecar, group tables, trace/bid index tables — keyed by
    trace content + engine fingerprint, so any later process over the
    same history (CI test shards, benches, experiment runs) starts
    disk-warm instead of recomputing them.
    """
    from .experiments.env import LOOSE_DEADLINE_FACTOR, TIGHT_DEADLINE_FACTOR

    config = DEFAULT_CONFIG.with_(kappa=args.kappa, artifact_dir=str(root))
    env = ExperimentEnv.paper_default(seed=args.seed, config=config)
    factors = [("loose", LOOSE_DEADLINE_FACTOR), ("tight", TIGHT_DEADLINE_FACTOR)]
    for app in args.apps:
        for name, factor in factors:
            problem = env.problem(app, deadline_factor=factor)
            env.sompi_plan(problem)
            print(f"warmed {app}/{name}")


def cmd_artifacts(args: argparse.Namespace) -> int:
    from .execution.artifacts import ArtifactStore, default_artifact_dir

    root = Path(args.dir) if args.dir else default_artifact_dir()
    if root is None:
        print("artifact store disabled (REPRO_ARTIFACT_DIR is empty)")
        return 1
    store = ArtifactStore(root)
    if args.clear:
        removed, freed = store.clear()
        print(f"cleared {removed} artifact(s), freed {freed} bytes")
    elif args.evict or args.max_bytes is not None or args.max_age_days is not None:
        removed, freed = store.evict(
            max_bytes=args.max_bytes, max_age_days=args.max_age_days
        )
        print(f"evicted {removed} artifact(s), freed {freed} bytes")
    if args.warm:
        _warm_artifacts(args, root)
    stats = store.stats()
    print(f"store: {store.root}")
    print(f"{stats['files']} artifact(s), {stats['bytes']} bytes")
    for kind in sorted(stats["by_kind"]):
        entry = stats["by_kind"][kind]
        print(f"  {kind:>12}: {entry['files']:5d} files  {entry['bytes']:12d} bytes")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import runner

    forwarded = ["--seed", str(args.seed)]
    if args.quick:
        forwarded.append("--quick")
    if args.only:
        forwarded += ["--only", *args.only]
    return runner.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="print the SOMPI plan for a workload")
    _add_common(p_plan)
    p_plan.add_argument("--app", choices=[*PAPER_APPS, "CG", "MG", "LAMMPS"], default="BT")
    p_plan.add_argument("--processes", type=int, default=128)
    p_plan.add_argument("--deadline-factor", type=float, default=1.5)
    p_plan.add_argument("--json", action="store_true", help="emit the plan as JSON")
    p_plan.set_defaults(fn=cmd_plan)

    p_replay = sub.add_parser("replay", help="plan + Monte-Carlo replay")
    _add_common(p_replay)
    p_replay.add_argument("--app", choices=[*PAPER_APPS, "LAMMPS"], default="BT")
    p_replay.add_argument("--processes", type=int, default=128)
    p_replay.add_argument("--deadline-factor", type=float, default=1.5)
    p_replay.add_argument("--samples", type=int, default=300)
    p_replay.add_argument(
        "--semantics", choices=("single-shot", "persistent"), default="single-shot"
    )
    p_replay.set_defaults(fn=cmd_replay)

    p_markets = sub.add_parser("markets", help="summarise the spot markets")
    _add_common(p_markets)
    p_markets.add_argument("--days", type=float, default=7.0)
    p_markets.set_defaults(fn=cmd_markets)

    p_export = sub.add_parser("export-history", help="write the history JSON")
    _add_common(p_export)
    p_export.add_argument("--out", type=str, required=True)
    p_export.set_defaults(fn=cmd_export_history)

    p_bt = sub.add_parser(
        "backtest", help="plan/holdout time-travel backtest (DESIGN.md §11)"
    )
    _add_common(p_bt)
    p_bt.add_argument("--windows", type=int, default=3)
    p_bt.add_argument("--train-days", type=float, default=14.0)
    p_bt.add_argument("--test-days", type=float, default=7.0)
    p_bt.add_argument("--apps", nargs="*", default=["BT"])
    p_bt.add_argument("--samples", type=int, default=150)
    p_bt.add_argument(
        "--quick",
        action="store_true",
        help="smoke settings: 2 windows, 10+5 days, 40 replays, BT loose",
    )
    p_bt.add_argument(
        "--manifest",
        type=str,
        default="backtest_manifest.json",
        help="where to write the window manifest",
    )
    p_bt.add_argument(
        "--from-manifest",
        type=str,
        default=None,
        metavar="PATH",
        help="re-run an existing manifest instead of building one",
    )
    p_bt.add_argument(
        "--out",
        type=str,
        default="experiments_results.json",
        help="where to write the result tables as JSON",
    )
    p_bt.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run grid cells in N pooled worker processes "
        "(bit-identical to serial)",
    )
    p_bt.set_defaults(fn=cmd_backtest)

    p_art = sub.add_parser(
        "artifacts", help="inspect, evict from, or clear the artifact store"
    )
    p_art.add_argument(
        "--dir", type=str, default=None, help="store root (default: resolved)"
    )
    p_art.add_argument("--clear", action="store_true", help="remove everything")
    p_art.add_argument(
        "--evict", action="store_true", help="apply the size/age policy now"
    )
    p_art.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used artifacts down to this size",
    )
    p_art.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict artifacts untouched for longer than this",
    )
    p_art.add_argument(
        "--warm",
        action="store_true",
        help="pre-populate the store by planning every (app, deadline) cell",
    )
    p_art.add_argument(
        "--apps", nargs="*", default=["BT"], help="apps to warm (with --warm)"
    )
    p_art.add_argument("--seed", type=int, default=7)
    p_art.add_argument("--kappa", type=int, default=3)
    p_art.set_defaults(fn=cmd_artifacts)

    p_exp = sub.add_parser("experiments", help="run the paper experiments")
    p_exp.add_argument("--seed", type=int, default=7)
    p_exp.add_argument("--quick", action="store_true")
    p_exp.add_argument("--only", nargs="*", default=None)
    p_exp.set_defaults(fn=cmd_experiments)

    return parser


def main(argv: Optional[Iterable[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
