"""Command-line interface.

Subcommands::

    python -m repro.cli plan     --app BT --deadline-factor 1.5
    python -m repro.cli replay   --app BT --deadline-factor 1.5 --samples 300
    python -m repro.cli markets  --days 7
    python -m repro.cli export-history --out history.json
    python -m repro.cli experiments --only fig5 tab2   (alias of the runner)

``plan`` prints the SOMPI decision for a workload; ``replay``
additionally Monte-Carlo-evaluates it against the traces; ``markets``
summarises the synthetic spot markets; ``export-history`` writes the
generated history to a JSON file (the same format ``--history`` loads,
so real AWS dumps converted via :mod:`repro.market.io` can be swapped
in).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Optional

from .apps import PAPER_APPS
from .config import DEFAULT_CONFIG
from .experiments.env import ExperimentEnv
from .market.history import SpotPriceHistory
from .market.io import load_history, save_history
from .market.stats import TraceSummary


def _build_env(args: argparse.Namespace) -> ExperimentEnv:
    config = DEFAULT_CONFIG.with_(kappa=args.kappa)
    env = ExperimentEnv.paper_default(seed=args.seed, config=config)
    if getattr(args, "history", None):
        loaded = load_history(args.history)
        # keep only markets the catalog knows, so problems stay valid
        filtered = SpotPriceHistory()
        for key, trace in loaded.items():
            filtered.add(key, trace)
        env.history = filtered
    return env


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--kappa", type=int, default=3)
    parser.add_argument(
        "--history", type=str, default=None, help="JSON history file to use"
    )


def cmd_plan(args: argparse.Namespace) -> int:
    env = _build_env(args)
    app = env.app(args.app, n_processes=args.processes)
    problem = env.problem(app, deadline_factor=args.deadline_factor)
    plan = env.sompi_plan(problem)
    if args.json:
        import json

        print(json.dumps(plan.to_dict(), indent=1))
        return 0
    print(f"workload: {app.profile().name}")
    print(
        f"baseline: {env.baseline_time(app):.2f} h / "
        f"${env.baseline_cost(app):.2f}; deadline {problem.deadline:.2f} h"
    )
    print(plan.describe())
    print(
        f"(searched {plan.combos_evaluated} bid combinations; "
        f"used spot: {plan.used_spot})"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    env = _build_env(args)
    app = env.app(args.app, n_processes=args.processes)
    problem = env.problem(app, deadline_factor=args.deadline_factor)
    plan = env.sompi_plan(problem)
    print(plan.describe())
    mc = env.mc(
        problem,
        plan.decision,
        n_samples=args.samples,
        stream="cli",
        semantics=args.semantics,
    )
    print(
        f"\n{args.samples} replays ({args.semantics}): "
        f"cost ${mc.mean_cost:.2f} +- {mc.std_cost:.2f} "
        f"(p95 ${mc.p95_cost:.2f}), time {mc.mean_time:.2f} h, "
        f"deadline misses {mc.deadline_miss_rate:.1%}, "
        f"finished on spot {mc.spot_completion_rate:.1%}"
    )
    return 0


def cmd_markets(args: argparse.Namespace) -> int:
    env = _build_env(args)
    print(f"{'market':>26}  {'min':>8}  {'max':>8}  {'mean':>8}  {'cv':>6}")
    for key, trace in env.history.items():
        window = trace.slice(
            trace.start_time, min(trace.end_time, trace.start_time + args.days * 24)
        )
        s = TraceSummary.of(window, spike_threshold=4 * window.mean_price())
        print(
            f"{str(key):>26}  {s.min_price:8.4f}  {s.max_price:8.3f}  "
            f"{s.mean_price:8.4f}  {s.coefficient_of_variation:6.2f}"
        )
    return 0


def cmd_export_history(args: argparse.Namespace) -> int:
    env = _build_env(args)
    save_history(env.history, args.out)
    print(f"wrote {len(env.history)} markets to {args.out}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import runner

    forwarded = ["--seed", str(args.seed)]
    if args.quick:
        forwarded.append("--quick")
    if args.only:
        forwarded += ["--only", *args.only]
    return runner.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="print the SOMPI plan for a workload")
    _add_common(p_plan)
    p_plan.add_argument("--app", choices=[*PAPER_APPS, "CG", "MG", "LAMMPS"], default="BT")
    p_plan.add_argument("--processes", type=int, default=128)
    p_plan.add_argument("--deadline-factor", type=float, default=1.5)
    p_plan.add_argument("--json", action="store_true", help="emit the plan as JSON")
    p_plan.set_defaults(fn=cmd_plan)

    p_replay = sub.add_parser("replay", help="plan + Monte-Carlo replay")
    _add_common(p_replay)
    p_replay.add_argument("--app", choices=[*PAPER_APPS, "LAMMPS"], default="BT")
    p_replay.add_argument("--processes", type=int, default=128)
    p_replay.add_argument("--deadline-factor", type=float, default=1.5)
    p_replay.add_argument("--samples", type=int, default=300)
    p_replay.add_argument(
        "--semantics", choices=("single-shot", "persistent"), default="single-shot"
    )
    p_replay.set_defaults(fn=cmd_replay)

    p_markets = sub.add_parser("markets", help="summarise the spot markets")
    _add_common(p_markets)
    p_markets.add_argument("--days", type=float, default=7.0)
    p_markets.set_defaults(fn=cmd_markets)

    p_export = sub.add_parser("export-history", help="write the history JSON")
    _add_common(p_export)
    p_export.add_argument("--out", type=str, required=True)
    p_export.set_defaults(fn=cmd_export_history)

    p_exp = sub.add_parser("experiments", help="run the paper experiments")
    p_exp.add_argument("--seed", type=int, default=7)
    p_exp.add_argument("--quick", action="store_true")
    p_exp.add_argument("--only", nargs="*", default=None)
    p_exp.set_defaults(fn=cmd_experiments)

    return parser


def main(argv: Optional[Iterable[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
