"""Structured event tracing for replayed executions.

The replay layer describes everything that happens to a hybrid run —
spot launches, out-of-bid deaths, checkpoint writes, completions,
on-demand fallbacks, adaptive optimization windows — but until now that
story existed only implicitly, scattered across ``GroupRunRecord``
fields.  :class:`EventTrace` makes it explicit: a bounded in-memory ring
buffer of :class:`Event` records with an optional JSONL sink, cheap
enough to leave compiled in (emission is a no-op unless a trace is
installed, see :mod:`repro.obs`).

Event kinds and their payloads (the schema, see DESIGN.md §7):

========== ===========================================================
kind       payload fields
========== ===========================================================
launch     ``key``, ``bid``, ``interval`` — spot group went live
checkpoint ``key``, ``index`` — k-th checkpoint image written
death      ``key``, ``saved`` — out-of-bid termination
complete   ``key``, ``productive`` — group finished the application
fallback   ``hours``, ``cost`` — on-demand recovery started (key "ondemand")
window     ``index``, ``t1``, ``cost``, ``gained`` — adaptive window done
========== ===========================================================

The backtest harness (:mod:`repro.backtest`, DESIGN.md §11) adds two
run-level kinds: ``backtest.window`` (per-cell realized vs predicted
cost/miss, ``key`` is ``"app:deadline"``) and ``backtest.replan`` (a
re-plan trigger fired for that cell, with the ``trigger`` name).

Every event carries an absolute ``time`` in trace hours.  Events derived
from the same :class:`~repro.execution.results.RunResult` are identical
no matter which replay path produced it — the scalar and the batched
replay share :func:`derive_replay_events`, which is what makes
"scalar and batched replay emit identical event streams" an invariant
rather than a hope.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

#: The known event kinds (anything else is rejected at emit time).
EVENT_KINDS = (
    "launch",
    "checkpoint",
    "death",
    "complete",
    "fallback",
    "window",
    "backtest.window",
    "backtest.replan",
)


@dataclass(frozen=True)
class Event:
    """One timestamped observation of the execution."""

    kind: str
    time: float  # absolute trace hours
    key: str  # market key string, or "" for run-level events
    data: tuple = ()  # sorted (name, value) pairs — hashable and comparable

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "time": self.time}
        if self.key:
            out["key"] = self.key
        out.update(dict(self.data))
        return out


class EventTrace:
    """A bounded ring buffer of events with an optional JSONL sink.

    ``capacity`` bounds memory (oldest events fall off); ``jsonl_path``
    additionally appends every event as one JSON line, so long runs can
    be audited offline without holding the full stream in memory.
    """

    def __init__(self, capacity: int = 65536, jsonl_path: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._jsonl_path = jsonl_path
        self._sink = None
        self.emitted = 0  # total events ever emitted (ring may have fewer)

    def emit(self, kind: str, time: float, key: str = "", **data: Any) -> Event:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; known: {EVENT_KINDS}")
        event = Event(kind, float(time), key, tuple(sorted(data.items())))
        self.append(event)
        return event

    def append(self, event: Event) -> None:
        self._ring.append(event)
        self.emitted += 1
        if self._jsonl_path is not None:
            if self._sink is None:
                self._sink = open(self._jsonl_path, "a")
            json.dump(event.to_dict(), self._sink)
            self._sink.write("\n")

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    def events(self) -> list[Event]:
        return list(self._ring)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [e.to_dict() for e in self._ring]

    def clear(self) -> None:
        self._ring.clear()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __len__(self) -> int:
        return len(self._ring)

    def __enter__(self) -> "EventTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def derive_replay_events(problem, decision, result) -> list[Event]:
    """The canonical event stream of one replayed decision.

    Derived purely from the :class:`RunResult` (records + ledger), so the
    scalar and the batched replay — which produce bit-identical results —
    necessarily produce identical streams.  Events appear in decision
    order per group (launch, checkpoints, death/complete), followed by
    the run-level fallback event if the on-demand recovery ran.
    """
    from ..execution.replay import checkpoint_write_times

    events: list[Event] = []
    for gd, rec in zip(decision.groups, result.group_records):
        spec = problem.groups[gd.group_index]
        key = str(spec.key)
        if rec.launched:
            events.append(
                Event(
                    "launch",
                    rec.launch_time,
                    key,
                    (("bid", rec.bid), ("interval", rec.interval)),
                )
            )
            for k, t_write in enumerate(
                checkpoint_write_times(spec, rec.interval, rec)
            ):
                events.append(Event("checkpoint", t_write, key, (("index", k),)))
        if rec.terminated:
            events.append(
                Event("death", rec.end_time, key, (("saved", rec.saved),))
            )
        if rec.completed:
            events.append(
                Event(
                    "complete",
                    rec.end_time,
                    key,
                    (("productive", rec.productive),),
                )
            )
    if decision.groups and result.completed_by == "ondemand":
        od_start = result.start_time + result.makespan - result.ondemand_hours
        events.append(
            Event(
                "fallback",
                od_start,
                "ondemand",
                (
                    ("cost", result.ledger.total("ondemand")),
                    ("hours", result.ondemand_hours),
                ),
            )
        )
    return events
