"""``repro.obs`` — observability and invariant auditing.

Three cooperating pieces (each in its own module):

* **Event tracing** (:mod:`.events`) — structured launch / death /
  checkpoint / fallback / window events into a ring buffer with an
  optional JSONL sink.  Off unless a trace is installed with
  :func:`tracing` / :func:`install_trace`.
* **Metrics** (:mod:`.metrics`) — a process-global registry of counters
  and wall-clock timers (replays run, combos evaluated, cache hits,
  per-phase planning time).  Always on; never feeds back into results.
* **Audit mode** (:mod:`.audit`) — conservation invariants asserted on
  every result: ``cost == ledger.total()`` to 1e-9, ledger categories
  reconciled against group records and the billing policy, monotone
  banked progress across adaptive windows.  Enabled per-process with
  :func:`set_audit` / :func:`audited`, per-run with ``config.audit``
  (:class:`~repro.config.SompiConfig`), or globally with the
  ``REPRO_AUDIT=1`` environment variable (``make audit``).

With audit off and no trace installed the layer costs one attribute
check per replay, and outputs are bit-identical to the unobserved code
(held down by ``tests/test_perf_determinism.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, Optional

from .audit import (
    TOLERANCE,
    assert_event_parity,
    audit_adaptive_result,
    audit_run_result,
)
from .events import EVENT_KINDS, Event, EventTrace, derive_replay_events
from .metrics import Metrics

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventTrace",
    "Metrics",
    "TOLERANCE",
    "assert_event_parity",
    "audit_adaptive_result",
    "audit_enabled",
    "audit_run_result",
    "audited",
    "derive_replay_events",
    "emit",
    "emit_events",
    "get_metrics",
    "install_trace",
    "reset_metrics",
    "set_audit",
    "trace_active",
    "tracing",
]

# ---------------------------------------------------------------------------
# Process-global state.  Read at most once per replay; mutated only by the
# explicit switches below, so the off path is a couple of ``is None`` checks.
# ---------------------------------------------------------------------------

_METRICS = Metrics()
_TRACE: Optional[EventTrace] = None
_AUDIT = False
#: Environment opt-in, captured once at import (``make audit`` sets it
#: before the interpreter starts; forked workers inherit the parent's view).
_ENV_AUDIT = os.environ.get("REPRO_AUDIT", "") not in ("", "0")


def get_metrics() -> Metrics:
    """The process-global metrics registry."""
    return _METRICS


def reset_metrics() -> None:
    _METRICS.reset()


def audit_enabled() -> bool:
    """Whether results should be audited in this process."""
    return _AUDIT or _ENV_AUDIT


def set_audit(enabled: bool) -> None:
    global _AUDIT
    _AUDIT = bool(enabled)


@contextmanager
def audited(enabled: bool = True):
    """Temporarily switch audit mode (tests, targeted investigations)."""
    global _AUDIT
    before = _AUDIT
    _AUDIT = bool(enabled)
    try:
        yield
    finally:
        _AUDIT = before


def trace_active() -> bool:
    return _TRACE is not None


def install_trace(trace: Optional[EventTrace]) -> None:
    """Install (or with ``None``, remove) the process-global event sink."""
    global _TRACE
    _TRACE = trace


@contextmanager
def tracing(trace: Optional[EventTrace] = None):
    """Install an event trace for the duration of a block; yields it."""
    global _TRACE
    if trace is None:
        trace = EventTrace()
    before = _TRACE
    _TRACE = trace
    try:
        yield trace
    finally:
        _TRACE = before


def emit(kind: str, time: float, key: str = "", **data) -> None:
    """Emit one event to the installed trace (no-op without one)."""
    if _TRACE is not None:
        _TRACE.emit(kind, time, key, **data)


def emit_events(events: Iterable[Event]) -> None:
    """Append pre-built events to the installed trace (no-op without one)."""
    if _TRACE is not None:
        _TRACE.extend(events)
