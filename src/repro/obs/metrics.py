"""Counters and wall-clock timers for the planning and replay layers.

A :class:`Metrics` registry is a plain bag of named counters and
accumulated timers.  The library increments a process-global registry
(:func:`get_metrics` in :mod:`repro.obs`) at a handful of coarse
checkpoints — replays run, Monte-Carlo samples drawn, planner calls,
combos covered, cache hits — cheap enough to be always on: one dict
increment per *call*, never per inner-loop element, and never anything
that feeds back into the numeric outputs.

Worker processes keep their own registries; the library never merges
them back automatically.  Callers that want fleet-wide numbers (the
experiments runner with ``--jobs``) ship a :meth:`Metrics.snapshot`
home with each result and fold it in with :meth:`Metrics.merge_snapshot`.
Metrics are observability, not accounting; the cost ledgers (which *are*
accounting) travel inside the results themselves.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class _TimerStat:
    seconds: float = 0.0
    calls: int = 0


@dataclass
class Metrics:
    """Named counters and accumulated wall-clock timers."""

    counters: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def add_time(self, name: str, seconds: float) -> None:
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = _TimerStat()
        stat.seconds += seconds
        stat.calls += 1

    @contextmanager
    def timer(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def get(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def snapshot(self) -> dict:
        """JSON-friendly view (counters + per-timer seconds/calls)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {"seconds": stat.seconds, "calls": stat.calls}
                for name, stat in sorted(self.timers.items())
            },
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, stat in snap.get("timers", {}).items():
            entry = self.timers.get(name)
            if entry is None:
                entry = self.timers[name] = _TimerStat()
            entry.seconds += stat["seconds"]
            entry.calls += stat["calls"]

    def format_block(self) -> str:
        """The human-readable metrics block (see EXPERIMENTS.md)."""
        lines = ["== metrics =="]
        if self.counters:
            lines.append("counters:")
            width = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]:g}")
        if self.timers:
            lines.append("timers:")
            width = max(len(n) for n in self.timers)
            for name in sorted(self.timers):
                stat = self.timers[name]
                lines.append(
                    f"  {name:<{width}}  {stat.seconds:.3f}s over "
                    f"{stat.calls} call{'s' if stat.calls != 1 else ''}"
                )
        if len(lines) == 1:
            lines.append("(empty)")
        return "\n".join(lines)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
