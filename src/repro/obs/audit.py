"""Conservation invariants over replay and adaptive results.

The headline numbers of the reproduction — replayed dollar totals —
are only as trustworthy as their bookkeeping, and bookkeeping drift is
exactly the kind of bug that survives review (everything still *runs*,
the totals are just quietly wrong).  Audit mode turns the books into
assertions: with :func:`repro.obs.audit_enabled` every
:class:`~repro.execution.results.RunResult` and
:class:`~repro.execution.adaptive.AdaptiveResult` is checked on the way
out, and any violation raises :class:`~repro.errors.AuditError` instead
of biasing a table.

Invariants checked (see DESIGN.md §7 for the full list):

* ``result.cost == result.ledger.total()`` to 1e-9 — no dollar enters
  the headline number without a ledger line, none leaves.
* The ``spot`` ledger category is exactly the per-group records' costs,
  line for line; only {spot, ondemand, storage} categories exist.
* The ``ondemand`` category reconciles with ``completed_by`` and the
  fallback fleet rate; spot completion implies zero on-demand dollars.
* Under single-shot semantics each record's spot cost reproduces from
  the trace and the billing policy (``billed_spot_cost``).
* Storage dollars reproduce from the checkpoint-write timeline
  (``checkpoint_storage_cost``), and are zero when accounting is off.
* Adaptive banked progress is monotone and contiguous across windows.

Audits run only when enabled, so the production path pays nothing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..cloud.billing import BillingPolicy, CONTINUOUS
from ..errors import AuditError

#: Conservation tolerance: dollars are sums of O(1)-magnitude products,
#: so anything past 1e-9 absolute is a logic error, not float noise.
TOLERANCE = 1e-9

_KNOWN_CATEGORIES = {"spot", "ondemand", "storage"}


def _fail(what: str, detail: str) -> None:
    raise AuditError(f"audit failed [{what}]: {detail}")


def _close(a: float, b: float, tol: float = TOLERANCE) -> bool:
    return abs(a - b) <= tol


def audit_run_result(
    problem,
    decision,
    result,
    history=None,
    billing: BillingPolicy = CONTINUOUS,
    semantics: str = "single-shot",
    account_storage: bool = False,
) -> None:
    """Assert every conservation invariant on one replayed result.

    ``history`` enables the deep re-derivation of per-record spot costs
    from the trace; without it only the ledger-internal invariants run.
    """
    ledger = result.ledger
    if not _close(result.cost, ledger.total()):
        _fail(
            "cost-conservation",
            f"cost={result.cost!r} != ledger.total()={ledger.total()!r} "
            f"(diff {result.cost - ledger.total():.3e})",
        )
    categories = set(ledger.by_category())
    if not categories <= _KNOWN_CATEGORIES:
        _fail(
            "ledger-categories",
            f"unknown categories {sorted(categories - _KNOWN_CATEGORIES)}",
        )

    records = list(result.group_records)
    spot_items = [item for item in ledger.items if item.category == "spot"]
    if len(spot_items) != len(records):
        _fail(
            "spot-lines",
            f"{len(spot_items)} spot ledger lines for {len(records)} records",
        )
    for item, rec in zip(spot_items, records):
        if item.dollars != rec.spot_cost:
            _fail(
                "spot-lines",
                f"ledger line {item.description!r} carries {item.dollars!r}, "
                f"record for {rec.key} cost {rec.spot_cost!r}",
            )

    ondemand = problem.ondemand_options[decision.ondemand_index]
    od_total = ledger.total("ondemand")
    if result.completed_by == "ondemand":
        expected = (
            ondemand.full_run_cost
            if not decision.groups
            else result.ondemand_hours * ondemand.fleet_rate
        )
        if not _close(od_total, expected):
            _fail(
                "ondemand-reconcile",
                f"ledger ondemand ${od_total!r} != billed "
                f"{result.ondemand_hours!r} h x ${ondemand.fleet_rate!r}/h",
            )
    elif result.completed_by is not None:
        if od_total != 0.0 or result.ondemand_hours != 0.0:
            _fail(
                "ondemand-reconcile",
                f"spot completion on {result.completed_by} but ledger shows "
                f"${od_total!r} on-demand over {result.ondemand_hours!r} h",
            )
        if not any(
            rec.completed and str(rec.key) == result.completed_by
            for rec in records
        ):
            _fail(
                "completion",
                f"completed_by={result.completed_by!r} has no completed record",
            )

    for gd, rec in zip(decision.groups, records):
        spec = problem.groups[gd.group_index]
        if rec.spot_cost < 0:
            _fail("record", f"{rec.key} negative spot cost {rec.spot_cost!r}")
        if rec.launched and rec.launch_time is None:
            _fail("record", f"{rec.key} launched without a launch time")
        if rec.launch_time is not None and rec.end_time < rec.launch_time - TOLERANCE:
            _fail(
                "record",
                f"{rec.key} ends at {rec.end_time!r} before launch "
                f"{rec.launch_time!r}",
            )
        if rec.saved > rec.productive + TOLERANCE:
            _fail(
                "record",
                f"{rec.key} saved {rec.saved!r} exceeds productive "
                f"{rec.productive!r}",
            )
        # Persistent groups relaunch after every death and recompute the
        # work lost since the last checkpoint, so their total productive
        # time legitimately exceeds the job's work; only single-shot
        # records are bounded by it.
        if semantics == "single-shot" and rec.productive > spec.exec_time + TOLERANCE:
            _fail(
                "record",
                f"{rec.key} productive {rec.productive!r} exceeds work "
                f"{spec.exec_time!r}",
            )

    if history is not None and semantics == "single-shot":
        _audit_spot_costs(problem, decision, records, history, billing)

    storage_total = ledger.total("storage")
    if not account_storage:
        if storage_total != 0.0:
            _fail("storage", f"accounting off but ledger shows ${storage_total!r}")
    else:
        from ..execution.replay import checkpoint_storage_cost

        run_end = result.start_time + result.makespan
        expected = checkpoint_storage_cost(
            problem, decision, records, run_end
        )
        if not _close(storage_total, expected):
            _fail(
                "storage",
                f"ledger ${storage_total!r} != checkpoint timeline "
                f"${expected!r} at run_end={run_end!r}",
            )


def _audit_spot_costs(problem, decision, records, history, billing) -> None:
    """Re-derive each single-shot record's bill from the trace."""
    from ..cloud.spot import billed_spot_cost

    for gd, rec in zip(decision.groups, records):
        spec = problem.groups[gd.group_index]
        if not rec.launched or rec.launch_time is None:
            if rec.spot_cost != 0.0:
                _fail(
                    "billing",
                    f"{rec.key} never launched but billed {rec.spot_cost!r}",
                )
            continue
        trace = history.get(spec.key)
        end = min(rec.end_time, trace.end_time)
        expected = (
            billed_spot_cost(trace, rec.launch_time, end, rec.terminated, billing)
            * spec.n_instances
            if end > rec.launch_time
            else 0.0
        )
        if not _close(expected, rec.spot_cost):
            _fail(
                "billing",
                f"{rec.key} billed {rec.spot_cost!r}, trace x policy gives "
                f"{expected!r} over [{rec.launch_time!r}, {end!r})",
            )


def audit_adaptive_result(result) -> None:
    """Assert ledger conservation and banked-progress monotonicity."""
    ledger = result.ledger
    if not _close(result.cost, ledger.total()):
        _fail(
            "adaptive-cost-conservation",
            f"cost={result.cost!r} != ledger.total()={ledger.total()!r} "
            f"(diff {result.cost - ledger.total():.3e})",
        )
    categories = set(ledger.by_category())
    if not categories <= _KNOWN_CATEGORIES:
        _fail(
            "ledger-categories",
            f"unknown categories {sorted(categories - _KNOWN_CATEGORIES)}",
        )
    prev_after: Optional[float] = None
    prev_index = -1
    for w in result.windows:
        if w.index <= prev_index:
            _fail("adaptive-windows", f"window indices not increasing at {w.index}")
        prev_index = w.index
        if w.t1 <= w.t0:
            _fail("adaptive-windows", f"window {w.index} empty [{w.t0}, {w.t1})")
        if not (0.0 <= w.fraction_before <= w.fraction_after <= 1.0 + TOLERANCE):
            _fail(
                "adaptive-progress",
                f"window {w.index} fractions not monotone in [0,1]: "
                f"{w.fraction_before!r} -> {w.fraction_after!r}",
            )
        if prev_after is not None and not _close(w.fraction_before, prev_after):
            _fail(
                "adaptive-progress",
                f"window {w.index} starts at {w.fraction_before!r} but the "
                f"previous window banked {prev_after!r}",
            )
        prev_after = w.fraction_after
        if w.cost < 0:
            _fail("adaptive-windows", f"window {w.index} negative cost {w.cost!r}")


def assert_event_parity(
    a: Sequence, b: Sequence, what: str = "event streams"
) -> None:
    """Assert two event streams are identical, with a useful diff."""
    if len(a) != len(b):
        _fail("event-parity", f"{what} differ in length: {len(a)} vs {len(b)}")
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            _fail("event-parity", f"{what} diverge at event {i}: {ea} vs {eb}")
