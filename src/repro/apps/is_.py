"""IS — Integer Sort (communication-intensive).

Bucket sort of uniformly random keys: each iteration histograms local
keys (cheap), allreduces the bucket counts, then redistributes every key
to its bucket owner with an all-to-all-v.  Arithmetic is trivial; the
exchange *is* the kernel.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile, CollectiveCounts
from .base import MPIApplication, WorkloadCategory
from .npb import IS_KEYS


class IS(MPIApplication):
    name = "IS"
    category = WorkloadCategory.COMMUNICATION

    ITERATIONS = 40
    #: Exchanges per iteration (key redistribution + verification pass).
    EXCHANGES_PER_ITER = 60
    #: Instructions per key per iteration (histogram + rank computation).
    INSTR_PER_KEY = 600.0
    BYTES_PER_KEY = 4.0
    MEMORY_GB_B = 8.0

    def single_run_profile(self) -> ApplicationProfile:
        keys = IS_KEYS[self.problem_class]
        vol = keys / IS_KEYS["B"]
        n = self.n_processes
        keys_per_proc = keys / n
        n_exchanges = self.ITERATIONS * self.EXCHANGES_PER_ITER
        return ApplicationProfile(
            name=f"IS.{self.problem_class}",
            n_processes=n,
            instr_giga=self.INSTR_PER_KEY * keys * self.ITERATIONS / 1e9,
            collectives={
                "alltoall": CollectiveCounts(
                    keys_per_proc * self.BYTES_PER_KEY * 2.0 * n_exchanges,
                    float(n_exchanges),
                ),
                "allreduce": CollectiveCounts(
                    # bucket-count reduction: 1024 buckets x 4 bytes
                    4096.0 * self.ITERATIONS,
                    float(self.ITERATIONS),
                ),
            },
            memory_gb_per_process=self.MEMORY_GB_B * vol / n,
        )

    def rank_program(
        self, mpi: RankHandle, iterations: int = 3, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """Bucket sort step: histogram, count reduction, redistribution."""
        n = mpi.size
        keys_per_proc = IS_KEYS[self.problem_class] * scale / n
        work = self.INSTR_PER_KEY * keys_per_proc / 1e9
        total = 0
        for _ in range(iterations):
            yield from mpi.compute(work)
            counts = yield from mpi.allreduce(1, nbytes=4096.0)
            outbox = [mpi.rank] * n
            inbox = yield from mpi.alltoall(
                outbox, nbytes=keys_per_proc * self.BYTES_PER_KEY
            )
            total = counts + sum(inbox)
        return total
