"""CG — Conjugate Gradient (extension; not in the paper's evaluation).

Estimates the smallest eigenvalue of a sparse symmetric matrix.  Each
iteration is a sparse matrix-vector product whose irregular row
partitioning exchanges boundary vector segments, plus two global dot
products.  CG at scale is *latency*-bound: the per-iteration allreduces
serialise the pipeline, so fat nodes (fewer, faster hops) win even
though the byte volume is small.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile, CollectiveCounts
from .base import MPIApplication, WorkloadCategory


class CG(MPIApplication):
    name = "CG"
    category = WorkloadCategory.COMMUNICATION

    #: Matrix rows per class (NPB 2.4) and nonzeros per row.
    ROWS = {"S": 1_400, "W": 7_000, "A": 14_000, "B": 75_000, "C": 150_000}
    NNZ_PER_ROW = {"S": 7, "W": 8, "A": 11, "B": 13, "C": 15}
    #: 75 CG iterations x 4 outer steps, extended x30 like the
    #: paper's repeated-execution workloads.
    ITERATIONS = 75 * 4 * 30
    INSTR_PER_NNZ = 40.0
    DOTS_PER_ITER = 2
    #: Boundary exchange volume per rank per iteration, bytes.
    HALO_BYTES_PER_ROWSEG = 8.0

    def single_run_profile(self) -> ApplicationProfile:
        rows = self.ROWS[self.problem_class]
        nnz = rows * self.NNZ_PER_ROW[self.problem_class] * 64  # band blocks
        n = self.n_processes
        halo_per_proc = self.HALO_BYTES_PER_ROWSEG * rows / max(1, n**0.5)
        return ApplicationProfile(
            name=f"CG.{self.problem_class}",
            n_processes=n,
            instr_giga=self.INSTR_PER_NNZ * nnz * self.ITERATIONS / 1e9,
            p2p_bytes=halo_per_proc * n * self.ITERATIONS,
            p2p_messages=float(4 * n * self.ITERATIONS),
            collectives={
                "allreduce": CollectiveCounts(
                    8.0 * self.DOTS_PER_ITER * self.ITERATIONS,
                    float(self.DOTS_PER_ITER * self.ITERATIONS),
                )
            },
            memory_gb_per_process=nnz * 12.0 / max(1, n) / 1024.0**3,
        )

    def rank_program(
        self, mpi: RankHandle, iterations: int = 3, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """One CG iteration: SpMV with halo exchange, two dot products."""
        rows = self.ROWS[self.problem_class]
        nnz = rows * self.NNZ_PER_ROW[self.problem_class] * 64 * scale
        work = self.INSTR_PER_NNZ * nnz / 1e9 / mpi.size
        halo = self.HALO_BYTES_PER_ROWSEG * rows * scale
        rho = 1.0
        for _ in range(iterations):
            yield from mpi.compute(work)
            if mpi.size > 1:
                peer = mpi.size - 1 - mpi.rank  # transpose partner
                if peer != mpi.rank:
                    got = yield from mpi.sendrecv(peer, halo, peer, payload=rho)
                    rho = float(got)
            rho = yield from mpi.allreduce(rho, nbytes=8.0)
            alpha = yield from mpi.allreduce(rho * 0.5, nbytes=8.0)
            rho = alpha
        return rho
