"""Workload models.

The paper evaluates NPB 2.4 kernels — BT, SP, LU (compute-intensive),
FT, IS (communication-intensive), BTIO (IO-intensive) — at 128 processes
CLASS B, each run 100-200 times back to back, plus LAMMPS with a fixed
problem size and varying process counts.

Each application here provides:

* :meth:`~repro.apps.base.MPIApplication.profile` — the TAU-style
  aggregate profile of the *extended* workload (single-run counts scaled
  by ``repeats``), which drives the Section 4.4 time/checkpoint
  estimators, and
* :meth:`~repro.apps.base.MPIApplication.rank_program` — a runnable
  scaled-down rank program with the same phase structure, executed on
  the discrete-event MPI runtime in tests and examples.

Calibration constants are documented per kernel; they are chosen so the
*relative* execution times across instance types reproduce the paper's
observations (which instance class wins for which application class),
not to match absolute EC2 wall clocks.
"""

from .base import MPIApplication, WorkloadCategory
from .bt import BT
from .sp import SP
from .lu import LU
from .ft import FT
from .is_ import IS
from .btio import BTIO
from .lammps import LAMMPS
from .cg import CG
from .mg import MG

#: The kernels the paper's evaluation uses (Section 5.1).
PAPER_APPS = ("BT", "SP", "LU", "FT", "IS", "BTIO")

#: Extensions beyond the paper (same machinery, extra NPB kernels).
EXTRA_APPS = ("CG", "MG")


def make_app(name: str, **kwargs) -> MPIApplication:
    """Factory by kernel name (case-insensitive)."""
    table = {
        "BT": BT,
        "SP": SP,
        "LU": LU,
        "FT": FT,
        "IS": IS,
        "BTIO": BTIO,
        "LAMMPS": LAMMPS,
        "CG": CG,
        "MG": MG,
    }
    try:
        cls = table[name.upper()]
    except KeyError:
        raise ValueError(f"unknown application {name!r}; known: {sorted(table)}") from None
    return cls(**kwargs)


__all__ = [
    "MPIApplication",
    "WorkloadCategory",
    "BT",
    "SP",
    "LU",
    "FT",
    "IS",
    "BTIO",
    "LAMMPS",
    "CG",
    "MG",
    "PAPER_APPS",
    "EXTRA_APPS",
    "make_app",
]
