"""BTIO — BT with periodic solution output (IO-intensive).

Identical solver to BT plus a full solution dump every ``IO_EVERY``
iterations.  Aggregate disk bandwidth scales with the *number* of
instances, so a 128-instance m1.small fleet out-writes a 4-instance
cc2.8xlarge fleet by a wide margin — the paper's explanation for why
Marathe (locked to cc2.8xlarge) costs *more* than the on-demand baseline
on BTIO.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile
from .base import WorkloadCategory
from .npb import volume_factor
from .bt import BT


class BTIO(BT):
    name = "BTIO"
    category = WorkloadCategory.IO

    #: Dump the full solution every this many iterations.
    IO_EVERY = 5
    #: Bytes written per CLASS B dump (5 doubles per grid point, all ranks,
    #: plus the verification read-back pass).
    DUMP_BYTES_B = 3.0e9

    def single_run_profile(self) -> ApplicationProfile:
        base = super().single_run_profile()
        vol = volume_factor(self.problem_class)
        n_dumps = self.ITERATIONS // self.IO_EVERY
        io_bytes = self.DUMP_BYTES_B * vol * n_dumps
        return ApplicationProfile(
            name=f"BTIO.{self.problem_class}",
            n_processes=base.n_processes,
            instr_giga=base.instr_giga,
            p2p_bytes=base.p2p_bytes,
            p2p_messages=base.p2p_messages,
            collectives=base.collectives,
            io_seq_bytes=io_bytes,
            memory_gb_per_process=base.memory_gb_per_process,
        )

    def rank_program(
        self, mpi: RankHandle, iterations: int = 3, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """BT sweep plus a solution dump every IO_EVERY iterations."""
        n = mpi.size
        dump_bytes = self.DUMP_BYTES_B * scale / n
        result = None
        for it in range(iterations):
            result = yield from super().rank_program(mpi, iterations=1, scale=scale)
            if (it + 1) % self.IO_EVERY == 0 or it == iterations - 1:
                yield from mpi.io(dump_bytes, sequential=True)
        return result
