"""BT — Block Tri-diagonal solver (compute-intensive).

BT solves three sets of block-tridiagonal systems per iteration with a
multi-partition decomposition; each rank exchanges cell faces with six
neighbours per sweep.  Computation dominates: the paper groups BT with
SP and LU as computation-intensive, where cheaper low-power instances
win once the deadline allows.
"""

from __future__ import annotations

from .base import WorkloadCategory
from .npb import StructuredGridKernel


class BT(StructuredGridKernel):
    name = "BT"
    category = WorkloadCategory.COMPUTE

    ITERATIONS = 800
    INSTR_GIGA_B = 100_000.0
    P2P_BYTES_B = 72.0e9
    MSGS_PER_ITER_PER_PROC = 6
    MEMORY_GB_B = 45.0
