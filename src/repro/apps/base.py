"""Application abstraction.

An :class:`MPIApplication` is characterised by a *single-run* profile
(one execution of the kernel) and a ``repeats`` count — the paper runs
each NPB kernel 100-200 times back to back "to extend to large scale
computing".  The extended profile is the single-run profile scaled by
``repeats``; that is what the optimizer sees.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Generator

from ..errors import ConfigurationError
from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile


class WorkloadCategory(enum.Enum):
    """The paper's three application classes (Section 5.1)."""

    COMPUTE = "computation-intensive"
    COMMUNICATION = "communication-intensive"
    IO = "io-intensive"


class MPIApplication(ABC):
    """Base class for the NPB kernels and LAMMPS."""

    #: Kernel name, e.g. ``"BT"``.
    name: str = "?"
    #: Which of the paper's classes this kernel belongs to.
    category: WorkloadCategory = WorkloadCategory.COMPUTE

    def __init__(
        self,
        problem_class: str = "B",
        n_processes: int = 128,
        repeats: int = 150,
    ) -> None:
        if n_processes < 1:
            raise ConfigurationError("n_processes must be >= 1")
        if repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        if problem_class not in self.problem_classes():
            raise ConfigurationError(
                f"{self.name}: unknown problem class {problem_class!r}; "
                f"known: {sorted(self.problem_classes())}"
            )
        self.problem_class = problem_class
        self.n_processes = n_processes
        self.repeats = repeats

    # ------------------------------------------------------------------
    @classmethod
    def problem_classes(cls) -> tuple[str, ...]:
        """Problem classes this kernel supports (NPB S/W/A/B/C)."""
        return ("S", "W", "A", "B", "C")

    @abstractmethod
    def single_run_profile(self) -> ApplicationProfile:
        """Profile of ONE execution of the kernel."""

    def profile(self) -> ApplicationProfile:
        """Profile of the extended workload (``repeats`` executions)."""
        single = self.single_run_profile()
        return single.scaled(
            self.repeats,
            name=f"{self.name}.{self.problem_class} x{self.repeats}",
        )

    @abstractmethod
    def rank_program(
        self, mpi: RankHandle, iterations: int = 3, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """A runnable scaled-down rank program for the DES runtime.

        ``iterations`` replaces the kernel's iteration count and
        ``scale`` multiplies work/payload sizes, so tests can run the
        real phase structure in milliseconds.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(class={self.problem_class}, "
            f"N={self.n_processes}, repeats={self.repeats})"
        )


def class_volume_factor(problem_class: str, grids: dict[str, float]) -> float:
    """Problem-size factor relative to CLASS B from a per-class table."""
    try:
        return grids[problem_class] / grids["B"]
    except KeyError:
        raise ConfigurationError(f"unknown problem class {problem_class!r}") from None
