"""LAMMPS — molecular dynamics with a fixed problem size (strong scaling).

The paper fixes the atom count and varies the process count: with few
processes each rank owns many atoms (compute-dominated, cheap instances
win); with many processes the halo surface per rank shrinks slower than
the volume and the PPPM long-range solver's FFT transposes grow with the
process count, so communication dominates and the optimizer moves to
cc2.8xlarge — shrinking the savings.

Strong-scaling mechanics per rank and step:

* compute ~ ``atoms / p`` (pair forces, neighbour lists),
* halo exchange ~ ``(atoms / p)^(2/3)`` (spatial-decomposition surface),
* PPPM transpose: an alltoall whose latency term grows with ``p``.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile, CollectiveCounts
from .base import MPIApplication, WorkloadCategory


class LAMMPS(MPIApplication):
    name = "LAMMPS"
    category = WorkloadCategory.COMPUTE  # at low process counts

    #: Problem-class table maps to atom counts (fixed-size MD box).
    ATOMS = {"S": 2_000, "W": 32_000, "A": 250_000, "B": 1_000_000, "C": 4_000_000}

    INSTR_PER_ATOM_STEP = 10_000.0  # pair forces + neighbour maintenance
    HALO_BYTES_COEFF = 200.0  # bytes per (atoms/p)^(2/3) per step
    HALO_MSGS_PER_STEP = 6  # face neighbours
    PPPM_GRID_BYTES = 4.0e6  # total FFT grid per transpose
    PPPM_TRANSPOSES_PER_STEP = 2
    MEMORY_BYTES_PER_ATOM = 1_000.0

    def __init__(
        self,
        problem_class: str = "B",
        n_processes: int = 128,
        repeats: int = 1,
        steps: int = 200_000,
    ) -> None:
        super().__init__(problem_class, n_processes, repeats)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.steps = steps

    @property
    def atoms(self) -> int:
        return self.ATOMS[self.problem_class]

    def single_run_profile(self) -> ApplicationProfile:
        n = self.n_processes
        atoms_per_proc = self.atoms / n
        halo_per_proc_step = self.HALO_BYTES_COEFF * atoms_per_proc ** (2.0 / 3.0)
        n_transposes = self.steps * self.PPPM_TRANSPOSES_PER_STEP
        return ApplicationProfile(
            name=f"LAMMPS.{self.problem_class}.p{n}",
            n_processes=n,
            instr_giga=self.INSTR_PER_ATOM_STEP * self.atoms * self.steps / 1e9,
            p2p_bytes=halo_per_proc_step * n * self.steps,
            p2p_messages=float(self.HALO_MSGS_PER_STEP * n * self.steps),
            collectives={
                "alltoall": CollectiveCounts(
                    (self.PPPM_GRID_BYTES / n) * n_transposes, float(n_transposes)
                ),
                "allreduce": CollectiveCounts(
                    # thermo output: energy/pressure reductions
                    24.0 * self.steps,
                    float(self.steps),
                ),
            },
            memory_gb_per_process=self.MEMORY_BYTES_PER_ATOM
            * atoms_per_proc
            / 1024.0**3,
        )

    def rank_program(
        self, mpi: RankHandle, iterations: int = 3, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """One MD step: forces, halo exchange, PPPM transpose, thermo."""
        n = mpi.size
        atoms_per_proc = max(1.0, self.atoms * scale / n)
        halo_bytes = self.HALO_BYTES_COEFF * atoms_per_proc ** (2.0 / 3.0)
        work = self.INSTR_PER_ATOM_STEP * atoms_per_proc / 1e9
        energy = 0.0
        for _ in range(iterations):
            yield from mpi.compute(work)
            if n > 1:
                left = (mpi.rank - 1) % n
                right = (mpi.rank + 1) % n
                yield from mpi.send(right, halo_bytes, payload=energy)
                yield from mpi.send(left, halo_bytes, payload=energy)
                yield from mpi.recv(left)
                yield from mpi.recv(right)
                outbox = [mpi.rank] * n
                yield from mpi.alltoall(outbox, nbytes=self.PPPM_GRID_BYTES * scale / n)
            energy = yield from mpi.allreduce(float(mpi.rank), nbytes=24.0)
        return energy
