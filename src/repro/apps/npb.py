"""Shared NPB machinery.

The three structured-grid kernels (BT, SP, LU) share their phase shape:
per iteration, every rank does a slab of grid compute and exchanges halo
faces with a fixed set of neighbours.  Work scales with grid *volume*,
halo traffic with grid *surface* — that is what the per-class factors
encode.

Calibration: CLASS B totals are set so the paper's *extended* workload
(150 back-to-back runs at 128 processes) lands in the single-digit-hours
range on 2014 instance fleets, with the relative times across instance
types reproducing Section 5.3.1: compute kernels fastest on cc2.8xlarge
but cheapest on m1.small/medium, FT/IS dominated by the interconnect,
BTIO dominated by aggregate disk bandwidth.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile, CollectiveCounts
from .base import MPIApplication

#: Grid edge per problem class for BT/SP/LU (NPB 2.4).
GRID_EDGE = {"S": 12, "W": 24, "A": 64, "B": 102, "C": 162}

#: Total FFT grid points per class for FT.
FT_POINTS = {
    "S": 64**3,
    "W": 128 * 64 * 64,
    "A": 256 * 256 * 128,
    "B": 512 * 256 * 256,
    "C": 512**3,
}

#: Keys to sort per class for IS.
IS_KEYS = {"S": 2**16, "W": 2**20, "A": 2**23, "B": 2**25, "C": 2**27}


def volume_factor(problem_class: str) -> float:
    """Grid-volume factor relative to CLASS B (BT/SP/LU)."""
    return (GRID_EDGE[problem_class] / GRID_EDGE["B"]) ** 3


def surface_factor(problem_class: str) -> float:
    """Grid-surface factor relative to CLASS B (halo traffic)."""
    return (GRID_EDGE[problem_class] / GRID_EDGE["B"]) ** 2


class StructuredGridKernel(MPIApplication):
    """Common profile/program shape of BT, SP and LU.

    Subclasses set the CLASS B calibration constants:

    * ``ITERATIONS`` — solver iterations per run,
    * ``INSTR_GIGA_B`` — total giga-instructions of one CLASS B run,
    * ``P2P_BYTES_B`` — total halo bytes of one CLASS B run,
    * ``MSGS_PER_ITER_PER_PROC`` — halo messages per rank per iteration,
    * ``MEMORY_GB_B`` — total resident set of one CLASS B run (all ranks).
    """

    ITERATIONS: int = 200
    INSTR_GIGA_B: float = 25_000.0
    P2P_BYTES_B: float = 18.0e9
    MSGS_PER_ITER_PER_PROC: int = 6
    MEMORY_GB_B: float = 45.0

    def single_run_profile(self) -> ApplicationProfile:
        vol = volume_factor(self.problem_class)
        surf = surface_factor(self.problem_class)
        n = self.n_processes
        return ApplicationProfile(
            name=f"{self.name}.{self.problem_class}",
            n_processes=n,
            instr_giga=self.INSTR_GIGA_B * vol,
            p2p_bytes=self.P2P_BYTES_B * surf,
            p2p_messages=float(self.ITERATIONS * self.MSGS_PER_ITER_PER_PROC * n),
            collectives={
                # Residual-norm check once per iteration.
                "allreduce": CollectiveCounts(8.0 * self.ITERATIONS, float(self.ITERATIONS))
            },
            memory_gb_per_process=self.MEMORY_GB_B * vol / n,
        )

    def rank_program(
        self, mpi: RankHandle, iterations: int = 3, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """Halo exchange with ring neighbours + compute + residual check."""
        n = mpi.size
        halo_bytes = self.P2P_BYTES_B * scale / max(1, n)
        work = self.INSTR_GIGA_B * scale / max(1, n)
        residual = 0.0
        for _ in range(iterations):
            yield from mpi.compute(work)
            left = (mpi.rank - 1) % n
            right = (mpi.rank + 1) % n
            if n > 1:
                yield from mpi.send(right, halo_bytes, payload=mpi.rank)
                yield from mpi.send(left, halo_bytes, payload=mpi.rank)
                got_l = yield from mpi.recv(left)
                got_r = yield from mpi.recv(right)
                residual = float(got_l + got_r)
            residual = yield from mpi.allreduce(residual, nbytes=8.0)
        return residual
