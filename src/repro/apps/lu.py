"""LU — Lower-Upper Gauss-Seidel solver (compute-intensive).

LU's wavefront (pipelined SSOR) sweeps send many *small* messages — the
2x2 pencil decomposition trades volume for message count — so its
network term is latency- rather than bandwidth-bound.
"""

from __future__ import annotations

from .base import WorkloadCategory
from .npb import StructuredGridKernel


class LU(StructuredGridKernel):
    name = "LU"
    category = WorkloadCategory.COMPUTE

    ITERATIONS = 1000
    INSTR_GIGA_B = 96_000.0
    P2P_BYTES_B = 32.0e9
    MSGS_PER_ITER_PER_PROC = 16  # pipelined wavefront: many small messages
    MEMORY_GB_B = 42.0
