"""FT — 3D Fast Fourier Transform (communication-intensive).

Each time step applies forward/inverse 3D FFTs whose transpose steps are
all-to-all exchanges of the full grid.  On sub-gigabit 2014 instances
the transposes dominate; on cc2.8xlarge the 10 GbE NIC plus the 24/32
in-node neighbours (shared memory) make it the clear winner — the
paper's central observation for communication-intensive kernels.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile, CollectiveCounts
from .base import MPIApplication, WorkloadCategory
from .npb import FT_POINTS


class FT(MPIApplication):
    name = "FT"
    category = WorkloadCategory.COMMUNICATION

    #: Time steps per run and transposes per step (forward + inverse FFT).
    ITERATIONS = 80
    TRANSPOSES_PER_ITER = 6
    #: Total giga-instructions of one CLASS B run (FFT butterflies).
    INSTR_GIGA_B = 96_000.0
    #: Bytes per grid point (complex double).
    BYTES_PER_POINT = 16.0
    #: Checksum reduction per iteration.
    MEMORY_GB_B = 32.0

    def single_run_profile(self) -> ApplicationProfile:
        points = FT_POINTS[self.problem_class]
        vol = points / FT_POINTS["B"]
        n = self.n_processes
        # Per-process buffer in one transpose: the rank's slab.
        slab_bytes = points * self.BYTES_PER_POINT / n
        n_transposes = self.ITERATIONS * self.TRANSPOSES_PER_ITER
        return ApplicationProfile(
            name=f"FT.{self.problem_class}",
            n_processes=n,
            instr_giga=self.INSTR_GIGA_B * vol,
            collectives={
                "alltoall": CollectiveCounts(
                    slab_bytes * n_transposes, float(n_transposes)
                ),
                "allreduce": CollectiveCounts(
                    16.0 * self.ITERATIONS, float(self.ITERATIONS)
                ),
            },
            memory_gb_per_process=self.MEMORY_GB_B * vol / n,
        )

    def rank_program(
        self, mpi: RankHandle, iterations: int = 3, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """FFT step: local butterflies, transpose (alltoall), checksum."""
        n = mpi.size
        points = FT_POINTS[self.problem_class] * scale
        slab_bytes = points * self.BYTES_PER_POINT / n
        work = self.INSTR_GIGA_B * scale / n
        checksum = 0.0
        for _ in range(iterations):
            yield from mpi.compute(work)
            outbox = [mpi.rank] * n
            inbox = yield from mpi.alltoall(outbox, nbytes=slab_bytes)
            yield from mpi.compute(work)
            checksum = yield from mpi.allreduce(float(sum(inbox)), nbytes=16.0)
        return checksum
