"""SP — Scalar Penta-diagonal solver (compute-intensive).

Same multi-partition structure as BT but with scalar penta-diagonal
systems: twice the iterations, slightly less arithmetic per iteration,
somewhat more halo traffic.
"""

from __future__ import annotations

from .base import WorkloadCategory
from .npb import StructuredGridKernel


class SP(StructuredGridKernel):
    name = "SP"
    category = WorkloadCategory.COMPUTE

    ITERATIONS = 1600
    INSTR_GIGA_B = 88_000.0
    P2P_BYTES_B = 96.0e9
    MSGS_PER_ITER_PER_PROC = 6
    MEMORY_GB_B = 40.0
