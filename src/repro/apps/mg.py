"""MG — MultiGrid (extension; not in the paper's evaluation).

V-cycle multigrid on a 3D grid: smoothing sweeps exchange halos at
every level, but coarse levels carry geometrically less data, so the
total traffic is dominated by the finest level while the *message
count* scales with the level count — a latency/bandwidth mix between
BT's halo pattern and CG's latency-bound reductions.
"""

from __future__ import annotations

from math import log2
from typing import Any, Generator

from ..mpi.communicator import RankHandle
from ..mpi.profile import ApplicationProfile, CollectiveCounts
from .base import MPIApplication, WorkloadCategory


class MG(MPIApplication):
    name = "MG"
    category = WorkloadCategory.COMPUTE

    #: Grid edge per class (NPB 2.4 MG).
    GRID = {"S": 32, "W": 64, "A": 256, "B": 256, "C": 512}
    ITERATIONS = {"S": 4, "W": 40, "A": 4, "B": 80, "C": 80}
    INSTR_PER_POINT_ITER = 60.0
    BYTES_PER_POINT = 8.0

    def single_run_profile(self) -> ApplicationProfile:
        edge = self.GRID[self.problem_class]
        iters = self.ITERATIONS[self.problem_class] * 4 * 30  # extended scale
        points = float(edge) ** 3
        n = self.n_processes
        levels = int(log2(edge))
        # Finest-level halo dominates volume; each level adds messages.
        face = (points ** (2.0 / 3.0)) * self.BYTES_PER_POINT
        halo_bytes = face * 6 * 2 * iters  # 6 faces, both directions
        return ApplicationProfile(
            name=f"MG.{self.problem_class}",
            n_processes=n,
            instr_giga=self.INSTR_PER_POINT_ITER * points * iters * 1.6 / 1e9,
            p2p_bytes=halo_bytes,
            p2p_messages=float(6 * levels * n * iters),
            collectives={
                "allreduce": CollectiveCounts(8.0 * iters, float(iters))
            },
            memory_gb_per_process=points * self.BYTES_PER_POINT * 1.6 / n / 1024.0**3,
        )

    def rank_program(
        self, mpi: RankHandle, iterations: int = 2, scale: float = 1e-6
    ) -> Generator[Any, Any, Any]:
        """One V-cycle: smooth/restrict down the levels, then back up."""
        edge = self.GRID[self.problem_class]
        points = (float(edge) ** 3) * scale
        levels = max(1, int(log2(edge)) - 2)
        residual = 1.0
        for _ in range(iterations):
            for depth in range(levels):  # down-sweep
                level_points = points / (8.0**depth)
                yield from mpi.compute(
                    self.INSTR_PER_POINT_ITER * level_points / 1e9 / mpi.size
                )
                if mpi.size > 1:
                    nxt = (mpi.rank + 1) % mpi.size
                    prv = (mpi.rank - 1) % mpi.size
                    face = (level_points ** (2.0 / 3.0)) * self.BYTES_PER_POINT
                    yield from mpi.sendrecv(nxt, face, prv, payload=depth)
            for depth in reversed(range(levels)):  # up-sweep
                level_points = points / (8.0**depth)
                yield from mpi.compute(
                    self.INSTR_PER_POINT_ITER * level_points / 2e9 / mpi.size
                )
            residual = yield from mpi.allreduce(residual * 0.5, nbytes=8.0)
        return residual
