"""TAU-like application profiles (Section 4.4).

The paper characterises an application as
``<#instr, Data_send, Data_recv, IO_seq, IO_rnd>`` plus the process
count; the estimator turns that into per-instance-type execution times.
We additionally break communication into point-to-point and per-
collective volumes, because the collective algorithm determines how much
of the payload actually crosses the network (an allreduce moves ~2x its
buffer, an alltoall moves ``(p-1)/p`` of it, ...).

Profiles are additive — running an application twice doubles every
counter — so repeated executions (the paper runs each NPB kernel
100-200x) are expressed with :meth:`ApplicationProfile.scaled`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from ..errors import ConfigurationError
from ..units import check_nonnegative


@dataclass(frozen=True)
class CollectiveCounts:
    """Volume and invocation count of one collective type."""

    total_bytes: float  # sum over all invocations of per-process payload
    count: float  # number of invocations

    def __post_init__(self) -> None:
        check_nonnegative("total_bytes", self.total_bytes)
        check_nonnegative("count", self.count)

    def __add__(self, other: "CollectiveCounts") -> "CollectiveCounts":
        return CollectiveCounts(
            self.total_bytes + other.total_bytes, self.count + other.count
        )

    def scaled(self, factor: float) -> "CollectiveCounts":
        return CollectiveCounts(self.total_bytes * factor, self.count * factor)


@dataclass(frozen=True)
class ApplicationProfile:
    """Aggregate resource demands of one application execution.

    Attributes
    ----------
    name:
        Application identifier (e.g. ``"BT.B x150"``).
    n_processes:
        ``N`` — fixed for the execution (a paper assumption).
    instr_giga:
        Total giga-instructions across all ranks.
    p2p_bytes:
        Total bytes sent point-to-point (``Data_send``; ``Data_recv`` is
        symmetric for the paper's kernels).
    p2p_messages:
        Total point-to-point messages (drives the latency term).
    collectives:
        Per-collective :class:`CollectiveCounts`, keyed by collective
        name.  ``total_bytes`` is the per-process payload summed over
        invocations.
    io_seq_bytes / io_rnd_bytes:
        Sequential and random local-disk traffic (``IO_seq``/``IO_rnd``).
    memory_gb_per_process:
        Resident set per rank — this is what a coordinated checkpoint
        must persist, so it sizes ``O_i`` and ``R_i``.
    """

    name: str
    n_processes: int
    instr_giga: float
    p2p_bytes: float = 0.0
    p2p_messages: float = 0.0
    collectives: Mapping[str, CollectiveCounts] = field(default_factory=dict)
    io_seq_bytes: float = 0.0
    io_rnd_bytes: float = 0.0
    memory_gb_per_process: float = 0.1

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ConfigurationError("n_processes must be >= 1")
        check_nonnegative("instr_giga", self.instr_giga)
        check_nonnegative("p2p_bytes", self.p2p_bytes)
        check_nonnegative("p2p_messages", self.p2p_messages)
        check_nonnegative("io_seq_bytes", self.io_seq_bytes)
        check_nonnegative("io_rnd_bytes", self.io_rnd_bytes)
        check_nonnegative("memory_gb_per_process", self.memory_gb_per_process)

    @property
    def total_comm_bytes(self) -> float:
        """``Data_send`` analog: p2p plus all collective payloads."""
        return self.p2p_bytes + sum(
            c.total_bytes * self.n_processes for c in self.collectives.values()
        )

    @property
    def checkpoint_bytes(self) -> float:
        """Size of one coordinated checkpoint image (all ranks)."""
        return self.memory_gb_per_process * self.n_processes * 1024.0**3

    def scaled(self, factor: float, name: str | None = None) -> "ApplicationProfile":
        """Profile of ``factor`` back-to-back executions."""
        check_nonnegative("factor", factor)
        return replace(
            self,
            name=name if name is not None else f"{self.name} x{factor:g}",
            instr_giga=self.instr_giga * factor,
            p2p_bytes=self.p2p_bytes * factor,
            p2p_messages=self.p2p_messages * factor,
            collectives={
                k: v.scaled(factor) for k, v in self.collectives.items()
            },
            io_seq_bytes=self.io_seq_bytes * factor,
            io_rnd_bytes=self.io_rnd_bytes * factor,
        )

    def merged(self, other: "ApplicationProfile") -> "ApplicationProfile":
        """Profile of this execution followed by ``other``."""
        if other.n_processes != self.n_processes:
            raise ConfigurationError(
                "cannot merge profiles with different process counts"
            )
        colls: Dict[str, CollectiveCounts] = dict(self.collectives)
        for k, v in other.collectives.items():
            colls[k] = colls[k] + v if k in colls else v
        return replace(
            self,
            name=f"{self.name}+{other.name}",
            instr_giga=self.instr_giga + other.instr_giga,
            p2p_bytes=self.p2p_bytes + other.p2p_bytes,
            p2p_messages=self.p2p_messages + other.p2p_messages,
            collectives=colls,
            io_seq_bytes=self.io_seq_bytes + other.io_seq_bytes,
            io_rnd_bytes=self.io_rnd_bytes + other.io_rnd_bytes,
            memory_gb_per_process=max(
                self.memory_gb_per_process, other.memory_gb_per_process
            ),
        )
