"""Collective-algorithm cost formulas.

Standard algorithm costs in the alpha-beta model (Thakur et al.,
"Optimization of Collective Communication Operations in MPICH"), with
``p`` processes, per-process payload ``n`` bytes, latency ``alpha``
seconds and inverse bandwidth ``beta`` seconds/byte:

================  ==========================  =============================
collective        algorithm                   cost
================  ==========================  =============================
barrier           dissemination               ``ceil(log2 p) * alpha``
bcast             binomial tree               ``ceil(log2 p) (alpha+n beta)``
reduce            binomial tree               same as bcast
allreduce         Rabenseifner                ``2 log2 p alpha + 2 n beta (p-1)/p``
allgather         ring                        ``(p-1)(alpha + n/p beta)``
alltoall          pairwise exchange           ``(p-1)(alpha + n/p beta)``
scatter/gather    binomial tree               ``log2 p alpha + n beta (p-1)/p``
================  ==========================  =============================

For ``allgather``/``alltoall``, ``n`` is the *total* per-process buffer
(each peer receives ``n/p``).  The same formulas serve the analytic
timing estimator and the discrete-event communicator, so the two layers
agree by construction.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Callable, Dict

from ..errors import ConfigurationError


def _log2ceil(p: int) -> int:
    return ceil(log2(p)) if p > 1 else 0


def _barrier(p: int, n: float, alpha: float, beta: float) -> float:
    return _log2ceil(p) * alpha


def _bcast(p: int, n: float, alpha: float, beta: float) -> float:
    return _log2ceil(p) * (alpha + n * beta)


def _reduce(p: int, n: float, alpha: float, beta: float) -> float:
    return _log2ceil(p) * (alpha + n * beta)


def _allreduce(p: int, n: float, alpha: float, beta: float) -> float:
    if p == 1:
        return 0.0
    return 2.0 * _log2ceil(p) * alpha + 2.0 * n * beta * (p - 1) / p


def _allgather(p: int, n: float, alpha: float, beta: float) -> float:
    if p == 1:
        return 0.0
    return (p - 1) * (alpha + (n / p) * beta)


def _alltoall(p: int, n: float, alpha: float, beta: float) -> float:
    if p == 1:
        return 0.0
    return (p - 1) * (alpha + (n / p) * beta)


def _scatter(p: int, n: float, alpha: float, beta: float) -> float:
    if p == 1:
        return 0.0
    return _log2ceil(p) * alpha + n * beta * (p - 1) / p


COLLECTIVE_ALGORITHMS: Dict[str, Callable[[int, float, float, float], float]] = {
    "barrier": _barrier,
    "bcast": _bcast,
    "reduce": _reduce,
    "allreduce": _allreduce,
    "allgather": _allgather,
    "alltoall": _alltoall,
    "scatter": _scatter,
    "gather": _scatter,  # symmetric cost
}


def collective_time(
    name: str, p: int, nbytes: float, alpha: float, beta: float
) -> float:
    """Seconds for one collective of type ``name``.

    ``nbytes`` is the per-process buffer size (total buffer for
    allgather/alltoall, message size for bcast/reduce/allreduce).
    """
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
    if alpha < 0 or beta < 0:
        raise ConfigurationError("alpha and beta must be >= 0")
    try:
        fn = COLLECTIVE_ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {name!r}; known: {sorted(COLLECTIVE_ALGORITHMS)}"
        ) from None
    return fn(p, nbytes, alpha, beta)
