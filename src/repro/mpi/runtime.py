"""The simulated MPI runtime.

Launches one generator process per rank on a fresh discrete-event
engine, runs to completion, and returns wall time plus the recorded
profile.  Deadlocks (a rank waiting forever on a message or collective)
are detected when the event queue drains with ranks still alive —
something a real ``mpiexec`` job would express as a hang.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from ..cloud.instance_types import InstanceType
from ..errors import MPIRuntimeError
from ..sim.engine import Engine
from ..sim.process import Process
from ..units import SECONDS_PER_HOUR
from .communicator import RankHandle, SimCommunicator
from .network import ClusterShape
from .profile import ApplicationProfile

RankProgram = Callable[[RankHandle], Generator[Any, Any, Any]]


@dataclass(frozen=True)
class RunStats:
    """Outcome of one simulated MPI execution."""

    wall_seconds: float
    n_processes: int
    itype_name: str
    profile: ApplicationProfile
    rank_results: tuple

    @property
    def wall_hours(self) -> float:
        return self.wall_seconds / SECONDS_PER_HOUR


class MPIRuntime:
    """One ``mpiexec``-equivalent launch."""

    def __init__(
        self,
        itype: InstanceType,
        n_processes: int,
        program: RankProgram,
        name: str = "app",
        memory_gb_per_process: float = 0.1,
    ) -> None:
        self.itype = itype
        self.n_processes = n_processes
        self.program = program
        self.name = name
        self.memory_gb_per_process = memory_gb_per_process

    def run(self, max_seconds: Optional[float] = None) -> RunStats:
        engine = Engine()
        shape = ClusterShape(self.itype, self.n_processes)
        comm = SimCommunicator(engine, shape)
        procs: List[Process] = [
            Process(engine, self.program(comm.handle(r)), name=f"{self.name}.rank{r}")
            for r in range(self.n_processes)
        ]
        engine.run(until=max_seconds)
        alive = [p.name for p in procs if p.alive]
        if alive:
            state = "timed out" if max_seconds is not None else "deadlocked"
            raise MPIRuntimeError(
                f"{self.name}: {len(alive)} rank(s) {state} "
                f"at t={engine.now:.6g}s (first: {alive[0]})"
            )
        return RunStats(
            wall_seconds=engine.now,
            n_processes=self.n_processes,
            itype_name=self.itype.name,
            profile=comm.to_profile(self.name, self.memory_gb_per_process),
            rank_results=tuple(p.done.value for p in procs),
        )
