"""Cluster network model.

A cluster is ``M`` identical instances hosting ``N`` MPI processes, one
per core.  Messages between processes on the *same* instance move through
shared memory; messages between instances share the instance NIC.  The
model exposes LogGP-style parameters — latency ``alpha`` (seconds) and
inverse bandwidth ``beta`` (seconds/byte) — for both paths, which is all
the collective cost formulas and the point-to-point simulator need.

This is where the paper's instance-type trade-offs become mechanical:
cc2.8xlarge packs 32 processes per 10 GbE NIC but converts 3/4 of a
128-process job's traffic into shared-memory transfers, while m1.small
gives every process a whole (slow) NIC and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..cloud.instance_types import InstanceType
from ..errors import ConfigurationError

#: Shared-memory transfer parameters (same for all types).
INTRA_LATENCY_S = 1.0e-6
INTRA_BANDWIDTH_BPS = 3.0e9  # bytes/second per process pair

#: Cloud inter-instance latency (virtualised, 2014-era EC2).
INTER_LATENCY_S = 1.2e-4

GBPS_TO_BPS = 1.0e9 / 8.0  # gigabits/s -> bytes/s

#: Fleets spanning many instances cross oversubscribed aggregation links;
#: cc2.8xlarge placement groups (few instances) see full bisection.  The
#: factor ramps from 1 (<= OVERSUB_FREE_INSTANCES instances) to
#: OVERSUB_MAX and divides the effective inter-instance bandwidth.
OVERSUB_FREE_INSTANCES = 8
OVERSUB_MAX = 4.0


@dataclass(frozen=True)
class ClusterShape:
    """Static layout of a homogeneous MPI cluster."""

    itype: InstanceType
    n_processes: int

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ConfigurationError("n_processes must be >= 1")

    @property
    def n_instances(self) -> int:
        return ceil(self.n_processes / self.itype.vcpus)

    @property
    def procs_per_instance(self) -> int:
        return min(self.itype.vcpus, self.n_processes)

    def node_of(self, rank: int) -> int:
        """Instance index hosting ``rank`` (block placement, as OpenMPI
        fills machines in order)."""
        if not 0 <= rank < self.n_processes:
            raise ConfigurationError(
                f"rank {rank} outside [0, {self.n_processes})"
            )
        return rank // self.itype.vcpus

    @property
    def inter_node_fraction(self) -> float:
        """Probability a uniformly random peer lives on another instance."""
        if self.n_processes <= 1:
            return 0.0
        same = self.procs_per_instance - 1
        return 1.0 - same / (self.n_processes - 1)

    @property
    def aggregate_disk_bps(self) -> float:
        """Whole-fleet local-disk bandwidth in bytes/second."""
        return self.n_instances * self.itype.disk_mbps * 1024.0**2


@dataclass(frozen=True)
class NetworkModel:
    """LogGP parameters of one cluster shape."""

    shape: ClusterShape

    @property
    def inter_alpha(self) -> float:
        return INTER_LATENCY_S

    @property
    def oversubscription(self) -> float:
        """Bandwidth division factor of the aggregation fabric."""
        m = self.shape.n_instances
        if m <= OVERSUB_FREE_INSTANCES:
            return 1.0
        return min(OVERSUB_MAX, m / OVERSUB_FREE_INSTANCES)

    @property
    def inter_beta(self) -> float:
        """Seconds/byte of a process's share of its instance NIC,
        degraded by fabric oversubscription for large fleets."""
        nic_bps = self.shape.itype.network_gbps * GBPS_TO_BPS
        per_proc = nic_bps / self.shape.procs_per_instance / self.oversubscription
        return 1.0 / per_proc

    @property
    def intra_alpha(self) -> float:
        return INTRA_LATENCY_S

    @property
    def intra_beta(self) -> float:
        return 1.0 / INTRA_BANDWIDTH_BPS

    def p2p_seconds(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time of one point-to-point message."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if src == dst:
            return 0.0
        if self.shape.node_of(src) == self.shape.node_of(dst):
            return self.intra_alpha + nbytes * self.intra_beta
        return self.inter_alpha + nbytes * self.inter_beta

    def effective_alpha(self) -> float:
        """Average message latency for a random peer."""
        f = self.shape.inter_node_fraction
        return f * self.inter_alpha + (1.0 - f) * self.intra_alpha

    def effective_beta(self) -> float:
        """Average seconds/byte for a random peer."""
        f = self.shape.inter_node_fraction
        return f * self.inter_beta + (1.0 - f) * self.intra_beta
