"""Execution-time and checkpoint-overhead estimation (Section 4.4).

``T = T_cpu + T_net + T_io`` per the paper:

* **CPU** — total instructions over aggregate core throughput (one
  process per core, embarrassingly parallel within a phase).
* **Network** — point-to-point volume over the per-process effective
  bandwidth plus per-message latency, and each collective priced by its
  algorithm's alpha-beta cost with per-invocation average payload.
* **IO** — sequential bytes at full aggregate disk bandwidth; random
  bytes at a penalty factor (seeks).

A small load-imbalance factor inflates the total, mirroring the
imperfect overlap real NPB kernels show.

Checkpoint parameters (``O_i``, ``R_i``) come from the same profile: a
coordinated BLCR-style checkpoint serialises every rank's resident set
and pushes it to the S3-like store through the instances' NICs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloud.instance_types import InstanceType
from ..cloud.s3 import S3Store
from ..errors import ConfigurationError
from ..units import SECONDS_PER_HOUR
from .collectives import collective_time
from .network import ClusterShape, NetworkModel, GBPS_TO_BPS
from .profile import ApplicationProfile

#: Random IO pays this multiple of sequential time (seek-dominated).
RANDOM_IO_PENALTY = 3.0

#: Residual load imbalance / overlap inefficiency of real kernels.
IMBALANCE_FACTOR = 0.05

#: Fixed coordination cost of a coordinated checkpoint or restart
#: (quiescing channels, BLCR serialisation bookkeeping), seconds.
CHECKPOINT_COORDINATION_S = 120.0

#: Fraction of the NIC a background checkpoint upload can use.
CHECKPOINT_NIC_SHARE = 0.5


def estimate_execution_hours(
    profile: ApplicationProfile, itype: InstanceType
) -> float:
    """Productive execution time ``T_i`` of ``profile`` on a fleet of
    ``itype`` instances (no checkpoints, no failures)."""
    shape = ClusterShape(itype, profile.n_processes)
    net = NetworkModel(shape)
    p = profile.n_processes

    cpu_s = profile.instr_giga / (p * itype.core_speed)

    alpha = net.effective_alpha()
    beta = net.effective_beta()
    p2p_s = 0.0
    if profile.p2p_bytes > 0 or profile.p2p_messages > 0:
        per_proc_bytes = profile.p2p_bytes / p
        per_proc_msgs = profile.p2p_messages / p
        p2p_s = per_proc_bytes * beta + per_proc_msgs * alpha

    coll_s = 0.0
    for name, counts in profile.collectives.items():
        if counts.count <= 0:
            continue
        avg_payload = counts.total_bytes / counts.count
        coll_s += counts.count * collective_time(name, p, avg_payload, alpha, beta)

    io_bytes = profile.io_seq_bytes + RANDOM_IO_PENALTY * profile.io_rnd_bytes
    io_s = io_bytes / shape.aggregate_disk_bps

    total_s = (cpu_s + p2p_s + coll_s + io_s) * (1.0 + IMBALANCE_FACTOR)
    if total_s <= 0:
        raise ConfigurationError(
            f"estimated time for {profile.name!r} on {itype.name} is not positive"
        )
    return total_s / SECONDS_PER_HOUR


@dataclass(frozen=True)
class CheckpointProfile:
    """Per-(application, instance type) checkpoint/restart parameters."""

    checkpoint_hours: float  # O_i
    recovery_hours: float  # R_i
    image_bytes: float

    def __post_init__(self) -> None:
        if self.checkpoint_hours < 0 or self.recovery_hours < 0:
            raise ConfigurationError("checkpoint/recovery hours must be >= 0")
        if self.image_bytes < 0:
            raise ConfigurationError("image_bytes must be >= 0")


def estimate_checkpoint(
    profile: ApplicationProfile,
    itype: InstanceType,
    storage: S3Store | None = None,
) -> CheckpointProfile:
    """Checkpoint overhead ``O_i`` and recovery overhead ``R_i``.

    Upload bandwidth per instance is the smaller of the store's effective
    bandwidth and half the NIC (the checkpoint competes with application
    traffic); the fleet uploads in parallel.  Recovery re-downloads the
    image and adds a second coordination round (restoring channels).
    """
    storage = storage or S3Store()
    shape = ClusterShape(itype, profile.n_processes)
    image = profile.checkpoint_bytes
    nic_bps = itype.network_gbps * GBPS_TO_BPS * CHECKPOINT_NIC_SHARE
    store_bps = storage.bandwidth_mbps * 1024.0**2
    per_instance_bps = min(nic_bps, store_bps)
    fleet_bps = min(
        per_instance_bps * shape.n_instances,
        storage.aggregate_mbps * 1024.0**2,
    )

    transfer_s = image / fleet_bps
    ckpt_s = CHECKPOINT_COORDINATION_S + transfer_s
    # Restart: re-launch processes, pull the image, restore channels.
    recovery_s = 2.0 * CHECKPOINT_COORDINATION_S + transfer_s
    return CheckpointProfile(
        checkpoint_hours=ckpt_s / SECONDS_PER_HOUR,
        recovery_hours=recovery_s / SECONDS_PER_HOUR,
        image_bytes=image,
    )
