"""Simulated MPI runtime and profiling substrate.

Two layers:

* **Analytic** — :mod:`~repro.mpi.network` (LogGP-style link parameters
  per cluster configuration), :mod:`~repro.mpi.collectives` (textbook
  collective-algorithm cost formulas) and :mod:`~repro.mpi.timing` (the
  Section 4.4 estimator: execution time = CPU + network + IO given a
  TAU-like application profile).  This layer feeds the optimizer the
  ``T_i``, ``O_i`` and ``R_i`` parameters it needs per instance type.
* **Discrete-event** — :mod:`~repro.mpi.communicator` and
  :mod:`~repro.mpi.runtime` execute real rank programs (generator
  coroutines doing sends/recvs/collectives/compute/IO) on the
  :mod:`repro.sim` engine, recording the same profile counters.  The NPB
  models in :mod:`repro.apps` run on it, which is how profiles are
  *collected* rather than invented.
"""

from .network import ClusterShape, NetworkModel
from .profile import ApplicationProfile, CollectiveCounts
from .collectives import collective_time, COLLECTIVE_ALGORITHMS
from .timing import estimate_execution_hours, estimate_checkpoint, CheckpointProfile
from .communicator import SimCommunicator
from .runtime import MPIRuntime, RunStats

__all__ = [
    "ClusterShape",
    "NetworkModel",
    "ApplicationProfile",
    "CollectiveCounts",
    "collective_time",
    "COLLECTIVE_ALGORITHMS",
    "estimate_execution_hours",
    "estimate_checkpoint",
    "CheckpointProfile",
    "SimCommunicator",
    "MPIRuntime",
    "RunStats",
]
