"""Discrete-event MPI communicator.

Rank programs are generator coroutines scheduled on the
:class:`repro.sim.engine.Engine`.  Each communication primitive is a
generator the program drives with ``yield from``; time advances by the
network model's transfer costs.

Semantics (deliberately simple, MPI-shaped):

* ``send`` is synchronous-ish: the sender is occupied for the transfer
  time; the message becomes *available* to the receiver when the
  transfer completes.
* ``recv`` requires an explicit source and tag (the NPB kernels always
  know their peers); it parks until a matching message is delivered.
* Collectives match by call order: every rank's ``k``-th collective must
  be the same operation — a mismatch raises
  :class:`~repro.errors.MPIRuntimeError`, like a real MPI would deadlock
  or abort.  The collective completes ``collective_time(...)`` after the
  last rank arrives, and all ranks resume together.

The communicator doubles as the profiler: every primitive bumps the TAU
counters from which :class:`~repro.mpi.profile.ApplicationProfile` is
assembled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import MPIRuntimeError
from ..sim.engine import Engine, Event, Timeout
from .collectives import collective_time
from .network import ClusterShape, NetworkModel
from .profile import ApplicationProfile, CollectiveCounts


@dataclass
class _Mailbox:
    messages: deque = field(default_factory=deque)  # (deliver_at, payload)
    waiters: deque = field(default_factory=deque)  # Event


@dataclass
class _CollectiveState:
    name: str
    nbytes: float
    values: Dict[int, Any] = field(default_factory=dict)
    arrived: int = 0
    release: Optional[Event] = None


_REDUCE_OPS: Dict[str, Callable[[List[Any]], Any]] = {
    "sum": lambda vs: sum(vs),
    "max": lambda vs: max(vs),
    "min": lambda vs: min(vs),
    "prod": lambda vs: _prod(vs),
}


def _prod(values: List[Any]) -> Any:
    out = values[0]
    for v in values[1:]:
        out = out * v
    return out


class Request:
    """Handle of a non-blocking operation (``isend``/``irecv``).

    ``wait()`` is a generator the rank program drives with ``yield
    from``; ``test()`` is an immediate completion probe.
    """

    def __init__(self, engine: Engine, name: str) -> None:
        self._event = engine.event(name)

    def _complete(self, value: Any = None) -> None:
        self._event.succeed(value)

    def test(self) -> bool:
        return self._event.fired

    def wait(self) -> Generator[Any, Any, Any]:
        value = yield self._event
        return value


class SimCommunicator:
    """COMM_WORLD of one simulated MPI job."""

    def __init__(self, engine: Engine, shape: ClusterShape) -> None:
        self.engine = engine
        self.shape = shape
        self.network = NetworkModel(shape)
        self.size = shape.n_processes
        self._boxes: Dict[Tuple[int, int, int], _Mailbox] = {}
        self._coll_states: Dict[int, _CollectiveState] = {}
        self._coll_counter: List[int] = [0] * self.size
        # Profile counters
        self.instr_giga = 0.0
        self.p2p_bytes = 0.0
        self.p2p_messages = 0
        self.coll_counts: Dict[str, CollectiveCounts] = {}
        self.io_seq_bytes = 0.0
        self.io_rnd_bytes = 0.0

    def handle(self, rank: int) -> "RankHandle":
        if not 0 <= rank < self.size:
            raise MPIRuntimeError(f"rank {rank} outside [0, {self.size})")
        return RankHandle(self, rank)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def _box(self, src: int, dst: int, tag: int) -> _Mailbox:
        return self._boxes.setdefault((src, dst, tag), _Mailbox())

    def send(
        self, src: int, dst: int, tag: int, nbytes: float, payload: Any = None
    ) -> Generator[Any, Any, None]:
        if not 0 <= dst < self.size:
            raise MPIRuntimeError(f"send to invalid rank {dst}")
        transfer = self.network.p2p_seconds(src, dst, nbytes)
        deliver_at = self.engine.now + transfer
        self.p2p_bytes += nbytes
        self.p2p_messages += 1
        box = self._box(src, dst, tag)
        if box.waiters:
            box.waiters.popleft().succeed((deliver_at, payload))
        else:
            box.messages.append((deliver_at, payload))
        if transfer > 0:
            yield Timeout(transfer)

    def isend(
        self, src: int, dst: int, tag: int, nbytes: float, payload: Any = None
    ) -> Request:
        """Non-blocking send: the sender continues immediately; the
        request completes when the transfer finishes."""
        if not 0 <= dst < self.size:
            raise MPIRuntimeError(f"isend to invalid rank {dst}")
        transfer = self.network.p2p_seconds(src, dst, nbytes)
        deliver_at = self.engine.now + transfer
        self.p2p_bytes += nbytes
        self.p2p_messages += 1
        box = self._box(src, dst, tag)
        if box.waiters:
            box.waiters.popleft().succeed((deliver_at, payload))
        else:
            box.messages.append((deliver_at, payload))
        request = Request(self.engine, f"isend({src}->{dst},tag={tag})")
        if transfer > 0:
            self.engine.schedule(transfer, request._complete)
        else:
            request._complete()
        return request

    def irecv(self, src: int, dst: int, tag: int) -> Request:
        """Non-blocking receive: the request completes (with the payload
        as its value) when a matching message has been delivered."""
        if not 0 <= src < self.size:
            raise MPIRuntimeError(f"irecv from invalid rank {src}")
        box = self._box(src, dst, tag)
        request = Request(self.engine, f"irecv({src}->{dst},tag={tag})")

        def deliver(item: tuple) -> None:
            deliver_at, payload = item
            delay = max(0.0, deliver_at - self.engine.now)
            if delay > 0:
                self.engine.schedule(delay, lambda: request._complete(payload))
            else:
                request._complete(payload)

        if box.messages:
            deliver(box.messages.popleft())
        else:
            event = self.engine.event(f"irecv-wait({src}->{dst},tag={tag})")
            event.add_waiter(deliver)
            box.waiters.append(event)
        return request

    def recv(self, src: int, dst: int, tag: int) -> Generator[Any, Any, Any]:
        if not 0 <= src < self.size:
            raise MPIRuntimeError(f"recv from invalid rank {src}")
        box = self._box(src, dst, tag)
        if box.messages:
            deliver_at, payload = box.messages.popleft()
        else:
            event = self.engine.event(f"recv({src}->{dst},tag={tag})")
            box.waiters.append(event)
            deliver_at, payload = yield event
        if deliver_at > self.engine.now:
            yield Timeout(deliver_at - self.engine.now)
        return payload

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def collective(
        self,
        rank: int,
        name: str,
        nbytes: float,
        value: Any = None,
        op: str | Callable[[List[Any]], Any] = "sum",
        root: int = 0,
    ) -> Generator[Any, Any, Any]:
        cid = self._coll_counter[rank]
        self._coll_counter[rank] += 1
        state = self._coll_states.get(cid)
        if state is None:
            state = _CollectiveState(name=name, nbytes=nbytes)
            state.release = self.engine.event(f"coll#{cid}:{name}")
            self._coll_states[cid] = state
        elif state.name != name:
            raise MPIRuntimeError(
                f"collective mismatch at op #{cid}: rank {rank} called "
                f"{name!r} but another rank called {state.name!r}"
            )
        state.values[rank] = value
        state.arrived += 1
        if state.arrived == self.size:
            duration = collective_time(
                name,
                self.size,
                state.nbytes,
                self.network.effective_alpha(),
                self.network.effective_beta(),
            )
            result = self._combine(state, op, root)
            counts = self.coll_counts.get(name, CollectiveCounts(0.0, 0.0))
            self.coll_counts[name] = counts + CollectiveCounts(state.nbytes, 1.0)
            del self._coll_states[cid]
            release = state.release
            self.engine.schedule(duration, lambda: release.succeed(result))
        result = yield state.release
        return _per_rank_result(state.name, result, rank)

    def _combine(
        self,
        state: _CollectiveState,
        op: str | Callable[[List[Any]], Any],
        root: int,
    ) -> Any:
        values = [state.values.get(r) for r in range(self.size)]
        if state.name in ("allreduce", "reduce"):
            fn = _REDUCE_OPS[op] if isinstance(op, str) else op
            present = [v for v in values if v is not None]
            return fn(present) if present else None
        if state.name == "bcast":
            return values[root]
        if state.name in ("allgather", "gather"):
            return values
        if state.name == "alltoall":
            # values[src] is a per-destination list; result[dst][src].
            return values
        return None  # barrier, scatter (payload-free in this model)

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def compute(self, giga_instructions: float) -> Generator[Any, Any, None]:
        if giga_instructions < 0:
            raise MPIRuntimeError("negative compute amount")
        self.instr_giga += giga_instructions
        seconds = giga_instructions / self.shape.itype.core_speed
        if seconds > 0:
            yield Timeout(seconds)

    def io(
        self, nbytes: float, sequential: bool = True
    ) -> Generator[Any, Any, None]:
        if nbytes < 0:
            raise MPIRuntimeError("negative io amount")
        if sequential:
            self.io_seq_bytes += nbytes
            effective = nbytes
        else:
            self.io_rnd_bytes += nbytes
            effective = 3.0 * nbytes
        disk_bps = (
            self.shape.itype.disk_mbps * 1024.0**2 / self.shape.procs_per_instance
        )
        seconds = effective / disk_bps
        if seconds > 0:
            yield Timeout(seconds)

    # ------------------------------------------------------------------
    def to_profile(
        self, name: str, memory_gb_per_process: float = 0.1
    ) -> ApplicationProfile:
        """Snapshot the recorded counters as an application profile."""
        return ApplicationProfile(
            name=name,
            n_processes=self.size,
            instr_giga=self.instr_giga,
            p2p_bytes=self.p2p_bytes,
            p2p_messages=float(self.p2p_messages),
            collectives=dict(self.coll_counts),
            io_seq_bytes=self.io_seq_bytes,
            io_rnd_bytes=self.io_rnd_bytes,
            memory_gb_per_process=memory_gb_per_process,
        )


def _per_rank_result(name: str, result: Any, rank: int) -> Any:
    if name == "alltoall" and result is not None:
        # result is values[src][dst]; this rank receives column `rank`.
        return [
            None if row is None else row[rank] for row in result
        ]
    return result


@dataclass(frozen=True)
class RankHandle:
    """Rank-bound facade passed to rank programs."""

    comm: SimCommunicator
    rank: int

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def now(self) -> float:
        return self.comm.engine.now

    def send(self, dst: int, nbytes: float, payload: Any = None, tag: int = 0):
        return self.comm.send(self.rank, dst, tag, nbytes, payload)

    def recv(self, src: int, tag: int = 0):
        return self.comm.recv(src, self.rank, tag)

    def isend(self, dst: int, nbytes: float, payload: Any = None, tag: int = 0) -> Request:
        return self.comm.isend(self.rank, dst, tag, nbytes, payload)

    def irecv(self, src: int, tag: int = 0) -> Request:
        return self.comm.irecv(src, self.rank, tag)

    def sendrecv(
        self,
        dst: int,
        nbytes: float,
        src: int,
        payload: Any = None,
        tag: int = 0,
    ):
        """Exchange with two peers without ordering deadlock: post the
        receive, send non-blockingly, then wait for both."""

        def gen():
            rreq = self.irecv(src, tag)
            sreq = self.isend(dst, nbytes, payload, tag)
            got = yield from rreq.wait()
            yield from sreq.wait()
            return got

        return gen()

    def barrier(self):
        return self.comm.collective(self.rank, "barrier", 0.0)

    def bcast(self, value: Any, nbytes: float, root: int = 0):
        return self.comm.collective(self.rank, "bcast", nbytes, value, root=root)

    def reduce(self, value: Any, nbytes: float, op="sum", root: int = 0):
        return self.comm.collective(self.rank, "reduce", nbytes, value, op, root)

    def allreduce(self, value: Any, nbytes: float, op="sum"):
        return self.comm.collective(self.rank, "allreduce", nbytes, value, op)

    def allgather(self, value: Any, nbytes: float):
        return self.comm.collective(self.rank, "allgather", nbytes, value)

    def alltoall(self, values: List[Any], nbytes: float):
        return self.comm.collective(self.rank, "alltoall", nbytes, values)

    def compute(self, giga_instructions: float):
        return self.comm.compute(giga_instructions)

    def io(self, nbytes: float, sequential: bool = True):
        return self.comm.io(nbytes, sequential)
