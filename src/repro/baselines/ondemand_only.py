"""The On-demand baseline (Section 5.3.1).

"We select the type of on-demand instance with the smallest expected
monetary cost, which satisfies the deadline requirement at the same
time."  No spot instances, no fault tolerance needed.
"""

from __future__ import annotations

from ..core.ondemand_select import select_ondemand
from ..core.problem import Decision, Problem


def ondemand_decision(problem: Problem, slack: float = 0.0) -> Decision:
    """Cheapest deadline-feasible pure on-demand plan.

    ``slack`` defaults to 0 here (unlike SOMPI's fallback selection)
    because a pure on-demand run has no checkpoint/recovery overhead to
    reserve time for.
    """
    idx, _ = select_ondemand(problem.ondemand_options, problem.deadline, slack)
    return Decision(groups=(), ondemand_index=idx)
