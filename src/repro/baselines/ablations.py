"""Fault-tolerance ablations (Section 5.4.2).

The paper disables one mechanism at a time:

* **All-Unable** — no replication (one circle group) and no checkpoints.
* **w/o-RP** — checkpoints only (one circle group).
* **w/o-CK** — replication only (no checkpoints).
* **w/o-MT** — no update maintenance: the adaptive executor keeps its
  initial failure models and decision for the whole run
  (``AdaptiveExecutor(refresh_models=False)``).

The first three are just SOMPI under a restricted configuration, which
is exactly how the paper builds them — the optimizer still tunes bids
and (where allowed) intervals inside the smaller solution space.
"""

from __future__ import annotations

from typing import Mapping

from ..config import SompiConfig
from ..core.optimizer import SompiOptimizer, SompiPlan
from ..core.problem import Problem
from ..market.failure import FailureModel
from ..market.history import MarketKey


def all_unable_config(base: SompiConfig) -> SompiConfig:
    """No replication, no checkpoints."""
    return base.with_(kappa=1, checkpointing=False)


def wo_rp_config(base: SompiConfig) -> SompiConfig:
    """Without replication: a single circle group, checkpoints allowed."""
    return base.with_(kappa=1, checkpointing=True)


def wo_ck_config(base: SompiConfig) -> SompiConfig:
    """Without checkpointing: replicas allowed, no checkpoints."""
    return base.with_(checkpointing=False)


def ablation_plan(
    variant: str,
    problem: Problem,
    failure_models: Mapping[MarketKey, FailureModel],
    base: SompiConfig,
) -> SompiPlan:
    """Plan with one fault-tolerance mechanism knocked out.

    ``variant`` is one of ``"all-unable"``, ``"wo-rp"``, ``"wo-ck"``,
    ``"sompi"`` (no restriction, for symmetric comparisons).
    """
    configs = {
        "all-unable": all_unable_config,
        "wo-rp": wo_rp_config,
        "wo-ck": wo_ck_config,
        "sompi": lambda c: c,
    }
    try:
        cfg = configs[variant](base)
    except KeyError:
        raise ValueError(
            f"unknown ablation {variant!r}; known: {sorted(configs)}"
        ) from None
    return SompiOptimizer(problem, failure_models, cfg).plan()
