"""Marathe et al. [30] — the paper's state-of-the-art comparison.

Their policy, as characterised in Section 5.3.1:

* replicate the MPI execution on spot fleets of **one instance type** in
  several availability zones (spatial redundancy),
* bid the **on-demand price** of that type (their recommended bid), and
* checkpoint with Young's interval.

**Marathe** hard-codes cc2.8xlarge (their default).  **Marathe-Opt**
evaluates every candidate type under the same policy and keeps the
cheapest deadline-feasible one — the paper's strengthened version, which
SOMPI still beats because it can *mix* types, tune bids, and co-optimize
the checkpoint interval with the bid.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.cost_model import GroupOutcome, evaluate
from ..core.interval import young_interval
from ..core.ondemand_select import select_ondemand
from ..core.problem import Decision, GroupDecision, Problem
from ..errors import InfeasibleError
from ..market.failure import FailureModel
from ..market.history import MarketKey

MARATHE_DEFAULT_TYPE = "cc2.8xlarge"


def _policy_decision(
    problem: Problem,
    failure_models: Mapping[MarketKey, FailureModel],
    instance_type: str,
    max_zones: int,
    step_hours: float,
) -> Optional[Decision]:
    """Marathe policy instantiated for one instance type.

    Returns ``None`` when the problem has no circle-group candidates of
    that type.
    """
    indices = [
        i for i, g in enumerate(problem.groups) if g.itype.name == instance_type
    ]
    if not indices:
        return None
    indices = indices[:max_zones]
    od_idx, _ = select_ondemand(problem.ondemand_options, problem.deadline, 0.0)
    groups = []
    for i in indices:
        spec = problem.groups[i]
        fm = failure_models[spec.key]
        bid = spec.itype.ondemand_price
        interval = young_interval(
            spec.checkpoint_overhead, fm.mttf_hours(bid), spec.exec_time
        )
        groups.append(GroupDecision(i, bid, interval))
    return Decision(groups=tuple(groups), ondemand_index=od_idx)


def marathe_decision(
    problem: Problem,
    failure_models: Mapping[MarketKey, FailureModel],
    max_zones: int = 3,
    step_hours: float = 1.0,
) -> Decision:
    """The original Marathe configuration: cc2.8xlarge replicas."""
    decision = _policy_decision(
        problem, failure_models, MARATHE_DEFAULT_TYPE, max_zones, step_hours
    )
    if decision is None:
        raise InfeasibleError(
            f"problem has no {MARATHE_DEFAULT_TYPE} circle-group candidates"
        )
    return decision


def marathe_opt_decision(
    problem: Problem,
    failure_models: Mapping[MarketKey, FailureModel],
    max_zones: int = 3,
    step_hours: float = 1.0,
) -> Decision:
    """Marathe's policy with the best single instance type.

    Each candidate type's decision is scored with the expected-cost model
    and must meet the deadline in expectation; the cheapest wins.  Falls
    back to the fastest type's decision if nothing is feasible (matching
    the paper: under tight deadlines Marathe-Opt degenerates to Marathe).
    """
    type_names = sorted({g.itype.name for g in problem.groups})
    best: Optional[tuple[float, Decision]] = None
    fastest: Optional[tuple[float, Decision]] = None
    for tname in type_names:
        decision = _policy_decision(
            problem, failure_models, tname, max_zones, step_hours
        )
        if decision is None:
            continue
        outcomes = [
            GroupOutcome.build(
                problem.groups[gd.group_index],
                gd.bid,
                gd.interval,
                failure_models[problem.groups[gd.group_index].key],
                step_hours,
            )
            for gd in decision.groups
        ]
        exp = evaluate(outcomes, problem.ondemand_options[decision.ondemand_index])
        if fastest is None or exp.time < fastest[0]:
            fastest = (exp.time, decision)
        if exp.meets_deadline(problem.deadline):
            if best is None or exp.cost < best[0]:
                best = (exp.cost, decision)
    if best is not None:
        return best[1]
    if fastest is not None:
        return fastest[1]
    raise InfeasibleError("no circle-group candidates at all")
