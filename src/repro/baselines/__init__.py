"""Comparison algorithms from the paper's evaluation (Section 5).

* :mod:`~repro.baselines.ondemand_only` — **On-demand**: cheapest
  deadline-feasible on-demand type, no spot at all.
* :mod:`~repro.baselines.spot_naive` — **Spot-Inf** (bid $999, never
  out-of-bid) and **Spot-Avg** (bid the historical mean), no fault
  tolerance.
* :mod:`~repro.baselines.marathe` — **Marathe** [30] (replicated
  cc2.8xlarge across zones, on-demand-price bids, Young checkpoints) and
  **Marathe-Opt** (the same policy with a free choice of the single
  instance type).
* :mod:`~repro.baselines.ablations` — **All-Unable**, **w/o-RP**,
  **w/o-CK** SOMPI variants (w/o-MT is an
  :class:`~repro.execution.adaptive.AdaptiveExecutor` flag).
"""

from .ondemand_only import ondemand_decision
from .spot_naive import spot_inf_decision, spot_avg_decision, INF_BID
from .marathe import marathe_decision, marathe_opt_decision
from .ablations import all_unable_config, wo_rp_config, wo_ck_config, ablation_plan

__all__ = [
    "ondemand_decision",
    "spot_inf_decision",
    "spot_avg_decision",
    "INF_BID",
    "marathe_decision",
    "marathe_opt_decision",
    "all_unable_config",
    "wo_rp_config",
    "wo_ck_config",
    "ablation_plan",
]
