"""Naive spot heuristics (Section 5.3.2).

**Spot-Inf** bids effectively infinity ($999 in the paper's experiments)
so the instance is never reclaimed — but every price spike is paid in
full, which is where its large cost variance comes from.

**Spot-Avg** bids the historical average price: cheap while it runs,
but out-of-bid events are frequent and, with no checkpoints, each one
restarts the application from scratch (the hybrid executor's on-demand
fallback eventually rescues it).

Both pick a single circle group: the one with the lowest expected cost
among the deadline-feasible candidates.
"""

from __future__ import annotations

from typing import Mapping

from ..core.problem import Decision, GroupDecision, Problem
from ..core.ondemand_select import select_ondemand
from ..errors import InfeasibleError
from ..market.failure import FailureModel
from ..market.history import MarketKey

INF_BID = 999.0


def _pick_group(
    problem: Problem,
    failure_models: Mapping[MarketKey, FailureModel],
    bid_of,
) -> tuple[int, float]:
    """Cheapest deadline-feasible (group, bid) under expected spot price."""
    best = None
    for i, spec in enumerate(problem.groups):
        if spec.exec_time > problem.deadline:
            continue
        fm = failure_models[spec.key]
        bid = bid_of(fm)
        expected = fm.expected_price(bid) * spec.exec_time * spec.n_instances
        if best is None or expected < best[0]:
            best = (expected, i, bid)
    if best is None:
        raise InfeasibleError(
            "no circle-group candidate fits the deadline even failure-free"
        )
    return best[1], best[2]


def spot_inf_decision(
    problem: Problem, failure_models: Mapping[MarketKey, FailureModel]
) -> Decision:
    """Bid $999 on the cheapest feasible group; no checkpoints."""
    idx, _ = _pick_group(problem, failure_models, lambda fm: INF_BID)
    spec = problem.groups[idx]
    od_idx, _ = select_ondemand(problem.ondemand_options, problem.deadline, 0.0)
    return Decision(
        groups=(GroupDecision(idx, INF_BID, spec.exec_time),),
        ondemand_index=od_idx,
    )


def spot_avg_decision(
    problem: Problem, failure_models: Mapping[MarketKey, FailureModel]
) -> Decision:
    """Bid the historical mean price on the cheapest feasible group."""

    def avg_bid(fm: FailureModel) -> float:
        return fm.trace.mean_price()

    idx, bid = _pick_group(problem, failure_models, avg_bid)
    spec = problem.groups[idx]
    od_idx, _ = select_ondemand(problem.ondemand_options, problem.deadline, 0.0)
    return Decision(
        groups=(GroupDecision(idx, bid, spec.exec_time),),
        ondemand_index=od_idx,
    )
