"""Unit helpers.

Internally the library uses a small set of canonical units:

* **time** — hours (``float``).  The spot market reprices on an hourly-ish
  granularity and EC2 bills by the hour, so hours keep all of the paper's
  quantities (checkpoint intervals, deadlines, window sizes) in a natural
  range.  Helpers convert to/from seconds for the MPI-level simulation,
  which works in seconds.
* **money** — US dollars (``float``).
* **data** — bytes (``int`` or ``float``); helpers for GB/MB.

The helpers validate their inputs because unit mix-ups are the classic
silent-failure mode of cost models.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

SECONDS_PER_HOUR = 3600.0
HOURS_PER_DAY = 24.0
BYTES_PER_MB = 1024.0**2
BYTES_PER_GB = 1024.0**3


def hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def seconds(hrs: float) -> float:
    """Convert hours to seconds."""
    return hrs * SECONDS_PER_HOUR


def days_to_hours(days: float) -> float:
    """Convert days to hours."""
    return days * HOURS_PER_DAY


def gb(num_bytes: float) -> float:
    """Convert bytes to gigabytes."""
    return num_bytes / BYTES_PER_GB


def mb(num_bytes: float) -> float:
    """Convert bytes to megabytes."""
    return num_bytes / BYTES_PER_MB


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, strictly positive number."""
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be finite and > 0, got {value!r}")
    return float(value)


def check_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, non-negative number."""
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be finite and >= 0, got {value!r}")
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)
