"""Bench RED — regenerate the Section 4.2.2 search-space reduction."""

from repro.experiments import reduction

from .conftest import emit


def test_reduction(benchmark, env):
    result = benchmark.pedantic(reduction.run, args=(env,), rounds=1, iterations=1)
    emit(result)
    counts = result.data["analytic"]
    assert counts["naive"] / counts["dimension_reduced"] >= 1e3
    assert counts["dimension_reduced"] / counts["log_search"] >= 1e3
    log_best, log_evals = result.data["measured"]["log"]
    uni_best, uni_evals = result.data["measured"]["uniform"]
    # Orders of magnitude fewer evaluations at near-equal solution quality.
    assert uni_evals / log_evals > 100
    assert log_best <= uni_best * 1.10
