"""Bench ACC — regenerate the Section 5.4.1 accuracy studies."""

import numpy as np

from repro.experiments import accuracy

from .conftest import emit


def test_failure_rate_accuracy(benchmark, env):
    result = benchmark.pedantic(
        accuracy.run_failure_rate, args=(env,), rounds=1, iterations=1
    )
    emit(result)
    diffs = result.data["diffs"]
    assert diffs.size > 100
    # The learnable (diurnal) part of the failure process transfers from
    # train to test windows.
    assert np.median(diffs) < 0.30
    assert np.mean(diffs < 0.25) > 0.5


def test_model_accuracy(benchmark, env):
    result = benchmark.pedantic(
        accuracy.run_model,
        args=(env,),
        kwargs=dict(n_samples=250),
        rounds=1,
        iterations=1,
    )
    emit(result)
    diffs = result.data["diffs"]
    # The paper reports a worst case of 15%; our simpler substitutions
    # (no launch-wait modelling) stay within 2x of that.
    assert diffs.max() < 0.30
