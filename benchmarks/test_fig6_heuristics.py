"""Bench FIG6 — regenerate the naive-heuristics comparison (Figure 6)."""

import numpy as np

from repro.experiments import fig6_heuristics

from .conftest import emit


def test_fig6(benchmark, env, bench_samples):
    result = benchmark.pedantic(
        fig6_heuristics.run,
        args=(env,),
        kwargs=dict(n_samples=bench_samples),
        rounds=1,
        iterations=1,
    )
    emit(result)
    cells = result.data["normalized"]
    # Naive spot use already beats On-demand in every category...
    for cell in cells.values():
        assert cell["Spot-Inf"] < cell["On-demand"]
        assert cell["Spot-Avg"] < cell["On-demand"]
    # ...but SOMPI beats both heuristics on average.
    for other in ("Spot-Inf", "Spot-Avg"):
        avg = np.mean([c["SOMPI"] / c[other] for c in cells.values()])
        assert avg < 1.0
