"""Bench FIG7 — regenerate the cost-vs-deadline staircase (Figure 7)."""

from repro.experiments import fig7_deadline_sweep

from .conftest import emit


def test_fig7(benchmark, env):
    result = benchmark.pedantic(
        fig7_deadline_sweep.run, args=(env,), rounds=1, iterations=1
    )
    emit(result)
    curves = result.data["curves"]
    # Cost is non-increasing as the deadline loosens, for every kernel.
    for curve in curves.values():
        c = curve["cost"]
        assert all(b <= a + 1e-6 for a, b in zip(c, c[1:]))
    # BT walks down from cc2.8xlarge to cheaper types (the paper's arrows).
    bt_types = curves["BT"]["types"]
    assert bt_types[0] == ["cc2.8xlarge"]
    assert bt_types[-1] != bt_types[0]
    # FT never leaves cc2.8xlarge: the fastest type is also the cheapest
    # for communication-intensive kernels.
    assert all(t == ["cc2.8xlarge"] for t in curves["FT"]["types"])
    # BTIO steps down to the small-instance fleets.
    assert curves["BTIO"]["types"][-1] in (["m1.small"], ["m1.medium"])
