"""Bench FIG2 — regenerate the daily price-distribution stability (Figure 2)."""

import numpy as np

from repro.experiments import fig2_price_histogram

from .conftest import emit


def test_fig2(benchmark, env):
    result = benchmark.pedantic(
        fig2_price_histogram.run, args=(env,), rounds=3, iterations=1
    )
    emit(result)
    tv = result.data["tv_matrix"]
    off_diag = tv[np.triu_indices(tv.shape[0], 1)]
    # The paper's conclusion: consecutive days have nearly the same price
    # distribution, so recent history predicts the near future.
    assert off_diag.max() < 0.4
    assert off_diag.mean() < 0.2
