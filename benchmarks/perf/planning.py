"""Planning-pipeline benchmark: failure models, tables, subset search.

Times the same planning workload three ways:

* **seed path** — per-bid failure-model memoisation off, shared group
  tables off (``table_cache=False``): what the code did before the
  performance layer.
* **cold path** — all caches on but starting empty (shared caches are
  cleared first): the first plan of a fresh process, exactly as the
  experiments run it.  The regression guard (``primary``) watches this
  one — cache *population* overhead must never make a cold plan slower
  than the seed path.
* **warm path** — all caches primed: the fig5/fig7/param-study regime
  where later plans reuse the models and tables earlier ones built.

Every timing is the best of ``_REPEATS`` runs, so one scheduler hiccup
cannot fake a regression (a single-shot cold measurement once recorded
a spurious 0.93x "speedup").  All paths produce identical plans
(asserted here), so the ratios are pure speed measurements.
"""

from __future__ import annotations

import time

from repro.core.optimizer import SompiOptimizer, build_failure_models
from repro.core.two_level import clear_shared_caches
from repro.experiments.env import ExperimentEnv
from repro.experiments import fig5_cost_comparison

#: (app, deadline_factor) pairs exercised by the benchmark.
_FULL_CASES = [
    ("BT", 1.5), ("BT", 1.05), ("SP", 1.5), ("SP", 1.05),
    ("LU", 1.5), ("FT", 1.05), ("IS", 1.5),
]
_QUICK_CASES = _FULL_CASES[:3]

#: Timings are the best of this many runs (noise floor, not average).
_REPEATS = 3


def _plan_all(env: ExperimentEnv, cases, cached: bool, model_sets=None):
    """Plan every case; returns (plans, seconds, combos).

    Failure models are shared across plans exactly as
    :meth:`ExperimentEnv.failure_models` shares them (the seed did that
    too); ``cached`` switches their per-bid memoisation and the shared
    group-table cache on or off together.  Pass the same ``model_sets``
    dict to a second call to time the fully warm regime.
    """
    config = env.config.with_(table_cache=cached)
    problems = [env.problem(app, deadline_factor=f) for app, f in cases]
    training = env.training_history()
    if model_sets is None:
        model_sets = {}
    t0 = time.perf_counter()
    plans = []
    combos = 0
    for problem in problems:
        mkey = tuple(g.key for g in problem.groups)
        models = model_sets.get(mkey)
        if models is None:
            models = build_failure_models(
                problem, training,
                step_hours=config.time_step_hours, cache=cached,
            )
            model_sets[mkey] = models
        opt = SompiOptimizer(problem, models, config)
        plan = opt.plan()
        combos += plan.combos_evaluated
        plans.append(plan)
    return plans, time.perf_counter() - t0, combos


def run(quick: bool = False) -> dict:
    cases = _QUICK_CASES if quick else _FULL_CASES
    env = ExperimentEnv.paper_default()

    def seed_pass():
        clear_shared_caches()
        return _plan_all(env, cases, cached=False)

    def cold_pass():
        clear_shared_caches()
        return _plan_all(env, cases, cached=True)

    seed_plans, seed_s, combos = min(
        (seed_pass() for _ in range(_REPEATS)), key=lambda r: r[1]
    )
    cold_plans, cold_s, _ = min(
        (cold_pass() for _ in range(_REPEATS)), key=lambda r: r[1]
    )
    # Warm pass: prime the shared caches once, then time reuse.
    clear_shared_caches()
    shared_models: dict = {}
    _plan_all(env, cases, cached=True, model_sets=shared_models)
    _, warm_s, _ = min(
        (
            _plan_all(env, cases, cached=True, model_sets=shared_models)
            for _ in range(_REPEATS)
        ),
        key=lambda r: r[1],
    )

    for a, b in zip(seed_plans, cold_plans):
        assert a.expectation == b.expectation, "cached plan diverged from seed"
        assert a.decision == b.decision, "cached plan diverged from seed"

    n_samples = 10 if quick else 40
    t0 = time.perf_counter()
    fig5_cost_comparison.run(ExperimentEnv.paper_default(), n_samples=n_samples)
    fig5_s = time.perf_counter() - t0

    return {
        "suite": "planning",
        "cases": len(cases),
        "metrics": {
            "plan_pipeline": {
                "seed_s": round(seed_s, 4),
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "speedup_cold": round(seed_s / cold_s, 2) if cold_s > 0 else None,
                "speedup_warm": round(seed_s / warm_s, 2) if warm_s > 0 else None,
            },
            "subset_search": {
                "combos_evaluated": combos,
                "combos_per_s": round(combos / cold_s, 1) if cold_s > 0 else None,
            },
            "experiment_fig5": {
                "n_samples": n_samples,
                "optimized_s": round(fig5_s, 4),
            },
        },
        # Guard the cold path: it is the one that regresses when cache
        # population gets expensive (warm hides that entirely).
        "primary": {"name": "plan_pipeline.cold_s", "seconds": cold_s},
    }
