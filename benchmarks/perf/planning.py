"""Planning-pipeline benchmark: failure models, tables, subset search.

Times the same planning workload four ways, spanning the cache tiers
introduced in DESIGN.md §10:

* **seed path** — per-bid failure-model memoisation off, shared group
  tables off, one-shot grid evaluation off, artifact store off: what
  the code did before the performance layers.
* **cold boot** — all layers on but both tiers empty (fresh artifact
  directory, shared caches cleared): the first plan ever on a machine.
  Grid evaluation is the only layer that can help here; artifact
  *population* overhead is included, so this pass also guards against
  the store making first runs slower.
* **cold disk** — warm artifact directory, shared in-memory caches
  cleared: the first plan of a fresh process on a machine that has
  planned this workload before.  This is the tier the tentpole targets
  (``speedup_cold`` and the regression guard ``primary`` watch it).
* **warm path** — everything primed: the fig5/fig7/param-study regime
  where later plans reuse what earlier ones built.

Every timing is the best of ``_REPEATS`` runs, so one scheduler hiccup
cannot fake a regression (a single-shot cold measurement once recorded
a spurious 0.93x "speedup").  All paths must produce identical plans
(asserted here), so the ratios are pure speed measurements.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time

from repro.core.optimizer import SompiOptimizer, build_failure_models
from repro.core.two_level import clear_shared_caches
from repro.experiments.env import ExperimentEnv
from repro.experiments import fig5_cost_comparison

#: (app, deadline_factor) pairs exercised by the benchmark.
_FULL_CASES = [
    ("BT", 1.5), ("BT", 1.05), ("SP", 1.5), ("SP", 1.05),
    ("LU", 1.5), ("FT", 1.05), ("IS", 1.5),
]
_QUICK_CASES = _FULL_CASES[:3]

#: Timings are the best of this many runs (noise floor, not average).
_REPEATS = 3


def _plan_all(
    env: ExperimentEnv,
    cases,
    cached: bool,
    art_dir: str | None = None,
    model_sets=None,
):
    """Plan every case; returns (plans, seconds, combos).

    ``cached`` switches the per-bid failure-model memoisation, the
    shared group-table cache and the one-shot grid evaluation on or off
    together (the seed path predates all three).  ``art_dir`` points
    the artifact store at a benchmark-private directory — ``None``
    disables the disk tier entirely, so no run ever touches the user's
    real cache.  Failure models are shared across plans exactly as
    :meth:`ExperimentEnv.failure_models` shares them (the seed did that
    too); pass the same ``model_sets`` dict to a second call to time
    the fully warm regime.
    """
    config = env.config.with_(
        table_cache=cached,
        grid_eval=cached,
        artifact_cache=art_dir is not None,
        artifact_dir=art_dir,
    )
    problems = [env.problem(app, deadline_factor=f) for app, f in cases]
    training = env.training_history()
    if model_sets is None:
        model_sets = {}
    t0 = time.perf_counter()
    plans = []
    combos = 0
    for problem in problems:
        mkey = tuple(g.key for g in problem.groups)
        models = model_sets.get(mkey)
        if models is None:
            models = build_failure_models(
                problem, training,
                step_hours=config.time_step_hours, cache=cached,
            )
            model_sets[mkey] = models
        opt = SompiOptimizer(problem, models, config)
        plan = opt.plan()
        combos += plan.combos_evaluated
        plans.append(plan)
    return plans, time.perf_counter() - t0, combos


def run(quick: bool = False) -> dict:
    cases = _QUICK_CASES if quick else _FULL_CASES
    env = ExperimentEnv.paper_default()

    with tempfile.TemporaryDirectory(prefix="repro-bench-art-") as tmp:
        root = pathlib.Path(tmp)

        def seed_pass():
            clear_shared_caches()
            return _plan_all(env, cases, cached=False)

        def boot_pass(i):
            # A directory this pass has never seen: both tiers cold,
            # artifact writes included in the measured time.
            clear_shared_caches()
            return _plan_all(
                env, cases, cached=True, art_dir=str(root / f"boot{i}")
            )

        disk_dir = str(root / "disk")

        def disk_pass():
            # Memory cleared, disk warm: a fresh process on a machine
            # that has planned this workload before.
            clear_shared_caches()
            return _plan_all(env, cases, cached=True, art_dir=disk_dir)

        seed_plans, seed_s, combos = min(
            (seed_pass() for _ in range(_REPEATS)), key=lambda r: r[1]
        )
        boot_plans, boot_s, _ = min(
            (boot_pass(i) for i in range(_REPEATS)), key=lambda r: r[1]
        )
        clear_shared_caches()
        _plan_all(env, cases, cached=True, art_dir=disk_dir)  # prime disk
        disk_plans, disk_s, _ = min(
            (disk_pass() for _ in range(_REPEATS)), key=lambda r: r[1]
        )
        # Warm pass: prime the shared caches once, then time reuse.
        clear_shared_caches()
        shared_models: dict = {}
        _plan_all(
            env, cases, cached=True, art_dir=disk_dir,
            model_sets=shared_models,
        )
        warm_plans, warm_s, _ = min(
            (
                _plan_all(
                    env, cases, cached=True, art_dir=disk_dir,
                    model_sets=shared_models,
                )
                for _ in range(_REPEATS)
            ),
            key=lambda r: r[1],
        )

        for tier, plans in (
            ("cold_boot", boot_plans), ("cold_disk", disk_plans),
            ("warm", warm_plans),
        ):
            for a, b in zip(seed_plans, plans):
                assert a.expectation == b.expectation, (
                    f"{tier} plan diverged from seed"
                )
                assert a.decision == b.decision, (
                    f"{tier} plan diverged from seed"
                )

        # fig5 plans with the default config, whose artifact store would
        # land in the user's real cache directory — pin it to the
        # benchmark sandbox so timings are hermetic run to run.
        from repro.execution.artifacts import ARTIFACT_DIR_ENV

        n_samples = 10 if quick else 40
        saved_env = os.environ.get(ARTIFACT_DIR_ENV)
        os.environ[ARTIFACT_DIR_ENV] = str(root / "fig5")
        try:
            clear_shared_caches()
            t0 = time.perf_counter()
            fig5_cost_comparison.run(
                ExperimentEnv.paper_default(), n_samples=n_samples
            )
            fig5_s = time.perf_counter() - t0
        finally:
            if saved_env is None:
                os.environ.pop(ARTIFACT_DIR_ENV, None)
            else:
                os.environ[ARTIFACT_DIR_ENV] = saved_env
            clear_shared_caches()

    return {
        "suite": "planning",
        "cases": len(cases),
        "metrics": {
            "plan_pipeline": {
                "seed_s": round(seed_s, 4),
                "cold_boot_s": round(boot_s, 4),
                "cold_disk_s": round(disk_s, 4),
                "warm_s": round(warm_s, 4),
                "speedup_cold": (
                    round(seed_s / disk_s, 2) if disk_s > 0 else None
                ),
                "speedup_boot": (
                    round(seed_s / boot_s, 2) if boot_s > 0 else None
                ),
                "speedup_warm": (
                    round(seed_s / warm_s, 2) if warm_s > 0 else None
                ),
            },
            "subset_search": {
                "combos_evaluated": combos,
                "combos_per_s": (
                    round(combos / disk_s, 1) if disk_s > 0 else None
                ),
            },
            "experiment_fig5": {
                "n_samples": n_samples,
                "optimized_s": round(fig5_s, 4),
            },
        },
        # Guard the cold-disk path: it is the tentpole's tier, and the
        # one that regresses when artifact loading gets expensive (warm
        # hides that entirely).
        "primary": {"name": "plan_pipeline.cold_disk_s", "seconds": disk_s},
    }
