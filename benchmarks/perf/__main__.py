"""CLI for the perf suite: ``PYTHONPATH=src python -m benchmarks.perf``.

Writes ``BENCH_planning.json``, ``BENCH_replay.json``,
``BENCH_market.json``, ``BENCH_lint.json`` and ``BENCH_pool.json`` at
the repository root.  When a file already exists *for the same mode*
(quick/full), the primary metric may not regress by more than
``_MAX_REGRESSION`` (20%) — the run fails and the old file is kept
unless ``--force`` is passed.  Files from the other mode are replaced
without comparison (different workload sizes are not comparable).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from . import lint, market, planning, pool, replay

_MAX_REGRESSION = 0.20
_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

_SUITES = {
    "planning": planning.run,
    "replay": replay.run,
    "market": market.run,
    "lint": lint.run,
    "pool": pool.run,
}


def _check_regression(path: pathlib.Path, doc: dict) -> str | None:
    """Return an error message when ``doc`` regresses the file at
    ``path`` beyond the threshold, else None."""
    if not path.exists():
        return None
    try:
        old = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if old.get("quick") != doc.get("quick"):
        return None  # different workload; not comparable
    old_primary = old.get("primary", {}).get("seconds")
    new_primary = doc.get("primary", {}).get("seconds")
    if not old_primary or not new_primary:
        return None
    if new_primary > old_primary * (1.0 + _MAX_REGRESSION):
        return (
            f"{doc['primary']['name']} regressed "
            f"{new_primary / old_primary:.2f}x "
            f"({old_primary:.3f}s -> {new_primary:.3f}s, "
            f"threshold {1.0 + _MAX_REGRESSION:.2f}x)"
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced workload (CI smoke run)"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_*.json even on a >20%% regression",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="DIR",
        help="output directory (default: repository root)",
    )
    parser.add_argument(
        "--suite", nargs="*", default=None, choices=list(_SUITES),
        help="subset of suites to run (default: all)",
    )
    args = parser.parse_args(argv)
    out_dir = pathlib.Path(args.out) if args.out else _REPO_ROOT

    failures = []
    for name in args.suite or list(_SUITES):
        print(f"[bench] running {name} ({'quick' if args.quick else 'full'})...")
        t0 = time.perf_counter()
        doc = _SUITES[name](quick=args.quick)
        doc["format"] = "repro.bench.v1"
        doc["quick"] = bool(args.quick)
        doc["wall_s"] = round(time.perf_counter() - t0, 2)
        path = out_dir / f"BENCH_{name}.json"
        problem = _check_regression(path, doc)
        if problem and not args.force:
            failures.append(f"{path.name}: {problem}")
            print(f"[bench] REFUSED {path.name}: {problem} (use --force)")
            continue
        path.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"[bench] wrote {path}")
        print(json.dumps(doc["metrics"], indent=1))
    if failures:
        print(f"[bench] {len(failures)} suite(s) regressed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
