"""Tracked performance benchmarks for the plan→evaluate pipeline.

Run with ``make bench`` or ``PYTHONPATH=src python -m benchmarks.perf``.

Three suites, each emitting one JSON file at the repository root so the
perf trajectory is tracked across PRs:

* :mod:`.planning` → ``BENCH_planning.json`` — failure-model fitting,
  per-group table construction, the two-level subset search, and one
  full quick experiment, timed on the seed (cache-off) path, the cold
  cache-on path (the guarded one), and the warm cache-on path.
* :mod:`.replay` → ``BENCH_replay.json`` — Monte-Carlo replay
  throughput (replays/sec), scalar loop vs batched replay, for both
  single-shot and persistent request semantics.
* :mod:`.market` → ``BENCH_market.json`` — trace-generation throughput
  (grid steps/sec), scalar reference kernel vs event-level sampler.

The writer refuses to overwrite an existing file when a primary metric
regressed by more than 20% unless ``--force`` is given (see
``benchmarks.perf.__main__``), so an accidental slowdown fails loudly
in CI instead of silently rewriting the baseline.
"""
