"""Tracked performance benchmarks for the plan→evaluate pipeline.

Run with ``make bench`` or ``PYTHONPATH=src python -m benchmarks.perf``.

Two suites, each emitting one JSON file at the repository root so the
perf trajectory is tracked across PRs:

* :mod:`.planning` → ``BENCH_planning.json`` — failure-model fitting,
  per-group table construction, the two-level subset search, and one
  full quick experiment, each timed on the seed (cache-off) path and on
  the optimized (cached + pruned) path.
* :mod:`.replay` → ``BENCH_replay.json`` — Monte-Carlo replay
  throughput (replays/sec), scalar loop vs batched replay.

The writer refuses to overwrite an existing file when a primary metric
regressed by more than 20% unless ``--force`` is given (see
``benchmarks.perf.__main__``), so an accidental slowdown fails loudly
in CI instead of silently rewriting the baseline.
"""
