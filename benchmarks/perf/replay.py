"""Monte-Carlo replay throughput benchmark (replays per second).

Replays the planned decisions of a few (app, deadline) cases from many
starting points with the scalar per-start loop (the seed path) and with
the batched replay, asserts the results match bit-for-bit, and reports
the throughput of both.  Single-shot and persistent request semantics
are timed separately: the persistent kernel iterates relaunch rounds
level-by-level, so its speedup profile differs from the single-shot
path and gets its own ``persistent_replays_per_s`` metric.
"""

from __future__ import annotations

import time

from repro.execution.batch_replay import replay_batch
from repro.execution.montecarlo import sample_start_times
from repro.execution.replay import replay_decision
from repro.experiments.env import ExperimentEnv

_CASES = [("BT", 1.5), ("LU", 1.05), ("IS", 1.5)]


def _time_semantics(env, n_starts: int, semantics: str):
    """(replays, scalar seconds, batched seconds) for one semantics."""
    total = 0
    seq_s = 0.0
    batch_s = 0.0
    for app, factor in _CASES:
        problem = env.problem(app, deadline_factor=factor)
        decision = env.sompi_plan(problem).decision
        if not decision.groups:
            continue
        starts = sample_start_times(
            problem, decision, env.history, n_starts,
            env.rng.fresh(f"bench-replay-{app}-{factor}"), t_min=env.train_end,
        )
        t0 = time.perf_counter()
        seq = [
            replay_decision(
                problem, decision, env.history, float(t), semantics=semantics
            )
            for t in starts
        ]
        t1 = time.perf_counter()
        batch = replay_batch(
            problem, decision, env.history, starts, semantics=semantics
        )
        t2 = time.perf_counter()
        for a, b in zip(seq, batch):
            assert (a.cost, a.makespan, a.completed_by) == (
                b.cost, b.makespan, b.completed_by,
            ), f"batched {semantics} replay diverged from scalar replay"
        total += starts.size
        seq_s += t1 - t0
        batch_s += t2 - t1
    return total, seq_s, batch_s


def run(quick: bool = False) -> dict:
    n_starts = 200 if quick else 1000
    env = ExperimentEnv.paper_default()
    total, seq_s, batch_s = _time_semantics(env, n_starts, "single-shot")
    p_total, p_seq_s, p_batch_s = _time_semantics(env, n_starts, "persistent")

    return {
        "suite": "replay",
        "replays": total + p_total,
        "metrics": {
            "throughput": {
                "sequential_replays_per_s": round(total / seq_s, 1),
                "batched_replays_per_s": round(total / batch_s, 1),
                "seed_s": round(seq_s, 4),
                "optimized_s": round(batch_s, 4),
                "speedup": round(seq_s / batch_s, 2) if batch_s > 0 else None,
            },
            "persistent": {
                "sequential_replays_per_s": round(p_total / p_seq_s, 1),
                "persistent_replays_per_s": round(p_total / p_batch_s, 1),
                "seed_s": round(p_seq_s, 4),
                "optimized_s": round(p_batch_s, 4),
                "speedup": round(p_seq_s / p_batch_s, 2) if p_batch_s > 0 else None,
            },
        },
        "primary": {"name": "throughput.optimized_s", "seconds": batch_s},
    }
