"""Trace-generation benchmark: scalar reference vs event-level sampler.

Samples long repricing grids from a few canonical market presets (plus
a deliberately spiky stress market) with the scalar reference kernel
(:func:`repro.market.generator._sample_grid_reference`, one Python step
per grid point — the seed implementation) and with the event-level
sampler the generator now uses, asserts the two are byte-identical
under a shared seed, and reports the step throughput of both.
"""

from __future__ import annotations

import time

import numpy as np

from repro.market.generator import (
    RegimeSwitchingGenerator,
    SpotMarketParams,
    _sample_grid_reference,
)
from repro.market.presets import market_params

#: (label, params) markets exercised by the benchmark.  The presets are
#: the experiments' own calm/spiky calibrations; the stress market keeps
#: the sampler honest where nearly every step is an event.
_MARKETS = [
    ("m1.medium/us-east-1a", market_params("m1.medium", "us-east-1a")),
    ("cc2.8xlarge/us-east-1c", market_params("cc2.8xlarge", "us-east-1c")),
    (
        "stress-spiky",
        SpotMarketParams(
            base_price=0.05,
            calm_change_rate=6.0,
            spike_rate=1.5,
            spike_duration_mean=0.3,
        ),
    ),
]

_SEED = 20140731


def run(quick: bool = False) -> dict:
    # 30 (quick) / 180 days of 5-minute grid per market.
    n = 12 * 24 * (30 if quick else 180)
    steps = 0
    scalar_s = 0.0
    vector_s = 0.0
    for i, (label, params) in enumerate(_MARKETS):
        gen = RegimeSwitchingGenerator(
            params, np.random.default_rng(_SEED + i)
        )
        t0 = time.perf_counter()
        vec = gen._sample_grid(n)
        t1 = time.perf_counter()
        ref = _sample_grid_reference(params, np.random.default_rng(_SEED + i), n)
        t2 = time.perf_counter()
        assert vec.tobytes() == ref.tobytes(), (
            f"event-level sampler diverged from scalar reference ({label})"
        )
        steps += n
        vector_s += t1 - t0
        scalar_s += t2 - t1

    return {
        "suite": "market",
        "grid_steps": steps,
        "metrics": {
            "generation": {
                "scalar_steps_per_s": round(steps / scalar_s, 1),
                "vectorized_steps_per_s": round(steps / vector_s, 1),
                "seed_s": round(scalar_s, 4),
                "optimized_s": round(vector_s, 4),
                "speedup": round(scalar_s / vector_s, 2) if vector_s > 0 else None,
            },
        },
        "primary": {"name": "generation.optimized_s", "seconds": vector_s},
    }
