"""Profile the planning pipeline across its cache tiers.

``PYTHONPATH=src python -m benchmarks.perf.profile_planning`` times the
quick-case workload on the seed / cold-boot / cold-disk / warm tiers
(see :mod:`.planning`) and prints a cProfile table of the cold-disk
pass — the tier the regression guard watches.  This is the evidence
trail behind the DESIGN.md §10 numbers: when a tier gets slower, the
table says which function grew.

The artifact store is pointed at a temporary directory, so profiling
never touches (or benefits from) the user's real cache.
"""

from __future__ import annotations

import cProfile
import pathlib
import pstats
import tempfile

from repro.core.two_level import clear_shared_caches
from repro.experiments.env import ExperimentEnv

from .planning import _QUICK_CASES, _plan_all


def main(top: int = 25) -> None:
    env = ExperimentEnv.paper_default()
    with tempfile.TemporaryDirectory(prefix="repro-profile-art-") as tmp:
        root = pathlib.Path(tmp)
        disk = str(root / "disk")

        clear_shared_caches()
        _, seed_s, _ = _plan_all(env, _QUICK_CASES, cached=False)
        clear_shared_caches()
        _, boot_s, _ = _plan_all(
            env, _QUICK_CASES, cached=True, art_dir=str(root / "boot")
        )
        clear_shared_caches()
        _plan_all(env, _QUICK_CASES, cached=True, art_dir=disk)
        clear_shared_caches()
        _, disk_s, _ = _plan_all(env, _QUICK_CASES, cached=True, art_dir=disk)
        shared: dict = {}
        _plan_all(env, _QUICK_CASES, cached=True, art_dir=disk, model_sets=shared)
        _, warm_s, _ = _plan_all(
            env, _QUICK_CASES, cached=True, art_dir=disk, model_sets=shared
        )

        print(f"seed      {seed_s:8.4f} s   1.00x")
        print(f"cold boot {boot_s:8.4f} s   {seed_s / boot_s:5.2f}x")
        print(f"cold disk {disk_s:8.4f} s   {seed_s / disk_s:5.2f}x")
        print(f"warm      {warm_s:8.4f} s   {seed_s / warm_s:5.2f}x")
        print()

        clear_shared_caches()
        profiler = cProfile.Profile()
        profiler.enable()
        _plan_all(env, _QUICK_CASES, cached=True, art_dir=disk)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(top)


if __name__ == "__main__":
    main()
