"""Persistent worker-pool benchmark: spawn and warm-up amortization.

Times the two costs ISSUE 8's pool exists to amortize, each against the
honest pre-pool baseline:

* **Monte-Carlo fan-out** — the old hot path built a fresh
  ``ProcessPoolExecutor`` *and* a fresh shared-memory trace pool on
  every ``evaluate_decision_mc(jobs=N)`` call, then tore both down.
  The baseline here replicates that literally; the measured path is the
  same replay through the persistent shared pool and the content-hash
  shm registry.  The replay work is identical (and asserted identical),
  so the ratio isolates pure per-call provisioning overhead.
* **Backtest grid** — the ``backtest --quick`` workload three ways:
  cold-boot serial (shared caches cleared *and* an empty artifact
  store: what an unwarmed run — a fresh CI shard, a first run on a
  machine — pays, table and sidecar builds included), cold-disk serial
  (caches cleared, store warm: a fresh process after ``repro artifacts
  warm``), and the warm persistent pool at ``jobs=4``.  Warm workers
  keep their in-memory tables between requests, which is the
  planning-as-a-service regime the ROADMAP names; the headline ratio is
  warm-pool vs cold-boot — the per-run provisioning + warm-up cost this
  PR's persistence amortizes away.

Reports are asserted bit-identical across serial/parallel before any
ratio is computed, and every timing is the best of ``_REPEATS`` runs.
The regression guard (``primary``) watches the warm jobs=4 backtest —
the tier every later consumer (CI shards, experiment sweeps) sits on.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time

import numpy as np

from repro.backtest import build_manifest, run_backtest
from repro.cloud.instance_types import get_instance_type
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.core.two_level import clear_shared_caches
from repro.execution.montecarlo import (
    _replay_chunk,
    _replay_chunk_shm,
    replay_many,
    sample_start_times,
)
from repro.execution.pool import WorkerPool
from repro.execution.shm_pool import SharedTracePool
from repro.experiments.env import ExperimentEnv, LOOSE_DEADLINE_FACTOR
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace

#: Timings are the best of this many runs (noise floor, not average).
_REPEATS = 3

#: MC fan-out shape: enough starts to split across workers, few enough
#: that provisioning overhead dominates the baseline (the regime the
#: planner's inner evaluations actually run in).
_MC_SAMPLES = 24
_MC_JOBS = 2

#: Backtest grid parallelism (the ISSUE 8 acceptance point).
_BT_JOBS = 4


def _mc_case():
    """A small one-group problem over a spiky synthetic trace."""
    from tests.conftest import make_group  # reuse the canonical fixture

    g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=20.0)
    times, prices = [], []
    for k in range(60):
        times += [12.0 * k, 12.0 * k + 9.0]
        prices += [0.05, 0.90]
    h = SpotPriceHistory()
    h.add(g.key, SpotPriceTrace(times, prices, 732.0))
    decision = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
    return problem, decision, h


def _percall_spawn_mc(problem, decision, history, starts):
    """The pre-pool hot path, verbatim: fresh executor + fresh shm pool
    per call, both torn down before returning."""
    from concurrent.futures import ProcessPoolExecutor

    chunks = np.array_split(starts, _MC_JOBS)
    shm = None
    try:
        shm = SharedTracePool(history)
    # reprolint: disable=R006 -- verbatim copy of the measured hot path's fail-open shm fallback
    except Exception:
        shm = None
    try:
        with ProcessPoolExecutor(max_workers=_MC_JOBS) as ex:
            if shm is not None:
                futures = [
                    ex.submit(
                        _replay_chunk_shm, problem, decision, shm.handle,
                        chunk, None, "single-shot",
                    )
                    for chunk in chunks
                ]
            else:
                futures = [
                    ex.submit(
                        _replay_chunk, problem, decision, history,
                        chunk, None, "single-shot",
                    )
                    for chunk in chunks
                ]
            return [r for f in futures for r in f.result()]
    finally:
        if shm is not None:
            shm.close()


def run(quick: bool = False) -> dict:
    problem, decision, history = _mc_case()
    mc_repeats = _REPEATS if quick else 2 * _REPEATS

    with tempfile.TemporaryDirectory(prefix="repro-bench-pool-") as tmp:
        from repro.execution.artifacts import ARTIFACT_DIR_ENV

        saved_env = os.environ.get(ARTIFACT_DIR_ENV)
        os.environ[ARTIFACT_DIR_ENV] = str(pathlib.Path(tmp) / "art")
        try:
            # --- Monte-Carlo fan-out: per-call spawn vs warm pool -----
            starts = sample_start_times(
                problem, decision, history, _MC_SAMPLES,
                np.random.default_rng(7),
            )
            clear_shared_caches()
            percall_results = None
            percall_s = float("inf")
            for _ in range(mc_repeats):
                t0 = time.perf_counter()
                res = _percall_spawn_mc(problem, decision, history, starts)
                percall_s = min(percall_s, time.perf_counter() - t0)
                percall_results = res
            # Prime the shared pool + shm registry once, then time the
            # steady-state call the planner's inner loop actually makes.
            replay_many(
                problem, decision, history, _MC_SAMPLES,
                np.random.default_rng(7), jobs=_MC_JOBS,
            )
            warm_results = None
            warm_mc_s = float("inf")
            for _ in range(mc_repeats):
                t0 = time.perf_counter()
                res = replay_many(
                    problem, decision, history, _MC_SAMPLES,
                    np.random.default_rng(7), jobs=_MC_JOBS,
                )
                warm_mc_s = min(warm_mc_s, time.perf_counter() - t0)
                warm_results = res
            assert percall_results == warm_results, (
                "warm-pool MC diverged from the per-call-spawn baseline"
            )

            # --- Backtest grid: cold serial vs warm jobs=N ------------
            # The `backtest --quick` workload (cli.py): 2 windows,
            # 10+5 days, 40 replays, BT loose.
            env = ExperimentEnv.paper_default()
            manifest = build_manifest(
                env,
                n_windows=2,
                plan_hours=10 * 24.0,
                holdout_hours=5 * 24.0,
                apps=("BT",),
                deadline_factors=(("loose", LOOSE_DEADLINE_FACTOR),),
                n_samples=40,
            )
            # Cold boot: empty store + cleared caches per run — the
            # unwarmed per-run cost the persistent pool amortizes.
            boot_report = None
            boot_s = float("inf")
            for i in range(_REPEATS):
                os.environ[ARTIFACT_DIR_ENV] = str(
                    pathlib.Path(tmp) / f"boot{i}"
                )
                clear_shared_caches()
                t0 = time.perf_counter()
                rep = run_backtest(env, manifest)
                boot_s = min(boot_s, time.perf_counter() - t0)
                boot_report = rep
            os.environ[ARTIFACT_DIR_ENV] = str(pathlib.Path(tmp) / "art")
            run_backtest(env, manifest)  # prime the artifact disk tier
            cold_report = None
            cold_s = float("inf")
            for _ in range(_REPEATS):
                clear_shared_caches()
                t0 = time.perf_counter()
                rep = run_backtest(env, manifest)
                cold_s = min(cold_s, time.perf_counter() - t0)
                cold_report = rep
            assert boot_report.results == cold_report.results, (
                "cold-disk backtest diverged from cold-boot"
            )
            # Warm regime: pool spawned, workers warmed, tables cached.
            run_backtest(env, manifest, jobs=_BT_JOBS)
            warm_report = None
            warm_bt_s = float("inf")
            for _ in range(_REPEATS):
                t0 = time.perf_counter()
                rep = run_backtest(env, manifest, jobs=_BT_JOBS)
                warm_bt_s = min(warm_bt_s, time.perf_counter() - t0)
                warm_report = rep
            assert cold_report.results == warm_report.results, (
                "parallel backtest diverged from serial"
            )
        finally:
            if saved_env is None:
                os.environ.pop(ARTIFACT_DIR_ENV, None)
            else:
                os.environ[ARTIFACT_DIR_ENV] = saved_env
            clear_shared_caches()

    return {
        "suite": "pool",
        "metrics": {
            "mc_fanout": {
                "n_samples": _MC_SAMPLES,
                "jobs": _MC_JOBS,
                "percall_spawn_s": round(percall_s, 5),
                "warm_pool_s": round(warm_mc_s, 5),
                "speedup": (
                    round(percall_s / warm_mc_s, 2) if warm_mc_s > 0 else None
                ),
            },
            "backtest_quick": {
                "jobs": _BT_JOBS,
                "cold_boot_serial_s": round(boot_s, 4),
                "cold_disk_serial_s": round(cold_s, 4),
                "warm_jobs_s": round(warm_bt_s, 4),
                "speedup_vs_cold_boot": (
                    round(boot_s / warm_bt_s, 2) if warm_bt_s > 0 else None
                ),
                "speedup_vs_cold_disk": (
                    round(cold_s / warm_bt_s, 2) if warm_bt_s > 0 else None
                ),
            },
        },
        # Guard the warm parallel backtest: the steady-state tier every
        # repeated consumer (CI shards, sweeps, planning-as-a-service)
        # actually runs in.
        "primary": {"name": "backtest_quick.warm_jobs_s", "seconds": warm_bt_s},
    }
