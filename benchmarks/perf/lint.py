"""Lint-engine benchmark: cold parse vs warm cache replay.

Lints the real ``src/`` tree twice against a throwaway cache file: the
cold run reads, hashes and parses every module, builds the project
graph and iterates the summary fixpoint; the warm run must hit the
fully-warm gate (nothing changed → every finding replays, no parsing).
A third, scoped run exercises the ``--changed`` path against the warm
cache: the tree is re-analysed with a one-file scope, replaying every
unchanged module and every unchanged summary SCC.  The suite asserts
the runs agree finding-for-finding and that the warm path really
replayed every file, then reports the throughputs.  The primary metric
is the warm time — the one ``make lint`` pays on every developer
invocation; ``summary_fixpoint_s`` isolates the interprocedural
fixpoint's share of the cold run.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.analysis.engine import run_lint
from repro.analysis.registry import get_rules

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def run(quick: bool = False) -> dict:
    root = _REPO_ROOT
    # Quick mode lints the analysis package only (CI smoke); full mode
    # lints everything `make lint` does.
    target = root / ("src/repro/analysis" if quick else "src")
    rules = get_rules()

    with tempfile.TemporaryDirectory(prefix="reprolint-bench-") as tmp:
        cache = Path(tmp) / "cache.json"

        t0 = time.perf_counter()
        cold = run_lint([target], root=root, rules=rules, cache_path=cache)
        t1 = time.perf_counter()
        # Warm replay is a few ms; take the best of three so the 20%
        # regression guard compares the replay path, not OS jitter.
        warm_times = []
        for _ in range(3):
            tw = time.perf_counter()
            warm = run_lint([target], root=root, rules=rules, cache_path=cache)
            warm_times.append(time.perf_counter() - tw)
        t2 = time.perf_counter()
        # Warm --changed: whole tree re-analysed, one file in scope,
        # modules and summary SCCs replaying from the warm cache.
        scope_rel = sorted(
            p.resolve().relative_to(root).as_posix()
            for p in target.rglob("*.py")
        )[:1]
        changed = run_lint(
            [target], root=root, rules=rules, cache_path=cache,
            cache_write=False, changed_scope=set(scope_rel),
        )
        t3 = time.perf_counter()

    cold_s, warm_s, changed_warm_s = t1 - t0, min(warm_times), t3 - t2
    assert cold.cache_mode == "cold", f"expected cold run, got {cold.cache_mode}"
    assert warm.cache_mode == "full", (
        f"warm run fell off the replay path ({warm.cache_mode}); "
        "the cache fingerprint or dep tracking is broken"
    )
    assert warm.files_replayed == warm.files_checked
    assert [f.to_json() for f in cold.findings] == [
        f.to_json() for f in warm.findings
    ], "cache replay changed the findings"
    scoped = {f.path for f in changed.findings}
    assert scoped <= (changed.lint_scope or set()), (
        "--changed reported findings outside its scope"
    )
    summary_stats = cold.summary_stats or {}
    changed_stats = changed.summary_stats or {}
    assert changed_stats.get("recomputed", 0) <= summary_stats.get(
        "recomputed", 0
    ), "warm --changed re-summarized more SCCs than the cold run built"

    files = cold.files_checked
    return {
        "suite": "lint",
        "files": files,
        "rules": len(rules),
        "metrics": {
            "engine": {
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "changed_warm_s": round(changed_warm_s, 4),
                "cold_files_per_s": round(files / cold_s, 1),
                "warm_files_per_s": round(files / warm_s, 1),
                "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
                "findings": len(cold.findings),
            },
            "summaries": {
                "summary_fixpoint_s": summary_stats.get("fixpoint_s"),
                "sccs": summary_stats.get("sccs"),
                "functions": summary_stats.get("functions"),
                "changed_replayed": changed_stats.get("replayed"),
                "changed_recomputed": changed_stats.get("recomputed"),
            },
        },
        "primary": {"name": "engine.warm_s", "seconds": warm_s},
    }
