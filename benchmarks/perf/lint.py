"""Lint-engine benchmark: cold parse vs warm cache replay.

Lints the real ``src/`` tree twice against a throwaway cache file: the
cold run reads, hashes and parses every module and builds the project
graph; the warm run must hit the fully-warm gate (nothing changed →
every finding replays, no parsing).  The suite asserts the two runs
agree finding-for-finding and that the warm path really replayed every
file, then reports both throughputs.  The primary metric is the warm
time — the one ``make lint`` pays on every developer invocation.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.analysis.engine import run_lint
from repro.analysis.registry import get_rules

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def run(quick: bool = False) -> dict:
    root = _REPO_ROOT
    # Quick mode lints the analysis package only (CI smoke); full mode
    # lints everything `make lint` does.
    target = root / ("src/repro/analysis" if quick else "src")
    rules = get_rules()

    with tempfile.TemporaryDirectory(prefix="reprolint-bench-") as tmp:
        cache = Path(tmp) / "cache.json"

        t0 = time.perf_counter()
        cold = run_lint([target], root=root, rules=rules, cache_path=cache)
        t1 = time.perf_counter()
        warm = run_lint([target], root=root, rules=rules, cache_path=cache)
        t2 = time.perf_counter()

    cold_s, warm_s = t1 - t0, t2 - t1
    assert cold.cache_mode == "cold", f"expected cold run, got {cold.cache_mode}"
    assert warm.cache_mode == "full", (
        f"warm run fell off the replay path ({warm.cache_mode}); "
        "the cache fingerprint or dep tracking is broken"
    )
    assert warm.files_replayed == warm.files_checked
    assert [f.to_json() for f in cold.findings] == [
        f.to_json() for f in warm.findings
    ], "cache replay changed the findings"

    files = cold.files_checked
    return {
        "suite": "lint",
        "files": files,
        "rules": len(rules),
        "metrics": {
            "engine": {
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "cold_files_per_s": round(files / cold_s, 1),
                "warm_files_per_s": round(files / warm_s, 1),
                "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
                "findings": len(cold.findings),
            },
        },
        "primary": {"name": "engine.warm_s", "seconds": warm_s},
    }
