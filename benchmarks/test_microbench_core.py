"""Microbenchmarks of the hot components.

These guard the optimization-overhead claim of the paper (Section 5.3:
"generally smaller than 1% of the total execution time"): for hour-scale
MPI jobs, planning must take seconds, which means the failure model,
cost evaluation and replay must each sit in the micro-to-millisecond
range.
"""

import numpy as np
import pytest

from repro.core.problem import Decision, GroupDecision
from repro.execution.replay import replay_decision
from repro.experiments.env import LOOSE_DEADLINE_FACTOR
from repro.market.failure import FailureModel
from repro.market.history import MarketKey
from repro.mpi.timing import estimate_execution_hours


@pytest.fixture(scope="module")
def bt_problem(env):
    return env.problem("BT", LOOSE_DEADLINE_FACTOR)


def test_failure_model_build(benchmark, env):
    trace = env.history.get(MarketKey("m1.medium", "us-east-1a"))
    fm = benchmark(FailureModel, trace)
    assert fm.n_steps > 0


def test_failure_pmf(benchmark, env):
    trace = env.history.get(MarketKey("m1.medium", "us-east-1a"))
    fm = FailureModel(trace)
    pmf = benchmark(fm.failure_pmf, 0.02, 24)
    assert np.isclose(pmf.sum(), 1.0)


def test_trace_replay(benchmark, env, bt_problem):
    decision = Decision(
        groups=(GroupDecision(0, 0.02, 4.0), GroupDecision(4, 0.02, 4.0)),
        ondemand_index=2,
    )
    result = benchmark(
        replay_decision, bt_problem, decision, env.history, env.train_end + 5.0
    )
    assert result.cost >= 0


def test_time_estimator(benchmark, env):
    profile = env.app("BT").profile()
    from repro.cloud.instance_types import get_instance_type

    hours = benchmark(estimate_execution_hours, profile, get_instance_type("cc2.8xlarge"))
    assert hours > 0


def test_synthetic_market_generation(benchmark):
    from repro.market.presets import build_history

    history = benchmark.pedantic(
        build_history, args=(24.0 * 35, 99), rounds=3, iterations=1
    )
    assert len(history) == 12
